//! The multi-tenant cluster executor: a deterministic discrete-event
//! simulation that interleaves many jobs' tasks over shared slot pools.
//!
//! See the [module docs](super) for the two-plane architecture. The short
//! version: each submitted job carries a *data plane* closure (typically a
//! [`run_job`](crate::run_job) call) that is executed lazily, at the
//! simulated instant the scheduler first grants the job a slot. The
//! closure returns the job's output bytes plus the [`JobMetrics`] of the
//! MapReduce jobs it ran; the executor then replays those metrics' modeled
//! per-task durations as *control-plane* events competing for the shared
//! map/reduce slots. Queue waits, deadlines, and preemptions all happen on
//! the simulated clock, so every byte and every `sched.*` counter is a
//! pure function of the submission set.

use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};
use std::marker::PhantomData;
use std::time::Duration;

use skymr_common::{Counters, Error};
use skymr_telemetry::{Collector, JobTrace, MetricsRegistry, Span};

use crate::cluster::{ClusterConfig, JobMetrics};
use crate::fault::{AttemptFailure, FailureCause, JobError, RetryPolicy, TaskKind};
use crate::trace::ticks_of;

use super::admission::{AdmissionConfig, AdmissionController, Reservation};
use super::scheduler::{AttemptView, CandidateView, FifoScheduler, SchedView, Scheduler};

/// Type-erased data plane: computes the job's output and reports the
/// modeled metrics of the MapReduce jobs it ran.
type Plane =
    Box<dyn FnOnce(&ClusterConfig) -> Result<(Box<dyn Any + Send>, Vec<JobMetrics>), Error> + Send>;

fn from_ticks(t: u64) -> Duration {
    Duration::from_micros(t)
}

/// Everything the scheduler needs to know about a job besides its data
/// plane: identity, tenancy, timing, and resource demands.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Job name. Should be unique per executor run: the canonical job
    /// order (which all scheduling tie-breaks bottom out in) is
    /// (arrival, tenant, name), falling back to submission order only
    /// for exact duplicates.
    pub name: String,
    /// Owning tenant, the unit of fair-share accounting.
    pub tenant: String,
    /// Scheduling priority; larger is more urgent. Consulted only by
    /// [`PriorityScheduler`](super::PriorityScheduler).
    pub priority: i32,
    /// Fair-share weight of this job's demand (≥ 1; 0 is clamped).
    pub weight: u64,
    /// When the job arrives, on the simulated clock.
    pub arrival: Duration,
    /// Resources the job asks the admission controller to set aside.
    pub reservation: Reservation,
    /// Absolute simulated-clock deadline. A job not finished by this
    /// instant is cancelled — cleanly, with partial metrics — whether it
    /// is still queued or already running.
    pub deadline: Option<Duration>,
    /// Retry policy governing the backoff a preempted task attempt pays
    /// before re-queueing, and how many attempts it gets in total.
    pub retry: RetryPolicy,
    /// Launch speculative backup attempts on otherwise-idle slots. A
    /// backup duplicates a running attempt; it is the preferred
    /// preemption victim (killing it loses no task) and keeps the task
    /// alive if the original is preempted.
    pub speculate: bool,
}

impl JobSpec {
    /// A spec with neutral scheduling parameters: priority 0, weight 1,
    /// arrival at time zero, a minimal reservation, no deadline.
    pub fn new(name: impl Into<String>, tenant: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            tenant: tenant.into(),
            priority: 0,
            weight: 1,
            arrival: Duration::ZERO,
            reservation: Reservation::default(),
            deadline: None,
            retry: RetryPolicy::new(),
            speculate: false,
        }
    }

    /// Sets the simulated arrival time.
    pub fn arriving_at(mut self, arrival: Duration) -> Self {
        self.arrival = arrival;
        self
    }

    /// Sets the scheduling priority.
    pub fn with_priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the fair-share weight.
    pub fn with_weight(mut self, weight: u64) -> Self {
        self.weight = weight;
        self
    }

    /// Sets the resource reservation.
    pub fn with_reservation(mut self, reservation: Reservation) -> Self {
        self.reservation = reservation;
        self
    }

    /// Sets an absolute simulated-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the retry policy used for preempted attempts.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Enables speculative backup attempts.
    pub fn with_speculation(mut self, speculate: bool) -> Self {
        self.speculate = speculate;
        self
    }
}

/// Claim ticket for a submitted job's result, redeemed with
/// [`ClusterExecutor::take`] after [`ClusterExecutor::run`].
#[derive(Debug)]
pub struct JobHandle<T> {
    submit_idx: usize,
    _marker: PhantomData<fn() -> T>,
}

/// Scheduling facts about one completed job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSchedStats {
    /// Simulated arrival time.
    pub arrival: Duration,
    /// When the scheduler first granted the job a slot.
    pub started: Duration,
    /// When the job's last task completed.
    pub finished: Duration,
    /// Time spent in the admission queue (`started - arrival`).
    pub queue_wait: Duration,
    /// Task attempts of this job killed by preemption.
    pub preemptions: u64,
    /// Slot time consumed by killed attempts (preemptions plus losing
    /// speculative duplicates).
    pub wasted: Duration,
    /// Total slot-ticks the job consumed across all attempts.
    pub slot_ticks: u64,
}

/// A finished job: its output, the per-MapReduce-job metrics its data
/// plane reported (with `jobs[0]` patched to carry the scheduling story:
/// queue wait, preemptions, preemption-wasted time), and the scheduling
/// stats.
#[derive(Debug)]
pub struct SchedOutcome<T> {
    /// The data plane's output value.
    pub output: T,
    /// Metrics of the MapReduce jobs the plane ran, in execution order.
    pub jobs: Vec<JobMetrics>,
    /// Scheduling facts for the job as a whole.
    pub stats: JobSchedStats,
}

/// Terminal state of a submitted job.
#[derive(Debug)]
pub enum JobCompletion<T> {
    /// The job ran to completion.
    Finished(SchedOutcome<T>),
    /// Admission control turned the job away (queue full or memory
    /// exhausted); its data plane never ran. Always
    /// [`Error::AdmissionRejected`].
    Rejected(Error),
    /// The scheduler cancelled the job — deadline expiry, preemption
    /// retry budget exhaustion, or executor drain — with partial metrics
    /// and a [`FailureCause::Cancelled`] attempt history.
    Cancelled(Box<JobError>),
    /// The job's own data plane failed (e.g. a fault plan exhausted a
    /// task's retries). Other jobs are unaffected.
    Failed(Error),
}

impl<T> JobCompletion<T> {
    /// `true` iff the job finished.
    pub fn is_finished(&self) -> bool {
        matches!(self, Self::Finished(_))
    }

    /// `true` iff admission control rejected the job.
    pub fn is_rejected(&self) -> bool {
        matches!(self, Self::Rejected(_))
    }

    /// `true` iff the scheduler cancelled the job.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, Self::Cancelled(_))
    }

    /// Converts to a `Result`, folding every non-finished state into its
    /// [`Error`].
    pub fn outcome(self) -> Result<SchedOutcome<T>, Error> {
        match self {
            Self::Finished(outcome) => Ok(outcome),
            Self::Rejected(e) | Self::Failed(e) => Err(e),
            Self::Cancelled(e) => Err((*e).into()),
        }
    }

    /// The outcome, panicking (with the underlying error) on any
    /// non-finished state.
    pub fn unwrap(self) -> SchedOutcome<T> {
        match self {
            Self::Finished(outcome) => outcome,
            Self::Rejected(e) | Self::Failed(e) => panic!("job did not finish: {e}"),
            Self::Cancelled(e) => panic!("job did not finish: {e}"),
        }
    }
}

/// Per-tenant aggregate in a [`SchedReport`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Jobs submitted by the tenant (admitted or rejected).
    pub jobs: u64,
    /// Slot-ticks charged to the tenant (completed attempts at full
    /// duration, killed attempts at elapsed duration).
    pub slot_ticks: u64,
    /// Total simulated time the tenant's jobs spent queued.
    pub queue_wait: Duration,
}

/// What happened across one [`ClusterExecutor::run`].
#[derive(Debug, Clone)]
pub struct SchedReport {
    /// Name of the scheduling policy that ran.
    pub policy: &'static str,
    /// Jobs submitted (accepted by the static feasibility check).
    pub submitted: u64,
    /// Jobs admitted to the queue.
    pub admitted: u64,
    /// Jobs rejected at arrival (queue full or memory exhausted).
    pub rejected: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Jobs cancelled by the scheduler (deadlines, preemption budget).
    pub cancelled: u64,
    /// Jobs whose own data plane failed.
    pub failed: u64,
    /// Task attempts killed by preemption, across all jobs.
    pub preemptions: u64,
    /// Simulated instant the last job reached a terminal state.
    pub makespan: Duration,
    /// Per-tenant aggregates, keyed by tenant name.
    pub tenants: BTreeMap<String, TenantStats>,
    /// The `sched.*` counters, exactly as committed to telemetry.
    pub registry: MetricsRegistry,
}

impl SchedReport {
    /// Renders the report as human-readable text (one header line plus
    /// one line per tenant).
    pub fn render(&self) -> String {
        let mut out = format!(
            "policy={} submitted={} admitted={} rejected={} completed={} \
             cancelled={} failed={} preemptions={} makespan={:?}\n",
            self.policy,
            self.submitted,
            self.admitted,
            self.rejected,
            self.completed,
            self.cancelled,
            self.failed,
            self.preemptions,
            self.makespan,
        );
        for (tenant, stats) in &self.tenants {
            out.push_str(&format!(
                "  tenant {tenant}: jobs={} slot_ticks={} queue_wait={:?}\n",
                stats.jobs, stats.slot_ticks, stats.queue_wait
            ));
        }
        out
    }
}

enum RawCompletion {
    Finished {
        output: Box<dyn Any + Send>,
        jobs: Vec<JobMetrics>,
        stats: JobSchedStats,
    },
    Rejected(Error),
    Cancelled(Box<JobError>),
    Failed(Error),
}

struct Submission {
    spec: JobSpec,
    plane: Plane,
}

/// Runs many jobs over one simulated cluster's shared slot pools.
///
/// Lifecycle: configure (scheduler, admission limits, telemetry), then
/// [`submit`](Self::submit) jobs, then [`run`](Self::run) once, then
/// [`take`](Self::take) each handle's [`JobCompletion`]. `submit` rejects
/// statically infeasible reservations synchronously; load-dependent
/// rejections surface through the handle after `run`.
pub struct ClusterExecutor {
    cluster: ClusterConfig,
    admission: AdmissionController,
    scheduler: Box<dyn Scheduler>,
    collector: Option<Collector>,
    submissions: Vec<Submission>,
    results: Vec<Option<RawCompletion>>,
    ran: bool,
}

impl std::fmt::Debug for ClusterExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterExecutor")
            .field("policy", &self.scheduler.name())
            .field("submissions", &self.submissions.len())
            .field("ran", &self.ran)
            .finish_non_exhaustive()
    }
}

impl ClusterExecutor {
    /// An executor over the given cluster, with FIFO scheduling and
    /// default admission limits.
    pub fn new(cluster: ClusterConfig) -> Self {
        Self {
            cluster,
            admission: AdmissionController::default(),
            scheduler: Box::new(FifoScheduler),
            collector: None,
            submissions: Vec::new(),
            results: Vec::new(),
            ran: false,
        }
    }

    /// Replaces the scheduling policy.
    pub fn with_scheduler(mut self, scheduler: impl Scheduler + 'static) -> Self {
        self.scheduler = Box::new(scheduler);
        self
    }

    /// Replaces the admission limits.
    pub fn with_admission(mut self, config: AdmissionConfig) -> Self {
        self.admission = AdmissionController::new(config);
        self
    }

    /// Attaches a telemetry collector; the executor commits one
    /// "scheduler" job trace (queued spans, preempt instants, `sched.*`
    /// counters) on [`run`](Self::run).
    pub fn with_collector(mut self, collector: Collector) -> Self {
        self.collector = Some(collector);
        self
    }

    /// The cluster the executor schedules over.
    pub fn cluster(&self) -> &ClusterConfig {
        &self.cluster
    }

    /// Submits a job. The plane closure receives the shared cluster
    /// config and must return the job's output plus the [`JobMetrics`]
    /// of every MapReduce job it ran; it is invoked lazily, at the
    /// simulated instant the job first receives a slot.
    ///
    /// # Errors
    ///
    /// Returns [`Error::AdmissionRejected`] synchronously for
    /// reservations no cluster of this shape can satisfy. Load-dependent
    /// rejection (queue depth, memory ledger) is decided during
    /// [`run`](Self::run) and surfaces through the handle instead.
    pub fn submit<T, F>(&mut self, spec: JobSpec, plane: F) -> Result<JobHandle<T>, Error>
    where
        T: Send + 'static,
        F: FnOnce(&ClusterConfig) -> Result<(T, Vec<JobMetrics>), Error> + Send + 'static,
    {
        assert!(!self.ran, "submit() after run()");
        self.admission
            .check_static(&spec.name, &spec.tenant, &spec.reservation, &self.cluster)?;
        let erased: Plane = Box::new(move |cluster| {
            plane(cluster).map(|(out, jobs)| (Box::new(out) as Box<dyn Any + Send>, jobs))
        });
        let submit_idx = self.submissions.len();
        self.submissions.push(Submission {
            spec,
            plane: erased,
        });
        self.results.push(None);
        Ok(JobHandle {
            submit_idx,
            _marker: PhantomData,
        })
    }

    /// Redeems a handle for its job's terminal state. Call after
    /// [`run`](Self::run); each handle can be taken once.
    ///
    /// # Panics
    ///
    /// Panics if `run` has not been called, the handle was already
    /// taken, or `T` does not match the submitted plane's output type.
    pub fn take<T: Send + 'static>(&mut self, handle: JobHandle<T>) -> JobCompletion<T> {
        assert!(self.ran, "take() before run()");
        let Some(raw) = self.results[handle.submit_idx].take() else {
            panic!("job result already taken")
        };
        match raw {
            RawCompletion::Finished {
                output,
                jobs,
                stats,
            } => {
                let Ok(output) = output.downcast::<T>() else {
                    panic!("JobHandle output type mismatch")
                };
                JobCompletion::Finished(SchedOutcome {
                    output: *output,
                    jobs,
                    stats,
                })
            }
            RawCompletion::Rejected(e) => JobCompletion::Rejected(e),
            RawCompletion::Cancelled(e) => JobCompletion::Cancelled(e),
            RawCompletion::Failed(e) => JobCompletion::Failed(e),
        }
    }

    /// Runs every submitted job to a terminal state and returns the
    /// run's [`SchedReport`]. Deterministic: the report and every job's
    /// bytes depend only on the submission set, not on submission call
    /// order or host parallelism.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn run(&mut self) -> SchedReport {
        assert!(!self.ran, "run() called twice");
        self.ran = true;

        // Canonical job order: all scheduling tie-breaks bottom out in
        // this rank, which is why permuting submit() calls cannot change
        // any output byte.
        let mut order: Vec<usize> = (0..self.submissions.len()).collect();
        order.sort_by(|&a, &b| {
            let (sa, sb) = (&self.submissions[a].spec, &self.submissions[b].spec);
            (ticks_of(sa.arrival), &sa.tenant, &sa.name, a).cmp(&(
                ticks_of(sb.arrival),
                &sb.tenant,
                &sb.name,
                b,
            ))
        });
        let mut drained: Vec<Option<Submission>> = std::mem::take(&mut self.submissions)
            .into_iter()
            .map(Some)
            .collect();
        let mut sims: Vec<Sim> = Vec::with_capacity(order.len());
        for &idx in &order {
            let Some(Submission { spec, plane }) = drained[idx].take() else {
                unreachable!("`order` is a permutation, so each index drains exactly once")
            };
            sims.push(Sim::new(spec, plane, idx));
        }

        let mut engine = Engine {
            cluster: self.cluster.clone(),
            admission: self.admission.clone(),
            sims,
            running: Vec::new(),
            events: BTreeSet::new(),
            next_attempt_id: 0,
            tenant_charged: BTreeMap::new(),
            tenant_wait: BTreeMap::new(),
            tenant_jobs: BTreeMap::new(),
            admitted: 0,
            rejected: 0,
            completed: 0,
            cancelled: 0,
            failed: 0,
            preemptions: 0,
            queue_wait_ticks: 0,
            slot_ticks: 0,
            preempt_log: Vec::new(),
            makespan: 0,
        };
        for sim in &engine.sims {
            engine.events.insert(sim.arrival);
            if let Some(d) = sim.deadline {
                engine.events.insert(d);
            }
        }
        while let Some(now) = engine.events.pop_first() {
            engine.process_completions(now);
            engine.process_shuffles(now);
            engine.process_deadlines(now);
            engine.process_arrivals(now);
            engine.dispatch(self.scheduler.as_mut(), now);
        }
        // A scheduler that refuses to pick can leave admitted jobs
        // stranded; drain them as cancellations so every handle resolves.
        let makespan = engine.makespan;
        for j in 0..engine.sims.len() {
            if !matches!(engine.sims[j].state, SimState::Terminal) {
                engine.cancel_job(
                    j,
                    makespan,
                    "executor drained its event queue with the job still waiting",
                );
            }
        }

        let report = engine.build_report(self.scheduler.name());
        engine.commit_results(&mut self.results);
        if let Some(collector) = &self.collector {
            engine.emit_trace(collector, &report.registry);
        }
        report
    }
}

// ---------------------------------------------------------------------
// The discrete-event simulation.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SimState {
    /// Not yet arrived on the simulated clock.
    Future,
    /// Admitted, waiting for the scheduler's first grant.
    Queued,
    /// Data plane has run; tasks are competing for slots.
    Running,
    /// Finished, rejected, cancelled, or failed.
    Terminal,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Map,
    Shuffle,
    Reduce,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskState {
    Pending { ready: u64, attempt: u32 },
    Running,
    Done,
}

#[derive(Debug, Clone, Copy)]
struct TaskCell {
    state: TaskState,
    backup: bool,
}

#[derive(Debug, Clone)]
struct Stage {
    map: Vec<u64>,
    shuffle: u64,
    reduce: Vec<u64>,
}

struct Sim {
    spec: JobSpec,
    submit_idx: usize,
    arrival: u64,
    deadline: Option<u64>,
    plane: Option<Plane>,
    state: SimState,
    output: Option<Box<dyn Any + Send>>,
    jobs: Vec<JobMetrics>,
    stages: Vec<Stage>,
    stage: usize,
    phase: Phase,
    shuffle_end: u64,
    tasks: Vec<TaskCell>,
    remaining: usize,
    started_at: u64,
    /// Queue wait in ticks, recorded at the first grant (or at
    /// cancellation for jobs that never start). `None` until then.
    queued_wait: Option<u64>,
    preemptions: u64,
    wasted_ticks: u64,
    slot_ticks: u64,
    result: Option<RawCompletion>,
}

impl Sim {
    fn new(spec: JobSpec, plane: Plane, submit_idx: usize) -> Self {
        let arrival = ticks_of(spec.arrival);
        let deadline = spec.deadline.map(ticks_of);
        Self {
            spec,
            submit_idx,
            arrival,
            deadline,
            plane: Some(plane),
            state: SimState::Future,
            output: None,
            jobs: Vec::new(),
            stages: Vec::new(),
            stage: 0,
            phase: Phase::Map,
            shuffle_end: 0,
            tasks: Vec::new(),
            remaining: 0,
            started_at: 0,
            queued_wait: None,
            preemptions: 0,
            wasted_ticks: 0,
            slot_ticks: 0,
            result: None,
        }
    }

    fn ready_task(&self, kind: TaskKind, now: u64) -> Option<usize> {
        let phase_kind = match self.phase {
            Phase::Map => TaskKind::Map,
            Phase::Reduce => TaskKind::Reduce,
            Phase::Shuffle => return None,
        };
        if self.state != SimState::Running || phase_kind != kind {
            return None;
        }
        self.tasks
            .iter()
            .position(|t| matches!(t.state, TaskState::Pending { ready, .. } if ready <= now))
    }

    fn task_ticks(&self, kind: TaskKind, task: usize) -> u64 {
        let stage = &self.stages[self.stage];
        match kind {
            TaskKind::Map => stage.map[task],
            TaskKind::Reduce => stage.reduce[task],
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Attempt {
    id: u64,
    job: usize,
    kind: TaskKind,
    task: usize,
    attempt_no: u32,
    speculative: bool,
    started: u64,
    ticks: u64,
    finish: u64,
}

struct PreemptEvent {
    at: u64,
    job: String,
    task: u64,
    attempt: u64,
}

/// Builds the stage ladder from a plane's reported metrics. Startup and
/// broadcast charges are folded into each stage's first task so a job
/// granted its first slot immediately occupies it (a deliberate modeling
/// simplification: setup rides on the slot rather than on a separate
/// driver lane).
fn build_stages(jobs: &[JobMetrics]) -> Vec<Stage> {
    jobs.iter()
        .filter_map(|m| {
            let mut map: Vec<u64> = m.map_task_durations.iter().map(|d| ticks_of(*d)).collect();
            let mut reduce: Vec<u64> = m
                .reduce_task_durations
                .iter()
                .map(|d| ticks_of(*d))
                .collect();
            let lead = ticks_of(m.startup_time).saturating_add(ticks_of(m.broadcast_time));
            if lead > 0 {
                if let Some(first) = map.first_mut() {
                    *first += lead;
                } else if let Some(first) = reduce.first_mut() {
                    *first += lead;
                }
            }
            if map.is_empty() && reduce.is_empty() {
                None
            } else {
                Some(Stage {
                    map,
                    shuffle: ticks_of(m.shuffle_time),
                    reduce,
                })
            }
        })
        .collect()
}

struct Engine {
    cluster: ClusterConfig,
    admission: AdmissionController,
    sims: Vec<Sim>,
    running: Vec<Attempt>,
    events: BTreeSet<u64>,
    next_attempt_id: u64,
    tenant_charged: BTreeMap<String, u64>,
    tenant_wait: BTreeMap<String, u64>,
    tenant_jobs: BTreeMap<String, u64>,
    admitted: u64,
    rejected: u64,
    completed: u64,
    cancelled: u64,
    failed: u64,
    preemptions: u64,
    queue_wait_ticks: u64,
    slot_ticks: u64,
    preempt_log: Vec<PreemptEvent>,
    makespan: u64,
}

impl Engine {
    fn pool(&self, kind: TaskKind) -> usize {
        match kind {
            TaskKind::Map => self.cluster.map_slots,
            TaskKind::Reduce => self.cluster.reduce_slots,
        }
    }

    fn free_slots(&self, kind: TaskKind) -> usize {
        let busy = self.running.iter().filter(|a| a.kind == kind).count();
        self.pool(kind).saturating_sub(busy)
    }

    /// Charges slot-ticks to a job and its tenant.
    fn charge(&mut self, job: usize, ticks: u64) {
        self.sims[job].slot_ticks += ticks;
        let tenant = self.sims[job].spec.tenant.clone();
        *self.tenant_charged.entry(tenant).or_insert(0) += ticks;
        self.slot_ticks += ticks;
    }

    /// Removes a running attempt, charging its elapsed slot time and
    /// adding it to the job's wasted total.
    fn kill_attempt(&mut self, running_idx: usize, now: u64) -> Attempt {
        let a = self.running.remove(running_idx);
        let elapsed = now.saturating_sub(a.started);
        self.charge(a.job, elapsed);
        self.sims[a.job].wasted_ticks += elapsed;
        if a.speculative {
            self.sims[a.job].tasks[a.task].backup = false;
        }
        a
    }

    // --- per-tick phases -------------------------------------------------

    fn process_completions(&mut self, now: u64) {
        let mut done: Vec<Attempt> = Vec::new();
        let mut i = 0;
        while i < self.running.len() {
            if self.running[i].finish == now {
                done.push(self.running.remove(i));
            } else {
                i += 1;
            }
        }
        done.sort_by_key(|a| (a.job, a.kind, a.task, a.speculative, a.id));
        for a in done {
            self.complete_attempt(a, now);
        }
    }

    fn complete_attempt(&mut self, a: Attempt, now: u64) {
        self.charge(a.job, a.ticks);
        let sim = &mut self.sims[a.job];
        if sim.state != SimState::Running {
            return;
        }
        if a.speculative {
            sim.tasks[a.task].backup = false;
        }
        match sim.tasks[a.task].state {
            TaskState::Done => {
                // A duplicate finished in the same tick as the winner:
                // its full duration is wasted work.
                sim.wasted_ticks += a.ticks;
                return;
            }
            TaskState::Pending { .. } | TaskState::Running => {
                sim.tasks[a.task].state = TaskState::Done;
                sim.remaining -= 1;
            }
        }
        // Kill losing duplicates of the now-complete task.
        while let Some(idx) = self
            .running
            .iter()
            .position(|r| r.job == a.job && r.kind == a.kind && r.task == a.task)
        {
            self.kill_attempt(idx, now);
        }
        if self.sims[a.job].remaining == 0 {
            self.advance_phase(a.job, now);
        }
    }

    fn process_shuffles(&mut self, now: u64) {
        for j in 0..self.sims.len() {
            if self.sims[j].state == SimState::Running
                && self.sims[j].phase == Phase::Shuffle
                && self.sims[j].shuffle_end == now
            {
                self.enter_reduce(j, now);
            }
        }
    }

    fn process_deadlines(&mut self, now: u64) {
        for j in 0..self.sims.len() {
            let sim = &self.sims[j];
            if sim.deadline == Some(now)
                && matches!(sim.state, SimState::Queued | SimState::Running)
            {
                self.cancel_job(j, now, "deadline expired");
            }
        }
    }

    fn process_arrivals(&mut self, now: u64) {
        for j in 0..self.sims.len() {
            if self.sims[j].arrival != now || self.sims[j].state != SimState::Future {
                continue;
            }
            let (name, tenant, reservation) = {
                let s = &self.sims[j].spec;
                (s.name.clone(), s.tenant.clone(), s.reservation)
            };
            *self.tenant_jobs.entry(tenant.clone()).or_insert(0) += 1;
            match self.admission.admit(&name, &tenant, &reservation) {
                Ok(()) => {
                    self.sims[j].state = SimState::Queued;
                    self.admitted += 1;
                }
                Err(e) => {
                    self.sims[j].state = SimState::Terminal;
                    self.sims[j].result = Some(RawCompletion::Rejected(e));
                    self.rejected += 1;
                    self.makespan = self.makespan.max(now);
                }
            }
        }
    }

    // --- job lifecycle ---------------------------------------------------

    /// Runs a queued job's data plane and enters its first stage. The
    /// plane executes *now* on the host, at the simulated instant of the
    /// first grant — a queued job has never run it.
    fn start_job(&mut self, j: usize, now: u64) {
        debug_assert_eq!(self.sims[j].state, SimState::Queued);
        self.admission.start();
        let wait = now.saturating_sub(self.sims[j].arrival);
        self.queue_wait_ticks += wait;
        let tenant = self.sims[j].spec.tenant.clone();
        *self.tenant_wait.entry(tenant).or_insert(0) += wait;
        self.sims[j].started_at = now;
        self.sims[j].queued_wait = Some(wait);
        let Some(plane) = self.sims[j].plane.take() else {
            unreachable!("start_job runs once per job: only Queued jobs reach it")
        };
        match plane(&self.cluster) {
            Ok((output, jobs)) => {
                self.sims[j].stages = build_stages(&jobs);
                self.sims[j].output = Some(output);
                self.sims[j].jobs = jobs;
                self.sims[j].state = SimState::Running;
                self.sims[j].stage = 0;
                self.enter_stage(j, now);
            }
            Err(e) => {
                self.sims[j].state = SimState::Terminal;
                self.sims[j].result = Some(RawCompletion::Failed(e));
                self.failed += 1;
                let reservation = self.sims[j].spec.reservation;
                self.admission.release(&reservation, true);
                self.makespan = self.makespan.max(now);
            }
        }
    }

    /// Positions the job at the first schedulable point of `sim.stage`
    /// (or finishes it if no stages remain).
    fn enter_stage(&mut self, j: usize, now: u64) {
        loop {
            if self.sims[j].stage >= self.sims[j].stages.len() {
                self.finish_job(j, now);
                return;
            }
            let stage = self.sims[j].stages[self.sims[j].stage].clone();
            if !stage.map.is_empty() {
                self.sims[j].phase = Phase::Map;
                self.sims[j].tasks = stage
                    .map
                    .iter()
                    .map(|_| TaskCell {
                        state: TaskState::Pending {
                            ready: now,
                            attempt: 0,
                        },
                        backup: false,
                    })
                    .collect();
                self.sims[j].remaining = stage.map.len();
                return;
            }
            if !stage.reduce.is_empty() {
                if stage.shuffle > 0 {
                    self.sims[j].phase = Phase::Shuffle;
                    self.sims[j].shuffle_end = now + stage.shuffle;
                    self.events.insert(self.sims[j].shuffle_end);
                } else {
                    self.enter_reduce(j, now);
                }
                return;
            }
            self.sims[j].stage += 1;
        }
    }

    fn enter_reduce(&mut self, j: usize, now: u64) {
        let stage = self.sims[j].stages[self.sims[j].stage].clone();
        self.sims[j].phase = Phase::Reduce;
        self.sims[j].tasks = stage
            .reduce
            .iter()
            .map(|_| TaskCell {
                state: TaskState::Pending {
                    ready: now,
                    attempt: 0,
                },
                backup: false,
            })
            .collect();
        self.sims[j].remaining = stage.reduce.len();
    }

    fn advance_phase(&mut self, j: usize, now: u64) {
        match self.sims[j].phase {
            Phase::Map => {
                let stage = self.sims[j].stages[self.sims[j].stage].clone();
                if stage.reduce.is_empty() {
                    self.sims[j].stage += 1;
                    self.enter_stage(j, now);
                } else if stage.shuffle > 0 {
                    self.sims[j].phase = Phase::Shuffle;
                    self.sims[j].shuffle_end = now + stage.shuffle;
                    self.events.insert(self.sims[j].shuffle_end);
                } else {
                    self.enter_reduce(j, now);
                }
            }
            Phase::Reduce => {
                self.sims[j].stage += 1;
                self.enter_stage(j, now);
            }
            Phase::Shuffle => unreachable!("shuffle has no tasks to complete"),
        }
    }

    fn finish_job(&mut self, j: usize, now: u64) {
        let sim = &mut self.sims[j];
        sim.state = SimState::Terminal;
        let stats = JobSchedStats {
            arrival: from_ticks(sim.arrival),
            started: from_ticks(sim.started_at),
            finished: from_ticks(now),
            queue_wait: from_ticks(sim.started_at.saturating_sub(sim.arrival)),
            preemptions: sim.preemptions,
            wasted: from_ticks(sim.wasted_ticks),
            slot_ticks: sim.slot_ticks,
        };
        let mut jobs = std::mem::take(&mut sim.jobs);
        if let Some(first) = jobs.first_mut() {
            first.queue_wait_time = stats.queue_wait;
            first.preemptions = stats.preemptions;
            first.wasted_task_time += stats.wasted;
        }
        let Some(output) = sim.output.take() else {
            unreachable!("a job only finishes after its plane succeeded")
        };
        sim.result = Some(RawCompletion::Finished {
            output,
            jobs,
            stats,
        });
        let reservation = sim.spec.reservation;
        self.completed += 1;
        self.admission.release(&reservation, true);
        self.makespan = self.makespan.max(now);
    }

    fn cancel_job(&mut self, j: usize, now: u64, reason: &str) {
        let started = self.sims[j].state == SimState::Running;
        // Account queue wait for jobs cancelled before their first grant.
        if self.sims[j].state == SimState::Queued {
            let wait = now.saturating_sub(self.sims[j].arrival);
            self.queue_wait_ticks += wait;
            self.sims[j].queued_wait = Some(wait);
            let tenant = self.sims[j].spec.tenant.clone();
            *self.tenant_wait.entry(tenant).or_insert(0) += wait;
        }
        // Kill anything still on a slot, charging elapsed time.
        let killed: Vec<Attempt> = {
            let mut out = Vec::new();
            while let Some(idx) = self.running.iter().position(|a| a.job == j) {
                out.push(self.kill_attempt(idx, now));
            }
            out
        };
        let sim = &mut self.sims[j];
        sim.state = SimState::Terminal;
        let (task, index, attempts, duration) =
            killed
                .first()
                .map_or((TaskKind::Map, 0, 0, Duration::ZERO), |a| {
                    (
                        a.kind,
                        a.task,
                        a.attempt_no + 1,
                        from_ticks(now.saturating_sub(a.started)),
                    )
                });
        let metrics = if started {
            let mut m = sim
                .jobs
                .first()
                .cloned()
                .unwrap_or_else(|| JobMetrics::empty(&sim.spec.name, 0, 0));
            m.queue_wait_time = from_ticks(sim.started_at.saturating_sub(sim.arrival));
            m.preemptions = sim.preemptions;
            m.wasted_task_time += from_ticks(sim.wasted_ticks);
            m
        } else {
            JobMetrics::empty(&sim.spec.name, 0, 0)
        };
        let err = JobError {
            job: sim.spec.name.clone(),
            task,
            index,
            attempts,
            history: vec![AttemptFailure {
                attempt: attempts.saturating_sub(1),
                cause: FailureCause::Cancelled {
                    reason: reason.to_owned(),
                },
                duration,
            }],
            counters: Counters::new(),
            metrics: Box::new(metrics),
            payload: None,
        };
        sim.result = Some(RawCompletion::Cancelled(Box::new(err)));
        let reservation = sim.spec.reservation;
        self.cancelled += 1;
        // A cancelled job was always admitted (deadlines fire only for
        // Queued/Running jobs): free its queue slot and memory.
        self.admission.release(&reservation, started);
        self.makespan = self.makespan.max(now);
    }

    // --- dispatch --------------------------------------------------------

    fn dispatch(&mut self, scheduler: &mut dyn Scheduler, now: u64) {
        loop {
            let mut progress = false;
            for kind in [TaskKind::Map, TaskKind::Reduce] {
                // Regular fill: offer each free slot to the policy.
                while self.free_slots(kind) > 0 {
                    let Some(j) = self.pick_candidate(scheduler, kind, now) else {
                        break;
                    };
                    self.grant(j, kind, now);
                    progress = true;
                }
                // Speculation: duplicate running attempts of opted-in
                // jobs onto otherwise-idle slots.
                while self.free_slots(kind) > 0 {
                    if !self.launch_backup(kind, now) {
                        break;
                    }
                    progress = true;
                }
                // Preemption: a starved candidate may evict lower-value
                // running work, if the policy allows it.
                while self.free_slots(kind) == 0 {
                    if !self.try_preempt(scheduler, kind, now) {
                        break;
                    }
                    progress = true;
                }
            }
            if !progress {
                break;
            }
        }
    }

    fn pick_candidate(
        &mut self,
        scheduler: &mut dyn Scheduler,
        kind: TaskKind,
        now: u64,
    ) -> Option<usize> {
        let cands = candidate_views(&self.sims, &self.running, &self.tenant_charged, kind, now);
        if cands.is_empty() {
            return None;
        }
        let view = SchedView {
            now,
            kind,
            candidates: &cands,
        };
        scheduler.pick(&view).map(|i| cands[i].seq)
    }

    fn grant(&mut self, j: usize, kind: TaskKind, now: u64) {
        if self.sims[j].state == SimState::Queued {
            self.start_job(j, now);
        }
        if self.sims[j].state != SimState::Running {
            return;
        }
        let Some(task) = self.sims[j].ready_task(kind, now) else {
            return;
        };
        let TaskState::Pending {
            attempt: attempt_no,
            ..
        } = self.sims[j].tasks[task].state
        else {
            unreachable!("ready_task returned a non-pending task");
        };
        self.sims[j].tasks[task].state = TaskState::Running;
        let ticks = self.sims[j].task_ticks(kind, task);
        self.place(j, kind, task, attempt_no, false, now, ticks);
    }

    #[allow(clippy::too_many_arguments)]
    fn place(
        &mut self,
        job: usize,
        kind: TaskKind,
        task: usize,
        attempt_no: u32,
        speculative: bool,
        now: u64,
        ticks: u64,
    ) {
        let id = self.next_attempt_id;
        self.next_attempt_id += 1;
        let finish = now + ticks;
        self.running.push(Attempt {
            id,
            job,
            kind,
            task,
            attempt_no,
            speculative,
            started: now,
            ticks,
            finish,
        });
        self.events.insert(finish);
    }

    fn launch_backup(&mut self, kind: TaskKind, now: u64) -> bool {
        // Candidate backups: running, non-speculative attempts of
        // speculate-enabled jobs with no dispatchable pending work and no
        // existing backup for the task. Longest remaining first.
        let pick = self
            .running
            .iter()
            .filter(|a| {
                let sim = &self.sims[a.job];
                a.kind == kind
                    && !a.speculative
                    && sim.spec.speculate
                    && sim.state == SimState::Running
                    && sim.ready_task(kind, now).is_none()
                    && !sim.tasks[a.task].backup
            })
            .max_by_key(|a| {
                (
                    a.finish.saturating_sub(now),
                    std::cmp::Reverse(a.job),
                    std::cmp::Reverse(a.task),
                )
            })
            .map(|a| (a.job, a.task, a.attempt_no));
        let Some((job, task, attempt_no)) = pick else {
            return false;
        };
        self.sims[job].tasks[task].backup = true;
        let ticks = self.sims[job].task_ticks(kind, task);
        self.place(job, kind, task, attempt_no, true, now, ticks);
        true
    }

    fn try_preempt(&mut self, scheduler: &mut dyn Scheduler, kind: TaskKind, now: u64) -> bool {
        let claimant = {
            let cands = candidate_views(&self.sims, &self.running, &self.tenant_charged, kind, now);
            if cands.is_empty() {
                return false;
            }
            let view = SchedView {
                now,
                kind,
                candidates: &cands,
            };
            let Some(i) = scheduler.pick(&view) else {
                return false;
            };
            cands[i].clone_owned()
        };
        let victim_idx = {
            let (views, indices) = attempt_views(&self.sims, &self.running, kind, now);
            if views.is_empty() {
                return false;
            }
            let claimant_view = claimant.as_view();
            match scheduler.preempt(&claimant_view, &views) {
                Some(i) => indices[i],
                None => return false,
            }
        };
        self.preempt_attempt(victim_idx, now);
        self.grant(claimant.seq, kind, now);
        true
    }

    fn preempt_attempt(&mut self, running_idx: usize, now: u64) {
        let a = self.kill_attempt(running_idx, now);
        self.sims[a.job].preemptions += 1;
        self.preemptions += 1;
        self.preempt_log.push(PreemptEvent {
            at: now,
            job: self.sims[a.job].spec.name.clone(),
            task: a.task as u64,
            attempt: a.attempt_no as u64,
        });
        if a.speculative {
            // Killing a backup loses nothing: the original still runs.
            return;
        }
        let has_other_attempt = self
            .running
            .iter()
            .any(|r| r.job == a.job && r.kind == a.kind && r.task == a.task);
        if has_other_attempt {
            // A backup survives and becomes the primary attempt.
            return;
        }
        let next_attempt = a.attempt_no + 1;
        let budget = self.sims[a.job].spec.retry.max_attempts.max(1);
        if next_attempt >= budget {
            self.cancel_job(a.job, now, "preemption exhausted the task retry budget");
            return;
        }
        let backoff = ticks_of(self.sims[a.job].spec.retry.backoff_after(a.attempt_no));
        let ready = now + backoff;
        self.sims[a.job].tasks[a.task].state = TaskState::Pending {
            ready,
            attempt: next_attempt,
        };
        self.events.insert(ready);
    }

    // --- reporting -------------------------------------------------------

    fn build_report(&self, policy: &'static str) -> SchedReport {
        let mut registry = MetricsRegistry::new();
        registry.add("sched.submitted", self.sims.len() as u64);
        registry.add("sched.admitted", self.admitted);
        registry.add("sched.rejected", self.rejected);
        registry.add("sched.completed", self.completed);
        registry.add("sched.cancelled", self.cancelled);
        registry.add("sched.failed", self.failed);
        registry.add("sched.preemptions", self.preemptions);
        registry.add("sched.queue_wait_ticks", self.queue_wait_ticks);
        registry.add("sched.slot_ticks", self.slot_ticks);
        let mut tenants = BTreeMap::new();
        for (tenant, &jobs) in &self.tenant_jobs {
            let slot_ticks = self.tenant_charged.get(tenant).copied().unwrap_or(0);
            let wait = self.tenant_wait.get(tenant).copied().unwrap_or(0);
            registry.add(&format!("sched.tenant.{tenant}.jobs"), jobs);
            registry.add(&format!("sched.tenant.{tenant}.slot_ticks"), slot_ticks);
            registry.add(&format!("sched.tenant.{tenant}.queue_wait_ticks"), wait);
            tenants.insert(
                tenant.clone(),
                TenantStats {
                    jobs,
                    slot_ticks,
                    queue_wait: from_ticks(wait),
                },
            );
        }
        SchedReport {
            policy,
            submitted: self.sims.len() as u64,
            admitted: self.admitted,
            rejected: self.rejected,
            completed: self.completed,
            cancelled: self.cancelled,
            failed: self.failed,
            preemptions: self.preemptions,
            makespan: from_ticks(self.makespan),
            tenants,
            registry,
        }
    }

    fn commit_results(&mut self, results: &mut [Option<RawCompletion>]) {
        for sim in &mut self.sims {
            let Some(result) = sim.result.take() else {
                unreachable!("run() drains stranded jobs, so every sim is terminal")
            };
            results[sim.submit_idx] = Some(result);
        }
    }

    /// Emits the scheduler's own job trace: one `queued` span per
    /// admitted job on lane 0, one `preempt` instant per kill, the
    /// `sched.*` registry, and a total of the run's makespan.
    fn emit_trace(&self, collector: &Collector, registry: &MetricsRegistry) {
        let mut trace = JobTrace::new("scheduler");
        trace.name_lane(0, "scheduler");
        for sim in &self.sims {
            // Every admitted job gets a queued span (zero-length for jobs
            // granted a slot the instant they arrive); rejected jobs were
            // never queued and get none.
            let Some(wait) = sim.queued_wait else {
                continue;
            };
            trace.span(
                Span::new(
                    &["scheduler", "queued", &sim.spec.name],
                    "queued",
                    "sched",
                    0,
                    sim.arrival,
                    wait,
                )
                .with_arg("job", sim.spec.name.as_str())
                .with_arg("tenant", sim.spec.tenant.as_str()),
            );
        }
        for e in &self.preempt_log {
            trace.instant(
                "preempt",
                "sched",
                0,
                e.at,
                vec![
                    ("job".to_owned(), e.job.as_str().into()),
                    ("task".to_owned(), e.task.into()),
                    ("attempt".to_owned(), e.attempt.into()),
                ],
            );
        }
        trace.registry_mut().merge(registry);
        trace.set_total(self.makespan);
        collector.commit(trace);
    }
}

impl<'a> CandidateView<'a> {
    fn clone_owned(&self) -> OwnedCandidate {
        OwnedCandidate {
            seq: self.seq,
            name: self.name.to_owned(),
            tenant: self.tenant.to_owned(),
            arrival: self.arrival,
            priority: self.priority,
            weight: self.weight,
            tenant_used: self.tenant_used,
        }
    }
}

struct OwnedCandidate {
    seq: usize,
    name: String,
    tenant: String,
    arrival: u64,
    priority: i32,
    weight: u64,
    tenant_used: u64,
}

impl OwnedCandidate {
    fn as_view(&self) -> CandidateView<'_> {
        CandidateView {
            seq: self.seq,
            name: &self.name,
            tenant: &self.tenant,
            arrival: self.arrival,
            priority: self.priority,
            weight: self.weight,
            tenant_used: self.tenant_used,
        }
    }
}

/// Builds the policy's view of the schedulable jobs, in canonical order.
/// Tenant usage shown to the policy is charged slot-ticks plus the full
/// committed duration of running attempts — commitments are what stop a
/// tenant with many short tasks from starving one with few long tasks.
fn candidate_views<'a>(
    sims: &'a [Sim],
    running: &[Attempt],
    charged: &BTreeMap<String, u64>,
    kind: TaskKind,
    now: u64,
) -> Vec<CandidateView<'a>> {
    let mut used: BTreeMap<&str, u64> = BTreeMap::new();
    for (tenant, &ticks) in charged {
        used.insert(tenant.as_str(), ticks);
    }
    for a in running {
        *used.entry(sims[a.job].spec.tenant.as_str()).or_insert(0) += a.ticks;
    }
    sims.iter()
        .enumerate()
        .filter(|(_, sim)| match sim.state {
            // An unstarted job's task shape is unknown until its plane
            // runs; it bids for a map slot (jobs here always map first).
            SimState::Queued => kind == TaskKind::Map,
            SimState::Running => sim.ready_task(kind, now).is_some(),
            _ => false,
        })
        .map(|(seq, sim)| CandidateView {
            seq,
            name: &sim.spec.name,
            tenant: &sim.spec.tenant,
            arrival: sim.arrival,
            priority: sim.spec.priority,
            weight: sim.spec.weight.max(1),
            tenant_used: used.get(sim.spec.tenant.as_str()).copied().unwrap_or(0),
        })
        .collect()
}

/// Builds the policy's view of running attempts of the given kind, in
/// canonical order, alongside each view's index into `running`.
fn attempt_views<'a>(
    sims: &'a [Sim],
    running: &[Attempt],
    kind: TaskKind,
    now: u64,
) -> (Vec<AttemptView<'a>>, Vec<usize>) {
    let mut order: Vec<usize> = (0..running.len())
        .filter(|&i| running[i].kind == kind)
        .collect();
    order.sort_by_key(|&i| {
        (
            running[i].job,
            running[i].task,
            running[i].speculative,
            running[i].id,
        )
    });
    let views = order
        .iter()
        .map(|&i| {
            let a = &running[i];
            let sim = &sims[a.job];
            AttemptView {
                seq: a.job,
                name: &sim.spec.name,
                tenant: &sim.spec.tenant,
                priority: sim.spec.priority,
                kind: a.kind,
                task_index: a.task,
                attempt: a.attempt_no,
                speculative: a.speculative,
                started: a.started,
                remaining: a.finish.saturating_sub(now),
            }
        })
        .collect();
    (views, order)
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    use super::super::scheduler::{FairShareScheduler, PriorityScheduler};
    use super::*;

    fn small_cluster(map_slots: usize, reduce_slots: usize) -> ClusterConfig {
        ClusterConfig {
            map_slots,
            reduce_slots,
            ..ClusterConfig::default()
        }
    }

    fn metrics(name: &str, map_ms: &[u64], shuffle_ms: u64, reduce_ms: &[u64]) -> JobMetrics {
        let mut m = JobMetrics::empty(name, map_ms.len(), reduce_ms.len());
        m.map_task_durations = map_ms.iter().map(|&v| Duration::from_millis(v)).collect();
        m.reduce_task_durations = reduce_ms
            .iter()
            .map(|&v| Duration::from_millis(v))
            .collect();
        m.shuffle_time = Duration::from_millis(shuffle_ms);
        m
    }

    /// A plane returning `value` with one map-only job of the given task
    /// durations.
    fn map_plane(
        value: u64,
        map_ms: Vec<u64>,
    ) -> impl FnOnce(&ClusterConfig) -> Result<(u64, Vec<JobMetrics>), Error> {
        move |_| Ok((value, vec![metrics("p", &map_ms, 0, &[])]))
    }

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn fifo_serializes_contending_jobs_and_accrues_queue_wait() {
        let mut exec = ClusterExecutor::new(small_cluster(1, 1));
        let ha = exec
            .submit(JobSpec::new("a", "t"), map_plane(1, vec![10]))
            .unwrap();
        let hb = exec
            .submit(JobSpec::new("b", "t"), map_plane(2, vec![10]))
            .unwrap();
        let report = exec.run();
        assert_eq!(report.policy, "fifo");
        assert_eq!((report.completed, report.rejected), (2, 0));
        assert_eq!(report.makespan, ms(20));
        let a = exec.take(ha).unwrap();
        assert_eq!((a.output, a.stats.queue_wait), (1, ms(0)));
        let b = exec.take(hb).unwrap();
        assert_eq!(b.output, 2);
        assert_eq!(b.stats.queue_wait, ms(10));
        assert_eq!(b.jobs[0].queue_wait_time, ms(10));
        assert_eq!(report.registry.counter("sched.queue_wait_ticks"), 10_000);
    }

    #[test]
    fn full_queue_rejects_without_running_the_plane() {
        let mut exec = ClusterExecutor::new(small_cluster(1, 1))
            .with_admission(AdmissionConfig::with_queue_depth(1));
        let ran = Arc::new(AtomicBool::new(false));
        let ran_b = Arc::clone(&ran);
        let ha = exec
            .submit(JobSpec::new("a", "t"), map_plane(1, vec![5]))
            .unwrap();
        let hb = exec
            .submit(JobSpec::new("b", "t"), move |_: &ClusterConfig| {
                ran_b.store(true, Ordering::SeqCst);
                Ok((2u64, vec![metrics("p", &[5], 0, &[])]))
            })
            .unwrap();
        let report = exec.run();
        assert_eq!(
            (report.admitted, report.rejected, report.completed),
            (1, 1, 1)
        );
        assert!(exec.take(ha).is_finished());
        match exec.take(hb) {
            JobCompletion::Rejected(Error::AdmissionRejected {
                job,
                tenant,
                reason,
            }) => {
                assert_eq!((job.as_str(), tenant.as_str()), ("b", "t"));
                assert!(reason.contains("queue full"), "{reason}");
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        assert!(!ran.load(Ordering::SeqCst), "rejected plane must never run");
    }

    #[test]
    fn infeasible_reservation_is_rejected_at_submit() {
        let mut exec = ClusterExecutor::new(small_cluster(2, 1));
        let spec =
            JobSpec::new("big", "t").with_reservation(Reservation::default().with_slots(3, 0));
        let err = exec.submit(spec, map_plane(0, vec![1])).unwrap_err();
        assert!(matches!(err, Error::AdmissionRejected { .. }));
    }

    #[test]
    fn deadline_cancels_a_queued_job_without_running_its_plane() {
        let mut exec = ClusterExecutor::new(small_cluster(1, 1));
        let ran = Arc::new(AtomicBool::new(false));
        let ran_b = Arc::clone(&ran);
        let ha = exec
            .submit(JobSpec::new("a", "t"), map_plane(1, vec![20]))
            .unwrap();
        let hb = exec
            .submit(
                JobSpec::new("b", "t").with_deadline(ms(5)),
                move |_: &ClusterConfig| {
                    ran_b.store(true, Ordering::SeqCst);
                    Ok((2u64, vec![metrics("p", &[5], 0, &[])]))
                },
            )
            .unwrap();
        let report = exec.run();
        assert_eq!((report.completed, report.cancelled), (1, 1));
        assert!(exec.take(ha).is_finished());
        match exec.take(hb) {
            JobCompletion::Cancelled(err) => {
                assert!(
                    err.last_cause().contains("deadline"),
                    "{}",
                    err.last_cause()
                );
                assert_eq!(
                    err.metrics.map_tasks, 0,
                    "partial metrics for a never-run job"
                );
            }
            other => panic!("expected cancellation, got {other:?}"),
        }
        assert!(
            !ran.load(Ordering::SeqCst),
            "cancelled-in-queue plane must never run"
        );
        // The 5 ms spent queued still shows up in the tenant's wait.
        assert_eq!(report.tenants["t"].queue_wait, ms(5));
    }

    #[test]
    fn priority_preempts_and_requeues_through_backoff() {
        let mut exec = ClusterExecutor::new(small_cluster(1, 1)).with_scheduler(PriorityScheduler);
        let ha = exec
            .submit(JobSpec::new("low", "t"), map_plane(1, vec![20]))
            .unwrap();
        let hb = exec
            .submit(
                JobSpec::new("high", "t")
                    .with_priority(5)
                    .arriving_at(ms(1)),
                map_plane(2, vec![5]),
            )
            .unwrap();
        let report = exec.run();
        assert_eq!(report.preemptions, 1);
        assert_eq!(report.completed, 2);
        let high = exec.take(hb).unwrap();
        assert_eq!(
            high.stats.finished,
            ms(6),
            "high runs immediately after preempting"
        );
        let low = exec.take(ha).unwrap();
        assert_eq!(low.stats.preemptions, 1);
        assert_eq!(
            low.stats.wasted,
            ms(1),
            "1 ms of the killed attempt is wasted"
        );
        assert_eq!(low.jobs[0].preemptions, 1);
        assert_eq!(low.jobs[0].wasted_task_time, ms(1));
        // Re-queued at 1 ms + backoff_after(0) = 100 ms, reruns in full.
        assert_eq!(low.stats.finished, ms(121));
        assert_eq!(report.makespan, ms(121));
    }

    #[test]
    fn preemption_kills_speculative_backups_first() {
        let mut exec = ClusterExecutor::new(small_cluster(2, 1)).with_scheduler(PriorityScheduler);
        let ha = exec
            .submit(
                JobSpec::new("spec", "t").with_speculation(true),
                map_plane(1, vec![20]),
            )
            .unwrap();
        let hb = exec
            .submit(
                JobSpec::new("high", "t")
                    .with_priority(5)
                    .arriving_at(ms(1)),
                map_plane(2, vec![5]),
            )
            .unwrap();
        let report = exec.run();
        assert_eq!(report.preemptions, 1);
        let a = exec.take(ha).unwrap();
        // The backup died; the original was untouched and finishes on time.
        assert_eq!(a.stats.finished, ms(20));
        assert_eq!(a.stats.preemptions, 1);
        assert!(exec.take(hb).is_finished());
    }

    #[test]
    fn fair_share_splits_slot_ticks_evenly_between_equal_tenants() {
        let mut exec = ClusterExecutor::new(small_cluster(2, 1)).with_scheduler(FairShareScheduler);
        let mut handles = Vec::new();
        for tenant in ["x", "y"] {
            for i in 0..3 {
                let spec = JobSpec::new(format!("{tenant}-{i}"), tenant);
                handles.push(exec.submit(spec, map_plane(0, vec![10])).unwrap());
            }
        }
        let report = exec.run();
        assert_eq!(report.completed, 6);
        let x = report.tenants["x"].slot_ticks;
        let y = report.tenants["y"].slot_ticks;
        assert_eq!(x, y, "equal demand, equal weight: equal slot-ticks");
        // Conservation: tenant charges add up to the global total, which
        // equals the sum of per-job consumption.
        let per_job: u64 = handles
            .into_iter()
            .map(|h| exec.take(h).unwrap().stats.slot_ticks)
            .sum();
        assert_eq!(x + y, report.registry.counter("sched.slot_ticks"));
        assert_eq!(x + y, per_job);
    }

    #[test]
    fn stages_run_map_shuffle_reduce_in_sequence() {
        let mut exec = ClusterExecutor::new(small_cluster(2, 1));
        let h = exec
            .submit(JobSpec::new("j", "t"), |_: &ClusterConfig| {
                Ok(((), vec![metrics("s1", &[5, 5], 2, &[3])]))
            })
            .unwrap();
        let report = exec.run();
        // Map makespan 5 (two tasks, two slots), shuffle 2, reduce 3.
        assert_eq!(report.makespan, ms(10));
        assert_eq!(exec.take(h).unwrap().stats.finished, ms(10));
    }

    #[test]
    fn plane_failure_is_isolated_to_its_own_job() {
        let mut exec = ClusterExecutor::new(small_cluster(1, 1));
        let ha = exec
            .submit(
                JobSpec::new("bad", "t"),
                |_: &ClusterConfig| -> Result<(u64, Vec<JobMetrics>), Error> {
                    Err(Error::AdmissionRejected {
                        job: "bad".into(),
                        tenant: "t".into(),
                        reason: "stand-in data-plane failure".into(),
                    })
                },
            )
            .unwrap();
        let hb = exec
            .submit(JobSpec::new("good", "t"), map_plane(7, vec![5]))
            .unwrap();
        let report = exec.run();
        assert_eq!((report.failed, report.completed), (1, 1));
        assert!(matches!(exec.take(ha), JobCompletion::Failed(_)));
        assert_eq!(exec.take(hb).unwrap().output, 7);
    }

    #[test]
    fn submission_order_does_not_change_the_schedule() {
        let build = |order: &[usize]| {
            let specs = [("a", "x", 0u64, 7u64), ("b", "y", 2, 5), ("c", "x", 4, 9)];
            let mut exec =
                ClusterExecutor::new(small_cluster(1, 1)).with_scheduler(FairShareScheduler);
            let mut handles: Vec<Option<JobHandle<u64>>> = (0..3).map(|_| None).collect();
            for &i in order {
                let (name, tenant, arrival_ms, task_ms) = specs[i];
                let spec = JobSpec::new(name, tenant).arriving_at(ms(arrival_ms));
                handles[i] = Some(
                    exec.submit(spec, map_plane(i as u64, vec![task_ms]))
                        .unwrap(),
                );
            }
            let report = exec.run();
            let mut fingerprint = format!("{report:?}");
            for h in handles.into_iter().map(Option::unwrap) {
                let o = exec.take(h).unwrap();
                fingerprint.push_str(&format!("{:?}|{:?};", o.stats, o.output));
            }
            fingerprint
        };
        let base = build(&[0, 1, 2]);
        assert_eq!(base, build(&[2, 0, 1]));
        assert_eq!(base, build(&[1, 2, 0]));
    }

    #[test]
    fn telemetry_emits_queued_spans_and_sched_counters() {
        use skymr_telemetry::EventKind;
        let collector = Collector::new();
        let mut exec = ClusterExecutor::new(small_cluster(1, 1)).with_collector(collector.clone());
        let _ha = exec
            .submit(JobSpec::new("a", "t"), map_plane(1, vec![10]))
            .unwrap();
        let _hb = exec
            .submit(JobSpec::new("b", "t"), map_plane(2, vec![10]))
            .unwrap();
        exec.run();
        let doc = collector.finish();
        let queued: Vec<_> = doc
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Complete && e.name == "queued")
            .collect();
        assert_eq!(queued.len(), 2, "one queued span per admitted job");
        assert!(queued.iter().all(|e| e.cat == "sched"));
        let (_, registry) = &doc.registries[0];
        assert_eq!(registry.counter("sched.completed"), 2);
        assert_eq!(registry.counter("sched.tenant.t.slot_ticks"), 20_000);
    }
}
