//! Admission control: decide *whether* a job may enter the cluster at
//! all, before any scheduling policy decides *when* it runs.
//!
//! The controller enforces two independent limits, both deterministic
//! functions of the submission set:
//!
//! * **static feasibility** — a job whose [`Reservation`] demands more
//!   map/reduce slots than the [`ClusterConfig`] owns, or more memory
//!   than the configured capacity, can never run and is rejected
//!   synchronously at submit time;
//! * **load shedding** — a bounded admission queue and a cluster-wide
//!   memory ledger. When the queue is full or reserved memory would
//!   exceed capacity, the job is rejected with a structured
//!   [`Error::AdmissionRejected`] naming the job, tenant, and the exact
//!   limit that fired, so callers can back off or re-submit instead of
//!   parsing strings.
//!
//! Rejection is graceful degradation, not failure: an overloaded cluster
//! keeps completing admitted work at full speed and sheds the excess
//! predictably rather than thrashing.

use skymr_common::Error;

use crate::cluster::ClusterConfig;

/// Resources a job asks the cluster to set aside for it.
///
/// Slots are a *feasibility* requirement (the job's waves need at least
/// this many concurrent slots to make progress), checked against cluster
/// capacity at submit time. Memory is a *reservation*: held from
/// admission until the job leaves the cluster, counted against
/// [`AdmissionConfig::memory_capacity`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// Minimum concurrent map slots the job requires.
    pub map_slots: usize,
    /// Minimum concurrent reduce slots the job requires.
    pub reduce_slots: usize,
    /// Memory held for the job while queued or running, in bytes.
    pub memory_bytes: u64,
}

impl Default for Reservation {
    fn default() -> Self {
        Self {
            map_slots: 1,
            reduce_slots: 0,
            memory_bytes: 0,
        }
    }
}

impl Reservation {
    /// A reservation demanding nothing beyond one map slot.
    pub fn minimal() -> Self {
        Self::default()
    }

    /// Sets the memory reservation.
    pub fn with_memory(mut self, bytes: u64) -> Self {
        self.memory_bytes = bytes;
        self
    }

    /// Sets the slot requirements.
    pub fn with_slots(mut self, map: usize, reduce: usize) -> Self {
        self.map_slots = map;
        self.reduce_slots = reduce;
        self
    }
}

/// Limits the [`AdmissionController`] enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum jobs waiting for their first slot. Submissions beyond
    /// this are rejected, not blocked.
    pub max_queued: usize,
    /// Cluster-wide memory available for [`Reservation::memory_bytes`].
    /// `None` leaves memory unmetered.
    pub memory_capacity: Option<u64>,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            max_queued: 16,
            memory_capacity: None,
        }
    }
}

impl AdmissionConfig {
    /// A config bounding only the queue depth.
    pub fn with_queue_depth(max_queued: usize) -> Self {
        Self {
            max_queued,
            ..Self::default()
        }
    }

    /// Sets the cluster-wide memory capacity.
    pub fn with_memory_capacity(mut self, bytes: u64) -> Self {
        self.memory_capacity = Some(bytes);
        self
    }
}

/// The admission state machine: a queue-depth counter plus a memory
/// ledger.
///
/// The lifecycle per job is `admit` (queued, memory reserved) →
/// [`start`](Self::start) (left the queue; memory stays reserved) →
/// [`release`](Self::release) (finished, cancelled, or failed; memory
/// returned). A job rejected by [`admit`](Self::admit) holds nothing and
/// needs no release.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    config: AdmissionConfig,
    queued: usize,
    reserved_memory: u64,
}

impl Default for AdmissionController {
    fn default() -> Self {
        Self::new(AdmissionConfig::default())
    }
}

impl AdmissionController {
    /// Creates a controller with the given limits.
    pub fn new(config: AdmissionConfig) -> Self {
        Self {
            config,
            queued: 0,
            reserved_memory: 0,
        }
    }

    /// The configured limits.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Jobs currently waiting in the admission queue.
    pub fn queued(&self) -> usize {
        self.queued
    }

    /// Memory currently reserved by admitted jobs, in bytes.
    pub fn reserved_memory(&self) -> u64 {
        self.reserved_memory
    }

    /// Checks the limits that do not depend on current load: a
    /// reservation no cluster of this shape could ever satisfy is
    /// rejected here, synchronously at submit time.
    pub fn check_static(
        &self,
        job: &str,
        tenant: &str,
        reservation: &Reservation,
        cluster: &ClusterConfig,
    ) -> Result<(), Error> {
        let reject = |reason: String| Error::AdmissionRejected {
            job: job.to_owned(),
            tenant: tenant.to_owned(),
            reason,
        };
        if reservation.map_slots > cluster.map_slots {
            return Err(reject(format!(
                "reserves {} map slots but the cluster has {}",
                reservation.map_slots, cluster.map_slots
            )));
        }
        if reservation.reduce_slots > cluster.reduce_slots {
            return Err(reject(format!(
                "reserves {} reduce slots but the cluster has {}",
                reservation.reduce_slots, cluster.reduce_slots
            )));
        }
        if let Some(capacity) = self.config.memory_capacity {
            if reservation.memory_bytes > capacity {
                return Err(reject(format!(
                    "reserves {} bytes of memory but the cluster has {capacity}",
                    reservation.memory_bytes
                )));
            }
        }
        Ok(())
    }

    /// Attempts to admit a job against the current load: bounded queue
    /// depth and the memory ledger. On success the job occupies a queue
    /// slot and its memory is reserved.
    pub fn admit(
        &mut self,
        job: &str,
        tenant: &str,
        reservation: &Reservation,
    ) -> Result<(), Error> {
        let reject = |reason: String| Error::AdmissionRejected {
            job: job.to_owned(),
            tenant: tenant.to_owned(),
            reason,
        };
        if self.queued >= self.config.max_queued {
            return Err(reject(format!(
                "admission queue full ({} of {})",
                self.queued, self.config.max_queued
            )));
        }
        if let Some(capacity) = self.config.memory_capacity {
            let after = self
                .reserved_memory
                .saturating_add(reservation.memory_bytes);
            if after > capacity {
                return Err(reject(format!(
                    "memory reservation of {} bytes exceeds remaining capacity ({} of {capacity} reserved)",
                    reservation.memory_bytes, self.reserved_memory
                )));
            }
        }
        self.queued += 1;
        self.reserved_memory = self
            .reserved_memory
            .saturating_add(reservation.memory_bytes);
        Ok(())
    }

    /// Marks an admitted job as running: it leaves the queue but keeps
    /// its memory reservation.
    pub fn start(&mut self) {
        debug_assert!(self.queued > 0, "start() without a queued job");
        self.queued = self.queued.saturating_sub(1);
    }

    /// Returns a job's resources once it leaves the cluster. `started`
    /// says whether [`start`](Self::start) was already called for it (a
    /// job cancelled while still queued must also free its queue slot).
    pub fn release(&mut self, reservation: &Reservation, started: bool) {
        if !started {
            self.queued = self.queued.saturating_sub(1);
        }
        self.reserved_memory = self
            .reserved_memory
            .saturating_sub(reservation.memory_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infeasible_reservations_are_rejected_statically() {
        let cluster = ClusterConfig {
            map_slots: 4,
            reduce_slots: 2,
            ..ClusterConfig::default()
        };
        let ctl = AdmissionController::default();
        let too_many_maps = Reservation::default().with_slots(5, 0);
        let err = ctl
            .check_static("j", "t", &too_many_maps, &cluster)
            .unwrap_err();
        assert!(
            matches!(err, Error::AdmissionRejected { ref reason, .. } if reason.contains("map slots"))
        );
        let too_many_reduces = Reservation::default().with_slots(1, 3);
        assert!(ctl
            .check_static("j", "t", &too_many_reduces, &cluster)
            .is_err());
        assert!(ctl
            .check_static("j", "t", &Reservation::default().with_slots(4, 2), &cluster)
            .is_ok());
    }

    #[test]
    fn queue_depth_bounds_admission_and_releases_free_slots() {
        let mut ctl = AdmissionController::new(AdmissionConfig::with_queue_depth(2));
        let res = Reservation::default();
        ctl.admit("a", "t", &res).unwrap();
        ctl.admit("b", "t", &res).unwrap();
        let err = ctl.admit("c", "t", &res).unwrap_err();
        assert!(matches!(err, Error::AdmissionRejected { ref reason, .. }
            if reason == "admission queue full (2 of 2)"));
        // A job starting frees a queue slot even before it finishes.
        ctl.start();
        ctl.admit("c", "t", &res).unwrap();
        // One queued job cancelled, one running job finished: all state returns.
        ctl.release(&res, false);
        ctl.release(&res, false);
        ctl.release(&res, true);
        assert_eq!(ctl.queued(), 0);
        assert_eq!(ctl.reserved_memory(), 0);
    }

    #[test]
    fn memory_ledger_rejects_past_capacity_and_refunds_on_release() {
        let cfg = AdmissionConfig::with_queue_depth(8).with_memory_capacity(100);
        let mut ctl = AdmissionController::new(cfg);
        let big = Reservation::default().with_memory(60);
        ctl.admit("a", "t", &big).unwrap();
        let err = ctl.admit("b", "t", &big).unwrap_err();
        assert!(matches!(err, Error::AdmissionRejected { ref reason, .. }
            if reason.contains("exceeds remaining capacity")));
        ctl.release(&big, false);
        ctl.admit("b", "t", &big).unwrap();
        assert_eq!(ctl.reserved_memory(), 60);
        // Statically impossible regardless of load.
        let never = Reservation::default().with_memory(101);
        let cluster = ClusterConfig::default();
        assert!(ctl.check_static("c", "t", &never, &cluster).is_err());
    }
}
