//! Multi-tenant job scheduling: one simulated cluster, many jobs.
//!
//! [`run_job`](crate::run_job) owns its whole cluster for exactly one job.
//! This module adds the production shape on top of it: a
//! [`ClusterExecutor`] accepts job submissions from many tenants, pushes
//! them through an [`AdmissionController`] (bounded queue, slot/memory
//! reservations checked against capacity, deterministic rejection via
//! [`skymr_common::Error::AdmissionRejected`]), and interleaves the
//! admitted jobs' tasks over the cluster's shared map/reduce slot pools
//! under a pluggable [`Scheduler`] policy — FIFO, deficit-weighted
//! fair-share across tenants, or priority with preemption.
//!
//! # Two planes, one clock
//!
//! Each submission carries a *data plane*: a closure that computes the
//! job's actual bytes (typically via [`run_job`](crate::run_job) or a
//! whole skyline pipeline) and reports the per-task modeled durations in
//! its [`JobMetrics`](crate::JobMetrics). The executor runs that closure
//! lazily — at the simulated instant the scheduler first grants the job a
//! slot, never while it is only queued — so a queued job pins no input
//! and a job cancelled before its start never executes at all (with
//! [`FnSplits`](crate::splits::FnSplits) sources even running jobs
//! materialize one split at a time).
//!
//! The *control plane* is a single-threaded discrete-event simulation
//! over those modeled task durations: tasks from all admitted jobs
//! compete for the shared slot pools, queue waits accrue on the simulated
//! clock, deadlines cancel, and preemptions kill and re-queue attempts
//! through the same [`RetryPolicy`](crate::RetryPolicy) backoff a
//! recoverable fault would use. Because the simulation consumes only
//! model facts — never host time, thread interleavings, or submission
//! call order (jobs are ranked by arrival tick, tenant, and name) — every
//! output byte and every `sched.*` counter is a pure function of the
//! submission set, pinned by `schedule_shake` in the test suite.
//!
//! # Isolation
//!
//! Fault plans, blacklists, and telemetry stay per-job: each data plane
//! runs with its own [`JobConfig`](crate::JobConfig), so one tenant's
//! chaos seed or poisoned records cannot perturb a co-tenant's bytes.
//! The executor's own telemetry (schema-pinned `queued` spans, `preempt`
//! instants, `sched.*` counters) describes only the scheduling layer.

mod admission;
mod executor;
mod scheduler;

pub use admission::{AdmissionConfig, AdmissionController, Reservation};
pub use executor::{
    ClusterExecutor, JobCompletion, JobHandle, JobSchedStats, JobSpec, SchedOutcome, SchedReport,
    TenantStats,
};
pub use scheduler::{
    AttemptView, CandidateView, FairShareScheduler, FifoScheduler, PriorityScheduler, SchedView,
    Scheduler,
};
