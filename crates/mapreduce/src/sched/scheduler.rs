//! Pluggable scheduling policies over the shared slot pools.
//!
//! The [`ClusterExecutor`](super::ClusterExecutor) owns the mechanics —
//! slot accounting, the event clock, preemption kill/re-queue — and asks
//! a [`Scheduler`] only the two policy questions: *which queued job gets
//! the next free slot* ([`Scheduler::pick`]) and *which running attempt,
//! if any, should be evicted for a queued job that cannot otherwise run*
//! ([`Scheduler::preempt`]).
//!
//! Every policy here is a pure function of the view it is handed, and
//! every comparison bottoms out in the executor's canonical job rank
//! ([`CandidateView::seq`]) — never submission call order, never map
//! iteration order — so a policy decision is reproducible across worker
//! counts and submission interleavings.

use crate::fault::TaskKind;

/// A queued job eligible for the slot being offered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateView<'a> {
    /// Canonical job rank: jobs sorted by (arrival, tenant, name,
    /// submission index). All tie-breaks bottom out here.
    pub seq: usize,
    /// Job name (unique per executor run).
    pub name: &'a str,
    /// Owning tenant.
    pub tenant: &'a str,
    /// Arrival time on the simulated clock, in ticks.
    pub arrival: u64,
    /// Scheduling priority; larger is more urgent. Only
    /// [`PriorityScheduler`] consults it.
    pub priority: i32,
    /// Fair-share weight of the owning tenant (≥ 1).
    pub weight: u64,
    /// Slot-ticks already charged to the owning tenant, including
    /// commitments of currently running attempts.
    pub tenant_used: u64,
}

/// A running attempt, offered to [`Scheduler::preempt`] as a potential
/// victim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttemptView<'a> {
    /// Canonical rank of the job the attempt belongs to.
    pub seq: usize,
    /// Job name.
    pub name: &'a str,
    /// Owning tenant.
    pub tenant: &'a str,
    /// The job's scheduling priority.
    pub priority: i32,
    /// Map or reduce slot the attempt occupies.
    pub kind: TaskKind,
    /// Task index within its phase.
    pub task_index: usize,
    /// Attempt number for that task (0-based).
    pub attempt: u32,
    /// Whether this is a speculative backup of a still-running original.
    /// Backups are always preferred as victims: killing one wastes work
    /// but never loses a task.
    pub speculative: bool,
    /// Tick at which the attempt started.
    pub started: u64,
    /// Modeled ticks left until the attempt completes.
    pub remaining: u64,
}

/// Everything a policy may consult when picking the next job.
#[derive(Debug)]
pub struct SchedView<'a> {
    /// Current simulated time, in ticks.
    pub now: u64,
    /// Which slot pool the free slot belongs to.
    pub kind: TaskKind,
    /// Jobs with a runnable task of this kind, in canonical rank order.
    pub candidates: &'a [CandidateView<'a>],
}

/// A scheduling policy.
///
/// Implementations must be deterministic: the same view must always
/// yield the same decision. Policies carry `&mut self` so stateful
/// disciplines (round-robin cursors, decaying usage) are possible, but
/// any such state must itself derive only from the views seen so far.
pub trait Scheduler: std::fmt::Debug + Send {
    /// Policy name, used in reports and telemetry.
    fn name(&self) -> &'static str;

    /// Picks the candidate to grant the free slot, as an index into
    /// `view.candidates`, or `None` to leave the slot idle.
    fn pick(&mut self, view: &SchedView<'_>) -> Option<usize>;

    /// Given a queued job that found no free slot, picks a running
    /// attempt to evict for it, as an index into `running`, or `None`
    /// to let the job wait. `running` holds only attempts on slots of
    /// the kind the claimant needs, in canonical order.
    fn preempt(
        &mut self,
        claimant: &CandidateView<'_>,
        running: &[AttemptView<'_>],
    ) -> Option<usize> {
        let _ = (claimant, running);
        None
    }
}

/// First-in, first-out: jobs run in arrival order, ties broken by
/// canonical rank. The baseline policy — no fairness, no preemption.
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoScheduler;

impl Scheduler for FifoScheduler {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn pick(&mut self, view: &SchedView<'_>) -> Option<usize> {
        view.candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| (c.arrival, c.seq))
            .map(|(i, _)| i)
    }
}

/// Deficit-weighted fair share across tenants.
///
/// Each free slot goes to the candidate whose tenant has consumed the
/// least slot-ticks *per unit of weight*. Comparing `used_a / weight_a`
/// against `used_b / weight_b` is done as the cross-multiplication
/// `used_a · weight_b` vs `used_b · weight_a` in `u128`, so the
/// discipline is exact integer arithmetic with no rounding drift.
/// Usage includes the committed ticks of running attempts, which is what
/// prevents a tenant with many short tasks from starving one with few
/// long tasks.
#[derive(Debug, Clone, Copy, Default)]
pub struct FairShareScheduler;

impl Scheduler for FairShareScheduler {
    fn name(&self) -> &'static str {
        "fair"
    }

    fn pick(&mut self, view: &SchedView<'_>) -> Option<usize> {
        let norm = |c: &CandidateView<'_>| (c.tenant_used as u128, c.weight.max(1) as u128);
        view.candidates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let (ua, wa) = norm(a);
                let (ub, wb) = norm(b);
                (ua * wb)
                    .cmp(&(ub * wa))
                    .then_with(|| (a.arrival, a.seq).cmp(&(b.arrival, b.seq)))
            })
            .map(|(i, _)| i)
    }
}

/// Strict priority with preemption.
///
/// Slots go to the highest-priority candidate (FIFO within a priority
/// band). A queued job that finds every slot busy may evict a running
/// attempt of strictly lower priority. Victim choice is deterministic
/// and minimises lost work: speculative backups first (killing one loses
/// nothing), then the lowest-priority, youngest-ranked, highest-indexed
/// attempt.
#[derive(Debug, Clone, Copy, Default)]
pub struct PriorityScheduler;

impl Scheduler for PriorityScheduler {
    fn name(&self) -> &'static str {
        "priority"
    }

    fn pick(&mut self, view: &SchedView<'_>) -> Option<usize> {
        view.candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| (std::cmp::Reverse(c.priority), c.arrival, c.seq))
            .map(|(i, _)| i)
    }

    fn preempt(
        &mut self,
        claimant: &CandidateView<'_>,
        running: &[AttemptView<'_>],
    ) -> Option<usize> {
        running
            .iter()
            .enumerate()
            .filter(|(_, a)| a.priority < claimant.priority)
            .min_by_key(|(_, a)| {
                // Speculative backups are free kills; among regular
                // attempts, evict the least important job's newest work.
                (
                    !a.speculative,
                    a.priority,
                    std::cmp::Reverse(a.seq),
                    std::cmp::Reverse(a.task_index),
                )
            })
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(
        seq: usize,
        arrival: u64,
        priority: i32,
        weight: u64,
        used: u64,
    ) -> CandidateView<'static> {
        CandidateView {
            seq,
            name: "j",
            tenant: "t",
            arrival,
            priority,
            weight,
            tenant_used: used,
        }
    }

    fn view<'a>(candidates: &'a [CandidateView<'a>]) -> SchedView<'a> {
        SchedView {
            now: 0,
            kind: TaskKind::Map,
            candidates,
        }
    }

    #[test]
    fn fifo_orders_by_arrival_then_rank() {
        let cs = [
            cand(2, 10, 0, 1, 0),
            cand(0, 5, 0, 1, 0),
            cand(1, 5, 0, 1, 0),
        ];
        assert_eq!(FifoScheduler.pick(&view(&cs)), Some(1));
        assert_eq!(FifoScheduler.pick(&view(&[])), None);
    }

    #[test]
    fn fair_share_favors_the_most_underserved_tenant_per_weight() {
        // Tenant usage 300 at weight 3 (ratio 100) vs usage 150 at
        // weight 1 (ratio 150): the weighted tenant is more underserved.
        let cs = [cand(0, 0, 0, 1, 150), cand(1, 0, 0, 3, 300)];
        assert_eq!(FairShareScheduler.pick(&view(&cs)), Some(1));
        // Exact ties fall back to FIFO order.
        let tie = [cand(1, 7, 0, 2, 100), cand(0, 3, 0, 2, 100)];
        assert_eq!(FairShareScheduler.pick(&view(&tie)), Some(1));
        // A zero weight is clamped to 1 rather than dividing by zero.
        let clamped = [cand(0, 0, 0, 0, 10), cand(1, 0, 0, 1, 20)];
        assert_eq!(FairShareScheduler.pick(&view(&clamped)), Some(0));
    }

    #[test]
    fn priority_picks_highest_band_then_fifo() {
        let cs = [
            cand(0, 0, 1, 1, 0),
            cand(1, 9, 5, 1, 0),
            cand(2, 4, 5, 1, 0),
        ];
        assert_eq!(PriorityScheduler.pick(&view(&cs)), Some(2));
    }

    #[test]
    fn preemption_prefers_speculative_then_lowest_priority_newest_work() {
        let attempt = |seq, priority, task_index, speculative| AttemptView {
            seq,
            name: "j",
            tenant: "t",
            priority,
            kind: TaskKind::Map,
            task_index,
            attempt: 0,
            speculative,
            started: 0,
            remaining: 10,
        };
        let claimant = cand(9, 0, 5, 1, 0);
        // A speculative backup beats an even lower-priority regular attempt.
        let running = [
            attempt(0, 1, 0, false),
            attempt(1, 3, 2, true),
            attempt(2, 3, 1, false),
        ];
        assert_eq!(PriorityScheduler.preempt(&claimant, &running), Some(1));
        // No backup: lowest priority first, then newest rank and task.
        let running = [
            attempt(0, 1, 0, false),
            attempt(1, 1, 2, false),
            attempt(2, 3, 1, false),
        ];
        assert_eq!(PriorityScheduler.preempt(&claimant, &running), Some(1));
        // Equal-or-higher priority attempts are never victims.
        let running = [attempt(0, 5, 0, false), attempt(1, 7, 1, false)];
        assert_eq!(PriorityScheduler.preempt(&claimant, &running), None);
        // FIFO and fair-share never preempt at all (default impl).
        assert_eq!(FifoScheduler.preempt(&claimant, &running), None);
        assert_eq!(FairShareScheduler.preempt(&claimant, &running), None);
    }
}
