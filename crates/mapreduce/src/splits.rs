//! Split sources: how map tasks get their input.
//!
//! Historically [`run_job`](crate::run_job) took `&[Vec<In>]` — every
//! split fully materialized in RAM for the job's whole lifetime. That is
//! fine for one job, but a multi-tenant executor holds *queued* jobs for
//! arbitrarily long simulated stretches, and a hundred queued jobs each
//! pinning their whole input defeats the out-of-core storage plane.
//!
//! [`SplitSource`] inverts the ownership: the job carries a *recipe* for
//! each split, and the driver materializes a split only while a map
//! attempt is actually executing it (the attempt's copy is dropped when
//! the attempt finishes). Because map inputs must be replayable for the
//! retry/speculation/re-execution ladder, a source must return
//! byte-identical data for the same index on every call — the same purity
//! contract UDFs already obey.
//!
//! Two implementations cover the workspace:
//!
//! * [`SliceSplits`] — adapts the classic pre-materialized `&[Vec<In>]`
//!   (borrowed, zero-copy; this is what `run_job` wraps internally).
//! * [`FnSplits`] — regenerates a split on demand from a deterministic
//!   recipe, e.g. a seeded [`skymr_datagen::stream`] chunk. Queued jobs
//!   hold only the recipe.

/// One split's data, borrowed from a materialized source or owned by an
/// on-demand one. Derefs to `[In]` so the driver reads both the same way.
#[derive(Debug)]
pub enum SplitData<'a, In> {
    /// A view into a pre-materialized split.
    Borrowed(&'a [In]),
    /// A split regenerated for this attempt; dropped when it finishes.
    Owned(Vec<In>),
}

impl<In> std::ops::Deref for SplitData<'_, In> {
    type Target = [In];

    fn deref(&self) -> &[In] {
        match self {
            SplitData::Borrowed(s) => s,
            SplitData::Owned(v) => v,
        }
    }
}

/// A replayable source of map-task input splits.
///
/// `Sync` because map attempts run concurrently on host threads; the
/// source is only read. Implementations must be *pure*: `load(i)` returns
/// the same records in the same order every time it is called, or retries
/// and speculative attempts would diverge from their originals.
pub trait SplitSource<In>: Sync {
    /// Number of splits (= map tasks).
    fn num_splits(&self) -> usize;

    /// Record count of split `index` without materializing it. The skip-
    /// bad-records protocol and the task model need lengths cheaply.
    fn split_len(&self, index: usize) -> usize;

    /// Materializes split `index` for one map attempt.
    fn load(&self, index: usize) -> SplitData<'_, In>;
}

/// The classic fully-materialized input: one `Vec` per split.
#[derive(Debug)]
pub struct SliceSplits<'a, In> {
    splits: &'a [Vec<In>],
}

impl<'a, In> SliceSplits<'a, In> {
    /// Wraps pre-split input.
    pub fn new(splits: &'a [Vec<In>]) -> Self {
        Self { splits }
    }
}

impl<In: Sync> SplitSource<In> for SliceSplits<'_, In> {
    fn num_splits(&self) -> usize {
        self.splits.len()
    }

    fn split_len(&self, index: usize) -> usize {
        self.splits[index].len()
    }

    fn load(&self, index: usize) -> SplitData<'_, In> {
        SplitData::Borrowed(&self.splits[index])
    }
}

/// Splits regenerated on demand from a deterministic recipe.
///
/// `lens[i]` must equal `make(i).len()` — the constructor is handed the
/// lengths up front so queued jobs can report their shape without
/// generating a single record.
pub struct FnSplits<F> {
    lens: Vec<usize>,
    make: F,
}

impl<F> FnSplits<F> {
    /// A source of `lens.len()` splits, where split `i` holds `lens[i]`
    /// records produced by `make(i)`.
    pub fn new(lens: Vec<usize>, make: F) -> Self {
        Self { lens, make }
    }
}

impl<F> std::fmt::Debug for FnSplits<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnSplits")
            .field("lens", &self.lens)
            .finish()
    }
}

impl<In, F> SplitSource<In> for FnSplits<F>
where
    F: Fn(usize) -> Vec<In> + Sync,
{
    fn num_splits(&self) -> usize {
        self.lens.len()
    }

    fn split_len(&self, index: usize) -> usize {
        self.lens[index]
    }

    fn load(&self, index: usize) -> SplitData<'_, In> {
        let split = (self.make)(index);
        debug_assert_eq!(
            split.len(),
            self.lens[index],
            "FnSplits: declared length of split {index} disagrees with its recipe"
        );
        SplitData::Owned(split)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_splits_borrow_without_copying() {
        let data = vec![vec![1u32, 2], vec![3]];
        let source = SliceSplits::new(&data);
        assert_eq!(source.num_splits(), 2);
        assert_eq!(source.split_len(0), 2);
        assert_eq!(source.split_len(1), 1);
        assert_eq!(&*source.load(0), &[1, 2]);
        assert!(matches!(source.load(1), SplitData::Borrowed(_)));
    }

    #[test]
    fn fn_splits_regenerate_identically_on_every_load() {
        let source = FnSplits::new(vec![3, 2], |i| {
            (0..(3 - i)).map(|n| (i * 10 + n) as u32).collect()
        });
        assert_eq!(source.num_splits(), 2);
        let first = source.load(0);
        let again = source.load(0);
        assert_eq!(
            &*first, &*again,
            "replayed attempts must see identical input"
        );
        assert_eq!(&*source.load(1), &[10, 11]);
        assert!(matches!(source.load(1), SplitData::Owned(_)));
    }
}
