//! K-way external merge: feeds reducers from spilled runs in streaming
//! sorted order.
//!
//! Every spilled partition is a *run* — pairs sorted by key, values in
//! map-emission order. The merge consumes runs in a fixed priority order
//! (map index, then spill sequence) and breaks key ties by run priority,
//! so the `(key, value-list)` stream a reducer sees is byte-for-byte the
//! stream the in-memory engine builds with `BTreeMap` grouping: spilling
//! is a memory-footprint change, never an output change.
//!
//! When the run count exceeds the configured fan-in (Hadoop's
//! `io.sort.factor`), intermediate passes merge the first `fan_in` runs
//! into a new on-disk run (prepended, preserving global priority order)
//! until one final streaming pass suffices — the classic external
//! merge-sort cascade, with every pass's bytes and seeks charged to the
//! disk cost model.

use skymr_common::{ByteSized, Wire};

use super::segment::{PartitionReader, Segment, SegmentWriter, StorageError};
use super::SpillSession;

/// One input run for the merge, in priority order.
#[derive(Debug)]
pub enum RunSource<K, V> {
    /// An in-memory run (a map output that never spilled), already
    /// sorted by key.
    Mem(Vec<(K, V)>),
    /// One partition of an on-disk spill segment.
    Disk {
        /// The spill segment.
        segment: Segment,
        /// Partition (reducer) index within the segment.
        part: usize,
    },
}

impl<K, V> RunSource<K, V> {
    fn disk_bytes(&self) -> u64 {
        match self {
            RunSource::Mem(_) => 0,
            RunSource::Disk { segment, part } => segment.parts.get(*part).map_or(0, |m| m.len),
        }
    }

    fn is_disk(&self) -> bool {
        matches!(self, RunSource::Disk { .. })
    }
}

/// Cost accounting for one reducer's external merge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Input runs presented to the merge.
    pub runs: u64,
    /// Merge passes executed: every intermediate cascade pass, plus the
    /// final streaming pass whenever at least one disk run feeds it.
    pub passes: u64,
    /// Disk bytes read across all passes.
    pub bytes_read: u64,
    /// Disk bytes written by intermediate passes.
    pub bytes_written: u64,
    /// File opens (modeled seeks) across all passes.
    pub seeks: u64,
}

/// One open run: a pulled head plus its source.
#[derive(Debug)]
struct RunState<K, V> {
    head: Option<(K, V)>,
    source: OpenRun<K, V>,
    exhausted: bool,
}

#[derive(Debug)]
enum OpenRun<K, V> {
    Mem(std::vec::IntoIter<(K, V)>),
    Disk(PartitionReader<K, V>),
}

/// What [`KWayMerge::advance`] observed: the registered-hot buffer-only
/// step either produces a pair, asks the (cold) caller to refill a run
/// from its chunk reader, or reports exhaustion.
enum Step<K, V> {
    Pair(K, V),
    Refill(usize),
    Done,
}

/// Streaming k-way merge over open runs, stable by run priority.
#[derive(Debug)]
pub struct KWayMerge<K, V> {
    runs: Vec<RunState<K, V>>,
    /// Lookahead pair for group assembly.
    peeked: Option<(K, V)>,
}

impl<K: Wire + Ord, V: Wire> KWayMerge<K, V> {
    /// Opens every source (one seek per disk run).
    pub fn open(sources: Vec<RunSource<K, V>>) -> Result<Self, StorageError> {
        let mut runs = Vec::with_capacity(sources.len());
        for s in sources {
            let source = match s {
                RunSource::Mem(pairs) => OpenRun::Mem(pairs.into_iter()),
                RunSource::Disk { segment, part } => {
                    OpenRun::Disk(PartitionReader::open(&segment, part)?)
                }
            };
            runs.push(RunState {
                head: None,
                source,
                exhausted: false,
            });
        }
        Ok(Self { runs, peeked: None })
    }

    /// The buffer-only merge step. Registered hot: a linear scan over at
    /// most `fan_in` run heads, no allocation; chunk decoding happens in
    /// the caller via [`Self::refill`], amortized once per io-chunk.
    // xtask: hot
    fn advance(&mut self) -> Step<K, V> {
        let mut best: Option<usize> = None;
        for (i, r) in self.runs.iter().enumerate() {
            if r.head.is_none() {
                if !r.exhausted {
                    return Step::Refill(i);
                }
                continue;
            }
            // Strict `<` keeps the earliest run on ties: run order is the
            // grouping order the in-memory engine produces.
            best = match best {
                None => Some(i),
                Some(b) if key_of(&self.runs[i]) < key_of(&self.runs[b]) => Some(i),
                keep => keep,
            };
        }
        match best {
            Some(i) => {
                let (k, v) = take_head(&mut self.runs[i]);
                Step::Pair(k, v)
            }
            None => Step::Done,
        }
    }

    /// Pulls the next head of run `i` from its source.
    fn refill(&mut self, i: usize) -> Result<(), StorageError> {
        let r = &mut self.runs[i];
        r.head = match &mut r.source {
            OpenRun::Mem(iter) => iter.next(),
            OpenRun::Disk(reader) => reader.next_pair()?,
        };
        r.exhausted = r.head.is_none();
        Ok(())
    }

    /// Yields the next pair in merged order.
    pub fn next_pair(&mut self) -> Result<Option<(K, V)>, StorageError> {
        if let Some(pair) = self.peeked.take() {
            return Ok(Some(pair));
        }
        loop {
            match self.advance() {
                Step::Pair(k, v) => return Ok(Some((k, v))),
                Step::Done => return Ok(None),
                Step::Refill(i) => self.refill(i)?,
            }
        }
    }

    /// Yields the next `(key, values)` group — the reducer input unit,
    /// keys in sorted order, values in engine grouping order.
    pub fn next_group(&mut self) -> Result<Option<(K, Vec<V>)>, StorageError> {
        let Some((key, first)) = self.next_pair()? else {
            return Ok(None);
        };
        let mut values = vec![first];
        loop {
            match self.next_pair()? {
                Some((k, v)) if k == key => values.push(v),
                Some(pair) => {
                    self.peeked = Some(pair);
                    break;
                }
                None => break,
            }
        }
        Ok(Some((key, values)))
    }
}

fn key_of<K, V>(r: &RunState<K, V>) -> &K {
    match &r.head {
        Some((k, _)) => k,
        // advance() only compares runs whose head it just observed as
        // present; the head cannot disappear between those two reads.
        None => unreachable!("compared run has no head"),
    }
}

fn take_head<K, V>(r: &mut RunState<K, V>) -> (K, V) {
    match r.head.take() {
        Some(pair) => pair,
        None => unreachable!("selected run has no head"),
    }
}

/// Cascades `sources` down to at most `fan_in` runs (writing intermediate
/// merged runs into the spill session), then returns the final streaming
/// merge plus the full cost accounting.
pub fn external_merge<K: Wire + Ord + ByteSized, V: Wire + ByteSized>(
    session: &SpillSession,
    reduce: usize,
    mut sources: Vec<RunSource<K, V>>,
    fan_in: usize,
    io_chunk: usize,
) -> Result<(KWayMerge<K, V>, MergeStats), StorageError> {
    let fan_in = fan_in.max(2);
    let mut stats = MergeStats {
        runs: sources.len() as u64,
        ..MergeStats::default()
    };
    let mut pass = 0u64;
    while sources.len() > fan_in {
        let batch: Vec<RunSource<K, V>> = sources.drain(..fan_in).collect();
        stats.bytes_read += batch.iter().map(RunSource::disk_bytes).sum::<u64>();
        stats.seeks += batch.iter().filter(|s| s.is_disk()).count() as u64 + 1;
        let path = session.merge_run_path(reduce, pass);
        let mut merged = KWayMerge::open(batch)?;
        let mut w: SegmentWriter<K, V> = SegmentWriter::create(path, io_chunk)?;
        while let Some((k, v)) = merged.next_pair()? {
            w.push(&k, &v)?;
        }
        w.end_partition()?;
        let segment = w.finish()?;
        stats.bytes_written += segment.disk_bytes();
        stats.passes += 1;
        pass += 1;
        // Prepend: the merged run carries the lowest-priority-index pairs
        // and is itself stable, so putting it first preserves the global
        // grouping order.
        sources.insert(0, RunSource::Disk { segment, part: 0 });
    }
    stats.bytes_read += sources.iter().map(RunSource::disk_bytes).sum::<u64>();
    let disk_runs = sources.iter().filter(|s| s.is_disk()).count() as u64;
    stats.seeks += disk_runs;
    if disk_runs > 0 {
        stats.passes += 1;
    }
    Ok((KWayMerge::open(sources)?, stats))
}

/// The cost accounting [`external_merge`] will produce for all-disk runs
/// of the given on-disk sizes, computed without touching the disk — a
/// pure function of the manifests and the fan-in, which is what the
/// simulated clock and the trace model charge (attempt replays re-run
/// the same merge; the model charges it once).
pub fn cascade_stats(run_bytes: &[u64], fan_in: usize) -> MergeStats {
    let fan_in = fan_in.max(2);
    let mut stats = MergeStats {
        runs: run_bytes.len() as u64,
        ..MergeStats::default()
    };
    let mut sizes: std::collections::VecDeque<u64> = run_bytes.iter().copied().collect();
    while sizes.len() > fan_in {
        let mut merged = 0u64;
        for _ in 0..fan_in {
            let b = sizes.pop_front().unwrap_or(0);
            stats.bytes_read += b;
            merged += b;
        }
        stats.seeks += fan_in as u64 + 1;
        // Re-framing overhead differs slightly between input and output
        // chunking; the model charges the payload volume.
        stats.bytes_written += merged;
        stats.passes += 1;
        sizes.push_front(merged);
    }
    stats.bytes_read += sizes.iter().sum::<u64>();
    let final_runs = sizes.len() as u64;
    if final_runs > 0 {
        stats.seeks += final_runs;
        stats.passes += 1;
    }
    stats
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;

    use super::super::{segment::write_segment, SpillSession, StorageConfig};
    use super::*;

    /// Deterministic pseudo-random keyed pairs (no RNG in unit tests).
    fn scramble(n: u64, salt: u64) -> Vec<(u64, u64)> {
        let mut pairs: Vec<(u64, u64)> = (0..n)
            .map(|i| {
                let h = (i ^ salt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                (h % 17, i)
            })
            .collect();
        pairs.sort_by_key(|(k, _)| *k);
        pairs
    }

    /// The in-memory engine's grouping: append runs in priority order
    /// into a BTreeMap.
    fn reference_groups(runs: &[Vec<(u64, u64)>]) -> BTreeMap<u64, Vec<u64>> {
        let mut groups: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for run in runs {
            for (k, v) in run {
                groups.entry(*k).or_default().push(*v);
            }
        }
        groups
    }

    fn drain_groups(mut m: KWayMerge<u64, u64>) -> BTreeMap<u64, Vec<u64>> {
        let mut got = BTreeMap::new();
        let mut last = None;
        while let Some((k, vs)) = m.next_group().expect("merge") {
            assert!(last.map_or(true, |l| l < k), "keys must arrive sorted");
            last = Some(k);
            assert!(got.insert(k, vs).is_none(), "key {k} grouped twice");
        }
        got
    }

    #[test]
    fn merge_equals_in_memory_grouping_across_mixed_runs() {
        let session = SpillSession::create(&StorageConfig::test(), "merge-mixed").expect("session");
        let runs: Vec<Vec<(u64, u64)>> = (0..7).map(|s| scramble(40 + s * 13, s)).collect();
        let mut sources = Vec::new();
        for (i, run) in runs.iter().enumerate() {
            if i % 2 == 0 {
                let seg = write_segment(
                    session.dir().join(format!("run{i}.seg")),
                    std::slice::from_ref(run),
                    128,
                )
                .expect("write");
                sources.push(RunSource::Disk {
                    segment: seg,
                    part: 0,
                });
            } else {
                sources.push(RunSource::Mem(run.clone()));
            }
        }
        let (merge, stats) = external_merge(&session, 0, sources, 3, 128).expect("external merge");
        assert_eq!(stats.runs, 7);
        assert!(stats.passes >= 2, "7 runs over fan-in 3 must cascade");
        assert!(stats.bytes_written > 0);
        assert_eq!(drain_groups(merge), reference_groups(&runs));
    }

    #[test]
    fn single_memory_run_needs_no_disk_pass() {
        let session = SpillSession::create(&StorageConfig::test(), "merge-mem").expect("session");
        let run = scramble(25, 3);
        let (merge, stats) =
            external_merge(&session, 0, vec![RunSource::Mem(run.clone())], 8, 128).expect("merge");
        assert_eq!(stats.passes, 0);
        assert_eq!(stats.bytes_read, 0);
        assert_eq!(drain_groups(merge), reference_groups(&[run]));
    }

    #[test]
    fn tie_break_preserves_run_priority_order() {
        // Same key everywhere: values must come out strictly in run order.
        let runs: Vec<Vec<(u64, u64)>> =
            (0..5).map(|r| vec![(1, r * 10), (1, r * 10 + 1)]).collect();
        let session = SpillSession::create(&StorageConfig::test(), "merge-tie").expect("session");
        let mut sources = Vec::new();
        for (i, run) in runs.iter().enumerate() {
            let seg = write_segment(
                session.dir().join(format!("tie{i}.seg")),
                std::slice::from_ref(run),
                64,
            )
            .expect("write");
            sources.push(RunSource::Disk {
                segment: seg,
                part: 0,
            });
        }
        let (merge, _) = external_merge(&session, 0, sources, 2, 64).expect("merge");
        let groups = drain_groups(merge);
        assert_eq!(groups[&1], vec![0, 1, 10, 11, 20, 21, 30, 31, 40, 41]);
    }

    #[test]
    fn empty_sources_merge_to_nothing() {
        let session = SpillSession::create(&StorageConfig::test(), "merge-empty").expect("session");
        let (merge, stats) =
            external_merge::<u64, u64>(&session, 0, Vec::new(), 4, 64).expect("merge");
        assert_eq!(stats.passes, 0);
        assert!(drain_groups(merge).is_empty());
    }
}
