//! Out-of-core storage plane: spill-to-disk map output and external merge.
//!
//! Hadoop's map tasks buffer output in a fixed-size memory buffer
//! (`io.sort.mb`) and *spill* sorted, partitioned runs to local disk when
//! it fills; the reduce side fetches the spilled partitions and feeds the
//! reducer through a k-way external merge (`io.sort.factor`). This module
//! reproduces that storage plane for the simulated cluster:
//!
//! * [`StorageConfig`] — the per-task memory budget and spill directory,
//!   carried on [`crate::ClusterConfig`]. Spilling engages iff a budget is
//!   set; the trigger is a pure function of the configured budget and the
//!   wire-size accounting of the emitted pairs (never host memory), so
//!   spill points are byte-for-byte reproducible across runs and hosts.
//! * [`segment`] — sorted spill files (`mrtmp.<job>-m<i>-…​.seg`, the
//!   shape of the exemplar MapReduce implementation's `mrtmp.<job>-<map>-
//!   <reduce>` intermediates) written as chunked CRC32C frames with a
//!   per-partition manifest, and a streaming, checksum-verifying reader.
//! * [`merge`] — the reduce-side k-way external merge over disk and
//!   in-memory runs, with multi-pass merging when the run count exceeds
//!   the configured fan-in.
//!
//! Disk traffic is charged to the *simulated* clock through
//! [`StorageConfig::io_time`] (a bandwidth + seek model, mirroring the
//! network cost model) and surfaced as `storage.*` registry counters,
//! `spill_files` / `spilled_bytes` / `merge_passes` job metrics, and
//! `spill[i]` / `merge` trace spans.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

pub mod merge;
pub mod segment;

pub use merge::{KWayMerge, MergeStats, RunSource};
pub use segment::{PartitionMeta, Segment, StorageError};

/// Memory-budget and disk-model knobs for the out-of-core storage plane.
///
/// Part of [`crate::ClusterConfig`]; the plane is inert (byte-identical
/// to the all-in-memory engine) until [`memory_budget`](Self::memory_budget)
/// is set.
#[derive(Debug, Clone)]
pub struct StorageConfig {
    /// Per-map-task output buffer budget in bytes (Hadoop's `io.sort.mb`).
    /// When the wire size of buffered map output reaches the budget, the
    /// buffer is sorted, partitioned, and spilled to disk. `None` (the
    /// default) keeps every intermediate in memory.
    pub memory_budget: Option<u64>,
    /// Directory for spill files. `None` uses the OS temp directory; the
    /// engine creates (and removes) a unique per-job-run subdirectory
    /// either way.
    pub spill_dir: Option<PathBuf>,
    /// Maximum runs merged per external-merge pass (Hadoop's
    /// `io.sort.factor`). Run counts above this trigger intermediate
    /// merge passes that write merged runs back to disk.
    pub merge_fan_in: usize,
    /// Modeled local-disk sequential bandwidth, bytes/second. Spill
    /// writes and merge reads are charged at this rate on the simulated
    /// clock.
    pub disk_bytes_per_sec: f64,
    /// Modeled per-file-open seek charge.
    pub disk_seek: Duration,
    /// Target spill-frame chunk size in bytes: each on-disk frame wraps
    /// roughly this much encoded payload, so readers verify and buffer
    /// one bounded chunk at a time.
    pub io_chunk: usize,
}

impl Default for StorageConfig {
    fn default() -> Self {
        Self {
            memory_budget: None,
            spill_dir: None,
            merge_fan_in: 8,
            // A commodity 2012 SATA disk, to match the paper-era testbed
            // the rest of ClusterConfig::default models.
            disk_bytes_per_sec: 60e6,
            disk_seek: Duration::from_millis(8),
            io_chunk: 64 * 1024,
        }
    }
}

impl StorageConfig {
    /// Fast disk model for unit tests (mirrors [`crate::ClusterConfig::test`]).
    pub fn test() -> Self {
        Self {
            disk_bytes_per_sec: 1e9,
            disk_seek: Duration::from_micros(2),
            ..Self::default()
        }
    }

    /// Applies the `SKYMR_MEMORY_BUDGET` / `SKYMR_SPILL_DIR` environment
    /// overrides, used by CI to force every job in a test suite into
    /// spill mode without touching each call site. Driver-side only —
    /// UDFs never observe the environment.
    pub fn with_env_overrides(mut self) -> Self {
        if let Ok(v) = std::env::var("SKYMR_MEMORY_BUDGET") {
            if let Ok(bytes) = parse_byte_size(&v) {
                self.memory_budget = Some(bytes);
            }
        }
        if let Ok(dir) = std::env::var("SKYMR_SPILL_DIR") {
            if !dir.is_empty() {
                self.spill_dir = Some(PathBuf::from(dir));
            }
        }
        self
    }

    /// `true` iff map output spills to disk.
    pub fn enabled(&self) -> bool {
        self.memory_budget.is_some()
    }

    /// Simulated time to move `bytes` over the disk with `seeks` head
    /// repositionings — the storage analogue of the network cost model.
    pub fn io_time(&self, bytes: u64, seeks: u64) -> Duration {
        let transfer = bytes as f64 / self.disk_bytes_per_sec;
        Duration::from_secs_f64(transfer)
            + self.disk_seek * u32::try_from(seeks).unwrap_or(u32::MAX)
    }
}

/// Parses a byte size with an optional `k`/`m`/`g` suffix (powers of
/// 1024): `"1m"` → 1 MiB. Shared by the `--memory-budget` CLI option and
/// the `SKYMR_MEMORY_BUDGET` override.
pub fn parse_byte_size(s: &str) -> Result<u64, String> {
    let t = s.trim().to_ascii_lowercase();
    let (digits, shift) = match t.strip_suffix(['k', 'm', 'g']) {
        Some(head) => {
            let shift = match t.as_bytes()[t.len() - 1] {
                b'k' => 10,
                b'm' => 20,
                _ => 30,
            };
            (head, shift)
        }
        None => (t.as_str(), 0u32),
    };
    let n: u64 = digits
        .trim()
        .parse()
        .map_err(|e| format!("bad byte size {s:?}: {e}"))?;
    n.checked_shl(shift)
        .filter(|v| *v >> shift == n)
        .ok_or_else(|| format!("byte size {s:?} overflows u64"))
}

/// Process-wide counter distinguishing concurrent job runs' spill
/// directories (the directory name also carries the process id, so
/// parallel test processes sharing a spill root never collide).
static RUN_SEQ: AtomicU64 = AtomicU64::new(0);

/// One job run's spill directory: created on first use, removed on drop
/// (including early error returns — the session is owned by the job
/// runner). All segment and merge-run files of the job live here.
#[derive(Debug)]
pub struct SpillSession {
    dir: PathBuf,
    job: String,
    seq: AtomicU64,
}

impl SpillSession {
    /// Creates the unique spill directory for one job run.
    pub fn create(config: &StorageConfig, job_name: &str) -> Result<Self, StorageError> {
        let root = config.spill_dir.clone().unwrap_or_else(std::env::temp_dir);
        let run = RUN_SEQ.fetch_add(1, Ordering::Relaxed);
        let job = sanitize(job_name);
        let dir = root.join(format!(
            "skymr-spill-{pid}-{run}-{job}",
            pid = std::process::id()
        ));
        std::fs::create_dir_all(&dir).map_err(|e| StorageError::io("create spill dir", e))?;
        Ok(Self {
            dir,
            job,
            seq: AtomicU64::new(0),
        })
    }

    /// The session's spill directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path for the next spill segment of map task `map`, attempt
    /// `attempt` (`mrtmp.<job>-m<map>-a<attempt>-<uniq>.seg`, following
    /// the exemplar's `mrtmp.<job>-<map>-<reduce>` naming). The session
    /// counter keeps paths unique even when a task re-executes with a
    /// repeated attempt number (node-loss and corrupt-escalation waves).
    pub fn segment_path(&self, map: usize, attempt: u32) -> PathBuf {
        let uniq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.dir
            .join(format!("mrtmp.{}-m{map}-a{attempt}-{uniq}.seg", self.job))
    }

    /// Path for an intermediate merge run of reducer `reduce`.
    pub fn merge_run_path(&self, reduce: usize, pass: u64) -> PathBuf {
        let uniq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.dir
            .join(format!("mrtmp.{}-r{reduce}-p{pass}-{uniq}.run", self.job))
    }
}

impl Drop for SpillSession {
    fn drop(&mut self) {
        // Best-effort cleanup; a leftover directory is a nuisance, not a
        // correctness problem.
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Restricts a job name to filesystem-safe characters.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_byte_size_handles_suffixes() {
        assert_eq!(parse_byte_size("512"), Ok(512));
        assert_eq!(parse_byte_size("4k"), Ok(4096));
        assert_eq!(parse_byte_size("2M"), Ok(2 << 20));
        assert_eq!(parse_byte_size(" 1g "), Ok(1 << 30));
        assert!(parse_byte_size("x").is_err());
        assert!(parse_byte_size("99999999999999999999g").is_err());
    }

    #[test]
    fn io_time_charges_bandwidth_and_seeks() {
        let mut cfg = StorageConfig::test();
        cfg.disk_bytes_per_sec = 1000.0;
        cfg.disk_seek = Duration::from_millis(1);
        let t = cfg.io_time(2000, 3);
        assert_eq!(t, Duration::from_secs(2) + Duration::from_millis(3));
    }

    #[test]
    fn disabled_by_default() {
        assert!(!StorageConfig::default().enabled());
        let cfg = StorageConfig {
            memory_budget: Some(1 << 20),
            ..Default::default()
        };
        assert!(cfg.enabled());
    }

    #[test]
    fn session_creates_and_removes_its_directory() {
        let cfg = StorageConfig::test();
        let session = SpillSession::create(&cfg, "wc phase/1").expect("session");
        let dir = session.dir().to_owned();
        assert!(dir.exists());
        let seg = session.segment_path(3, 1);
        let name = seg.file_name().and_then(|n| n.to_str()).expect("name");
        assert!(name.starts_with("mrtmp.wc-phase-1-m3-a1-"), "{name}");
        drop(session);
        assert!(!dir.exists());
    }

    #[test]
    fn segment_paths_are_unique_per_call() {
        let session = SpillSession::create(&StorageConfig::test(), "j").expect("session");
        assert_ne!(session.segment_path(0, 0), session.segment_path(0, 0));
    }
}
