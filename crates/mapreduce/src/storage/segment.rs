//! Spill segments: sorted, partitioned map output on disk.
//!
//! A segment is one spill of one map attempt. Its partitions are laid
//! out contiguously in reducer order; each partition is a sequence of
//! checksummed frames (the PR 8 shuffle codec, [`skymr_common::bytes`]),
//! every frame wrapping roughly [`super::StorageConfig::io_chunk`] bytes
//! of encoded key/value pairs. Readers therefore verify and buffer one
//! bounded chunk at a time — memory stays O(io_chunk), not O(partition).
//!
//! Alongside `<segment>.seg` the writer persists `<segment>.seg.manifest`
//! (itself one checksummed frame) recording each partition's byte range,
//! frame count, record count, and wire size, so a reader can locate a
//! partition without scanning and tooling can audit spill files offline.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::marker::PhantomData;
use std::path::{Path, PathBuf};

use skymr_common::bytes::{
    decode_pairs, frame_decode_exact, frame_encode, FrameError, Wire, WireCursor, FRAME_OVERHEAD,
};
use skymr_common::ByteSized;

/// A storage-plane failure: host I/O or frame verification.
#[derive(Debug)]
pub enum StorageError {
    /// The host filesystem failed underneath the storage plane.
    Io {
        /// What the plane was doing.
        context: &'static str,
        /// The OS error.
        source: std::io::Error,
    },
    /// A frame failed checksum or structural verification — the spill
    /// data was corrupted at rest.
    Frame {
        /// What the plane was doing.
        context: &'static str,
        /// The verification failure.
        source: FrameError,
    },
}

impl StorageError {
    pub(crate) fn io(context: &'static str, source: std::io::Error) -> Self {
        Self::Io { context, source }
    }

    pub(crate) fn frame(context: &'static str, source: FrameError) -> Self {
        Self::Frame { context, source }
    }

    /// `true` iff this is data corruption (checksum/structure), which the
    /// engine routes into the re-fetch → re-execute recovery ladder
    /// rather than the generic retry path.
    pub fn is_corruption(&self) -> bool {
        matches!(self, Self::Frame { .. })
    }
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io { context, source } => write!(f, "storage I/O ({context}): {source}"),
            Self::Frame { context, source } => {
                write!(f, "spill data corrupt ({context}): {source}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

/// Byte range and accounting of one partition within a segment file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionMeta {
    /// Byte offset of the partition's first frame within the file.
    pub offset: u64,
    /// Total on-disk bytes of the partition (all frames, headers and
    /// checksums included).
    pub len: u64,
    /// Number of frames in the partition.
    pub frames: u32,
    /// Number of key/value pairs in the partition.
    pub records: u64,
    /// Wire-size accounting of the pairs ([`ByteSized`]) — the same
    /// figure the in-memory engine charges the shuffle model, kept so
    /// spilling never changes simulated network accounting.
    pub wire_bytes: u64,
}

/// One spill file: its path plus per-partition manifest.
#[derive(Debug, Clone)]
pub struct Segment {
    /// The `.seg` file.
    pub path: PathBuf,
    /// Partition directory, indexed by reducer.
    pub parts: Vec<PartitionMeta>,
}

impl Segment {
    /// Total on-disk bytes across all partitions.
    pub fn disk_bytes(&self) -> u64 {
        self.parts.iter().map(|p| p.len).sum()
    }

    /// Path of the segment's manifest file.
    pub fn manifest_path(&self) -> PathBuf {
        manifest_path_for(&self.path)
    }

    /// Reloads a segment's manifest from disk (tooling and tests; the
    /// engine keeps manifests in memory).
    pub fn read_manifest(seg_path: &Path) -> Result<Self, StorageError> {
        let bytes = std::fs::read(manifest_path_for(seg_path))
            .map_err(|e| StorageError::io("read manifest", e))?;
        let payload = frame_decode_exact(&bytes).map_err(|e| StorageError::frame("manifest", e))?;
        let mut r = WireCursor::new(payload);
        let parse = |r: &mut WireCursor<'_>| -> Option<Vec<PartitionMeta>> {
            let count = u32::wire_decode(r)? as usize;
            let mut parts = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                parts.push(PartitionMeta {
                    offset: u64::wire_decode(r)?,
                    len: u64::wire_decode(r)?,
                    frames: u32::wire_decode(r)?,
                    records: u64::wire_decode(r)?,
                    wire_bytes: u64::wire_decode(r)?,
                });
            }
            r.is_empty().then_some(parts)
        };
        let parts = parse(&mut r).ok_or(StorageError::Frame {
            context: "manifest",
            source: FrameError::Malformed,
        })?;
        Ok(Self {
            path: seg_path.to_owned(),
            parts,
        })
    }

    fn write_manifest(&self) -> Result<(), StorageError> {
        let mut payload = Vec::new();
        (self.parts.len() as u32).wire_encode(&mut payload);
        for p in &self.parts {
            p.offset.wire_encode(&mut payload);
            p.len.wire_encode(&mut payload);
            p.frames.wire_encode(&mut payload);
            p.records.wire_encode(&mut payload);
            p.wire_bytes.wire_encode(&mut payload);
        }
        let mut framed = Vec::with_capacity(payload.len() + FRAME_OVERHEAD);
        frame_encode(&payload, &mut framed);
        std::fs::write(self.manifest_path(), framed)
            .map_err(|e| StorageError::io("write manifest", e))
    }
}

fn manifest_path_for(seg_path: &Path) -> PathBuf {
    let mut os = seg_path.as_os_str().to_owned();
    os.push(".manifest");
    PathBuf::from(os)
}

/// Streaming writer for one segment: partitions are written in order,
/// pairs within a partition in (already sorted) caller order, chunked
/// into checksummed frames of roughly `io_chunk` payload bytes.
#[derive(Debug)]
pub struct SegmentWriter<K, V> {
    file: BufWriter<File>,
    path: PathBuf,
    io_chunk: usize,
    parts: Vec<PartitionMeta>,
    offset: u64,
    /// Current chunk payload: 4-byte pair-count placeholder, then pair
    /// encodings. Reused across chunks and partitions.
    payload: Vec<u8>,
    chunk_pairs: u32,
    /// Reused frame assembly buffer.
    framed: Vec<u8>,
    cur: PartitionMeta,
    _kv: PhantomData<(K, V)>,
}

impl<K: Wire + ByteSized, V: Wire + ByteSized> SegmentWriter<K, V> {
    /// Opens `path` for writing.
    pub fn create(path: PathBuf, io_chunk: usize) -> Result<Self, StorageError> {
        let file = File::create(&path).map_err(|e| StorageError::io("create segment", e))?;
        let mut payload = Vec::with_capacity(io_chunk + 1024);
        payload.extend_from_slice(&[0u8; 4]);
        Ok(Self {
            file: BufWriter::new(file),
            path,
            io_chunk: io_chunk.max(1),
            parts: Vec::new(),
            offset: 0,
            payload,
            chunk_pairs: 0,
            framed: Vec::with_capacity(io_chunk + 1024),
            cur: empty_meta(0),
            _kv: PhantomData,
        })
    }

    /// Appends one pair to the current partition, flushing a frame when
    /// the chunk budget fills. Registered hot: per-record work is bounds
    /// checks and buffer extends into pre-reserved scratch buffers; the
    /// frame flush runs once per `io_chunk` bytes.
    // xtask: hot
    pub fn push(&mut self, k: &K, v: &V) -> Result<(), StorageError> {
        k.wire_encode(&mut self.payload);
        v.wire_encode(&mut self.payload);
        self.chunk_pairs += 1;
        self.cur.records += 1;
        self.cur.wire_bytes += k.byte_size() + v.byte_size();
        if self.payload.len() >= self.io_chunk {
            self.flush_chunk()?;
        }
        Ok(())
    }

    /// Closes the current partition: flushes its tail chunk and records
    /// its manifest entry. Partitions must be closed in reducer order;
    /// an empty partition yields a zero-length byte range (no frames).
    pub fn end_partition(&mut self) -> Result<(), StorageError> {
        if self.chunk_pairs > 0 {
            self.flush_chunk()?;
        }
        let next = empty_meta(self.offset);
        self.parts.push(std::mem::replace(&mut self.cur, next));
        Ok(())
    }

    /// Flushes the file, writes the manifest, and returns the segment.
    pub fn finish(mut self) -> Result<Segment, StorageError> {
        self.file
            .flush()
            .map_err(|e| StorageError::io("flush segment", e))?;
        let segment = Segment {
            path: self.path,
            parts: self.parts,
        };
        segment.write_manifest()?;
        Ok(segment)
    }

    fn flush_chunk(&mut self) -> Result<(), StorageError> {
        self.payload[..4].copy_from_slice(&self.chunk_pairs.to_le_bytes());
        self.framed.clear();
        frame_encode(&self.payload, &mut self.framed);
        self.file
            .write_all(&self.framed)
            .map_err(|e| StorageError::io("write segment frame", e))?;
        self.offset += self.framed.len() as u64;
        self.cur.len += self.framed.len() as u64;
        self.cur.frames += 1;
        self.payload.truncate(4);
        self.chunk_pairs = 0;
        Ok(())
    }
}

fn empty_meta(offset: u64) -> PartitionMeta {
    PartitionMeta {
        offset,
        len: 0,
        frames: 0,
        records: 0,
        wire_bytes: 0,
    }
}

/// Writes a fully materialized, already sorted+partitioned map output as
/// one segment (the common spill path: sort/partition in memory under
/// the budget, stream to disk).
pub fn write_segment<K: Wire + ByteSized, V: Wire + ByteSized>(
    path: PathBuf,
    parts: &[Vec<(K, V)>],
    io_chunk: usize,
) -> Result<Segment, StorageError> {
    let mut w = SegmentWriter::create(path, io_chunk)?;
    for pairs in parts {
        for (k, v) in pairs {
            w.push(k, v)?;
        }
        w.end_partition()?;
    }
    w.finish()
}

/// Streams one partition of a segment: frames are read, checksum-verified
/// and decoded one at a time, so peak memory is one chunk.
#[derive(Debug)]
pub struct PartitionReader<K, V> {
    file: BufReader<File>,
    /// On-disk bytes of the partition not yet consumed.
    remaining: u64,
    /// Reused frame buffer.
    framed: Vec<u8>,
    /// Decoded pairs of the current chunk.
    chunk: std::vec::IntoIter<(K, V)>,
}

impl<K: Wire, V: Wire> PartitionReader<K, V> {
    /// Opens partition `part` of `segment` (one seek).
    pub fn open(segment: &Segment, part: usize) -> Result<Self, StorageError> {
        let meta = segment.parts.get(part).ok_or(StorageError::Frame {
            context: "open partition",
            source: FrameError::Malformed,
        })?;
        let file = File::open(&segment.path).map_err(|e| StorageError::io("open segment", e))?;
        let mut file = BufReader::new(file);
        file.seek(SeekFrom::Start(meta.offset))
            .map_err(|e| StorageError::io("seek partition", e))?;
        Ok(Self {
            file,
            remaining: meta.len,
            framed: Vec::new(),
            chunk: Vec::new().into_iter(),
        })
    }

    /// Yields the next pair, or `None` at end of partition.
    ///
    /// # Errors
    ///
    /// Host I/O failures and checksum/structure corruption
    /// ([`StorageError::is_corruption`]).
    pub fn next_pair(&mut self) -> Result<Option<(K, V)>, StorageError> {
        loop {
            if let Some(pair) = self.chunk.next() {
                return Ok(Some(pair));
            }
            if self.remaining == 0 {
                return Ok(None);
            }
            self.refill()?;
        }
    }

    /// Reads and verifies the next frame, decoding its pairs.
    fn refill(&mut self) -> Result<(), StorageError> {
        read_frame(&mut self.file, &mut self.remaining, &mut self.framed)?;
        let pairs =
            decode_pairs::<K, V>(&self.framed).map_err(|e| StorageError::frame("read chunk", e))?;
        self.chunk = pairs.into_iter();
        Ok(())
    }
}

/// Reads one full frame (header, payload, checksum) from `file` into
/// `framed`, bounded by `remaining` partition bytes.
fn read_frame(
    file: &mut BufReader<File>,
    remaining: &mut u64,
    framed: &mut Vec<u8>,
) -> Result<(), StorageError> {
    let truncated = |got: u64| StorageError::Frame {
        context: "read frame",
        source: FrameError::Truncated {
            needed: FRAME_OVERHEAD,
            got: got as usize,
        },
    };
    // A file shorter than its manifest claims is at-rest corruption
    // (truncation), not a host I/O fault — route it into the recovery
    // ladder like a checksum mismatch.
    let eof_is_truncation = |got: u64| {
        move |e: std::io::Error| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                truncated(got)
            } else {
                StorageError::io("read frame", e)
            }
        }
    };
    if *remaining < 4 {
        return Err(truncated(*remaining));
    }
    let mut header = [0u8; 4];
    file.read_exact(&mut header)
        .map_err(eof_is_truncation(*remaining))?;
    let len = u32::from_le_bytes(header) as u64;
    let total = len + FRAME_OVERHEAD as u64;
    if *remaining < total {
        return Err(truncated(*remaining));
    }
    framed.clear();
    framed.extend_from_slice(&header);
    framed.resize(total as usize, 0);
    file.read_exact(&mut framed[4..])
        .map_err(eof_is_truncation(*remaining))?;
    *remaining -= total;
    Ok(())
}

/// Checksum-verifies every frame of one partition without decoding pairs —
/// the shuffle-phase integrity scan that decides whether a partition
/// enters the re-fetch → re-execute ladder. Registered hot: the inner
/// loop is the CRC32C kernel over reused buffers.
pub fn verify_frames(segment: &Segment, part: usize) -> Result<(), StorageError> {
    let meta = segment.parts.get(part).ok_or(StorageError::Frame {
        context: "verify partition",
        source: FrameError::Malformed,
    })?;
    let file = File::open(&segment.path).map_err(|e| StorageError::io("open segment", e))?;
    let mut file = BufReader::new(file);
    file.seek(SeekFrom::Start(meta.offset))
        .map_err(|e| StorageError::io("seek partition", e))?;
    let mut remaining = meta.len;
    let mut framed = Vec::new();
    let mut frames = 0u32;
    while remaining > 0 {
        read_frame(&mut file, &mut remaining, &mut framed)?;
        frame_decode_exact(&framed).map_err(|e| StorageError::frame("verify frame", e))?;
        frames += 1;
    }
    if frames != meta.frames {
        return Err(StorageError::Frame {
            context: "verify partition",
            source: FrameError::Malformed,
        });
    }
    Ok(())
}

/// Flips one deterministic bit inside a byte range of a file — the
/// at-rest corruption injection used by the fault plan and the chaos
/// suite. The bit index is `bit_seed % (len * 8)` over the range, exactly
/// mirroring the in-memory shuffle-frame injection. Returns the absolute
/// byte offset flipped; calling again with the same arguments restores
/// the original byte (XOR is an involution), which is how a transient
/// fault's clean re-fetch is modeled.
pub fn flip_bit(path: &Path, offset: u64, len: u64, bit_seed: u64) -> Result<u64, StorageError> {
    assert!(len > 0, "cannot corrupt an empty byte range");
    let bit = bit_seed % (len * 8);
    let at = offset + bit / 8;
    let mask = 1u8 << (bit % 8);
    let mut file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)
        .map_err(|e| StorageError::io("open for corruption", e))?;
    file.seek(SeekFrom::Start(at))
        .map_err(|e| StorageError::io("seek for corruption", e))?;
    let mut byte = [0u8; 1];
    file.read_exact(&mut byte)
        .map_err(|e| StorageError::io("read for corruption", e))?;
    byte[0] ^= mask;
    file.seek(SeekFrom::Start(at))
        .map_err(|e| StorageError::io("seek for corruption", e))?;
    file.write_all(&byte)
        .map_err(|e| StorageError::io("write corruption", e))?;
    Ok(at)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("skymr-segtest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("test dir");
        dir.join(name)
    }

    fn sample_parts() -> Vec<Vec<(u64, String)>> {
        vec![
            (0..500u64).map(|i| (i, format!("v{i}"))).collect(),
            Vec::new(),
            (0..3u64).map(|i| (i * 7, "x".repeat(i as usize))).collect(),
        ]
    }

    #[test]
    fn segment_round_trips_all_partitions() {
        let parts = sample_parts();
        let seg = write_segment(tmp("round.seg"), &parts, 256).expect("write");
        assert_eq!(seg.parts.len(), 3);
        assert_eq!(seg.parts[0].records, 500);
        assert!(seg.parts[0].frames > 1, "chunking must split 500 pairs");
        assert_eq!(seg.parts[1].records, 0);
        assert_eq!(seg.parts[1].len, 0);
        for (j, expect) in parts.iter().enumerate() {
            let mut r: PartitionReader<u64, String> = PartitionReader::open(&seg, j).expect("open");
            let mut got = Vec::new();
            while let Some(pair) = r.next_pair().expect("read") {
                got.push(pair);
            }
            assert_eq!(&got, expect, "partition {j}");
            verify_frames(&seg, j).expect("verify");
        }
    }

    #[test]
    fn manifest_round_trips() {
        let seg = write_segment(tmp("mani.seg"), &sample_parts(), 128).expect("write");
        let loaded = Segment::read_manifest(&seg.path).expect("manifest");
        assert_eq!(loaded.parts, seg.parts);
    }

    #[test]
    fn wire_bytes_match_bytesized_accounting() {
        let parts = sample_parts();
        let seg = write_segment(tmp("acct.seg"), &parts, 256).expect("write");
        for (j, pairs) in parts.iter().enumerate() {
            let expect: u64 = pairs
                .iter()
                .map(|(k, v)| k.byte_size() + v.byte_size())
                .sum();
            assert_eq!(seg.parts[j].wire_bytes, expect, "partition {j}");
        }
    }

    #[test]
    fn flipped_bit_fails_verification_and_restores() {
        let parts = sample_parts();
        let seg = write_segment(tmp("flip.seg"), &parts, 256).expect("write");
        let meta = seg.parts[0].clone();
        flip_bit(&seg.path, meta.offset, meta.len, 0xBADC0DE).expect("flip");
        let err = verify_frames(&seg, 0).expect_err("must detect corruption");
        assert!(err.is_corruption(), "{err}");
        // Reading routes the same detection through the decode path.
        let mut r: PartitionReader<u64, String> = PartitionReader::open(&seg, 0).expect("open");
        let read_err = loop {
            match r.next_pair() {
                Ok(Some(_)) => {}
                Ok(None) => panic!("corruption not detected by reader"),
                Err(e) => break e,
            }
        };
        assert!(read_err.is_corruption());
        // Untouched partitions still verify.
        verify_frames(&seg, 2).expect("partition 2 clean");
        // Flip back: everything verifies again.
        flip_bit(&seg.path, meta.offset, meta.len, 0xBADC0DE).expect("restore");
        verify_frames(&seg, 0).expect("restored");
    }

    #[test]
    fn truncated_segment_is_corruption_not_panic() {
        let seg = write_segment(tmp("trunc.seg"), &sample_parts(), 256).expect("write");
        let full = std::fs::read(&seg.path).expect("read");
        std::fs::write(&seg.path, &full[..full.len() - 3]).expect("truncate");
        let mut r: PartitionReader<u64, String> = PartitionReader::open(&seg, 2).expect("open");
        let err = loop {
            match r.next_pair() {
                Ok(Some(_)) => {}
                Ok(None) => panic!("truncation not detected"),
                Err(e) => break e,
            }
        };
        assert!(err.is_corruption(), "{err}");
    }
}
