//! Driver-side trace assembly: turns one finished job's execution record
//! into deterministic spans and a metrics registry.
//!
//! Span assembly happens *after* the phases complete, on the driver
//! thread — worker threads never touch the collector, so recording can't
//! perturb scheduling and UDFs can't observe ambient time. Exported span
//! times come from the deterministic model timebase
//! ([`skymr_telemetry::model`]): a pure function of record counts, byte
//! counts, the configured cluster `Duration`s, and the fault plan. The
//! engine's *measured* durations stay in [`crate::cluster::JobMetrics`];
//! they never reach an export, which is what makes traces byte-identical
//! across host thread counts and schedule shakes.
//!
//! The one exception is speculative execution: which tasks get backups
//! (and who wins) depends on measured host durations, so traces of
//! speculative runs carry the outcome only as registry counters and make
//! no byte-identity promise (see DESIGN.md §8).

use std::time::Duration;

use skymr_telemetry::model;
use skymr_telemetry::place::place;
use skymr_telemetry::registry::TICK_BUCKETS;
use skymr_telemetry::{ArgValue, Collector, JobTrace, MetricsRegistry, Span, Ticks};

use crate::cluster::{ClusterConfig, Placement};
use crate::fault::{FailureCause, RetryPolicy};
use crate::storage::MergeStats;

/// Lane 0 of every job: startup, broadcast, and shuffle-wide spans.
pub const DRIVER_LANE: u64 = 0;

fn map_lane(slot: usize) -> u64 {
    1 + slot as u64
}

fn reduce_lane(cluster: &ClusterConfig, slot: usize) -> u64 {
    1 + (cluster.map_slots + slot) as u64
}

fn network_lane(cluster: &ClusterConfig, node: usize) -> u64 {
    1 + (cluster.map_slots + cluster.reduce_slots + node) as u64
}

pub(crate) fn ticks_of(d: Duration) -> Ticks {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// One node loss as resolved by the driver on the model-tick timeline:
/// when the node died and when the heartbeat detector declared it dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeLossEvent {
    /// The node that died.
    pub node: usize,
    /// Model tick (within the map phase) the node went down.
    pub at_tick: Ticks,
    /// Model tick the heartbeat timeout expired and recovery began.
    pub detect_tick: Ticks,
}

/// How one failed attempt failed (the deterministic projection of
/// [`FailureCause`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailKind {
    /// Ran to completion, output discarded — costs a full attempt.
    LostOutput,
    /// Crashed mid-task — costs roughly half the input scan.
    Panic,
    /// Made no progress; killed after the carried timeout (model ticks).
    /// The cost is the timeout itself, never scaled by a straggler factor —
    /// a wedged attempt does no work to slow down.
    Hang(Ticks),
    /// Stopped by the scheduler (deadline or preemption budget). Costs
    /// nothing here: the multi-tenant executor charges the elapsed slot
    /// time to the job's `wasted_task_time` at the moment of the kill, so
    /// the model would double-count it.
    Cancelled,
}

impl FailKind {
    /// Projects an execution failure cause onto the model vocabulary.
    pub fn from_cause(cause: &FailureCause) -> Self {
        match cause {
            FailureCause::LostOutput => FailKind::LostOutput,
            FailureCause::Panic { .. } => FailKind::Panic,
            FailureCause::Hang { timeout } => FailKind::Hang(ticks_of(*timeout)),
            FailureCause::Cancelled { .. } => FailKind::Cancelled,
        }
    }

    fn label(self) -> &'static str {
        match self {
            FailKind::LostOutput => "lost_output",
            FailKind::Panic => "panic",
            FailKind::Hang(_) => "hang",
            FailKind::Cancelled => "cancelled",
        }
    }
}

/// One shuffle partition whose fetched frame failed checksum verification,
/// as resolved by the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorruptEvent {
    /// Producing map task.
    pub map: usize,
    /// Fetching reducer.
    pub reducer: usize,
    /// Fetch attempts that delivered corrupted bytes (1 = transient,
    /// recovered by re-fetch; 2 = at-rest, escalated to map re-execution).
    pub fetches: u32,
    /// `true` iff the corruption escalated to re-executing the producer.
    pub reexecuted: bool,
}

/// The deterministic facts about one task: its I/O volume and its attempt
/// history. Everything the model timebase needs, nothing measured.
#[derive(Debug, Clone, Default)]
pub struct TaskModel {
    /// Input records consumed (map: split length; reduce: values).
    pub records_in: u64,
    /// Distinct input keys (reduce only; 0 for map tasks).
    pub keys_in: u64,
    /// Output records emitted.
    pub records_out: u64,
    /// Bytes through the task (map: emitted shuffle bytes; reduce: shuffle
    /// bytes consumed).
    pub bytes: u64,
    /// Failed attempts, in order. The winning attempt follows them.
    pub failures: Vec<FailKind>,
    /// Straggler slowdown from the fault plan (deterministic).
    pub slowdown: f64,
    /// On-disk bytes of each spill segment the task wrote (map tasks in
    /// spill mode; empty otherwise). Pure manifest facts, never measured.
    pub spills: Vec<u64>,
    /// External-merge cascade cost (reduce tasks in spill mode; `None`
    /// otherwise) — the closed-form accounting from the run manifests.
    pub merge: Option<MergeStats>,
}

impl TaskModel {
    fn winner_ticks(&self) -> Ticks {
        model::scaled(
            model::attempt_ticks(self.records_in, self.records_out, self.bytes),
            self.slowdown,
        )
    }

    fn failure_ticks(&self, kind: FailKind) -> Ticks {
        match kind {
            FailKind::LostOutput => self.winner_ticks(),
            // The injected crash fires halfway through the input, before
            // any output is emitted.
            FailKind::Panic => model::scaled(
                model::attempt_ticks(self.records_in / 2, 0, 0),
                self.slowdown,
            ),
            // A hung attempt occupies its slot for the full progress
            // timeout before the tracker kills it.
            FailKind::Hang(timeout) => timeout,
            // Elapsed slot time is charged by the executor at kill time.
            FailKind::Cancelled => 0,
        }
    }

    /// Model ticks of the task's storage-plane I/O: one charge per spill
    /// file written plus the external-merge cascade. Zero unless the job
    /// ran under a memory budget, which keeps unspilled traces
    /// byte-identical to the pre-storage-plane engine.
    fn storage_ticks(&self) -> Ticks {
        let mut total = 0;
        for &bytes in &self.spills {
            total += model::storage_ticks(bytes, 1);
        }
        if let Some(m) = &self.merge {
            total += model::storage_ticks(m.bytes_read + m.bytes_written, m.seeks);
        }
        total
    }

    /// Total model ticks the task occupies its slot: all attempts,
    /// backoff gaps, the extra launch overheads of retries, and (spill
    /// mode) the storage-plane I/O. (The first attempt's launch overhead
    /// is charged by placement.)
    pub(crate) fn total_ticks(&self, retry: &RetryPolicy, overhead: Ticks) -> Ticks {
        let mut total =
            self.winner_ticks() + self.storage_ticks() + overhead * self.failures.len() as u64;
        for (k, &kind) in self.failures.iter().enumerate() {
            total += self.failure_ticks(kind);
            total += ticks_of(retry.backoff_after(k as u32));
        }
        total
    }
}

/// Everything `run_job` hands over for one completed job.
#[derive(Debug)]
pub struct JobRecord<'a> {
    /// Job name.
    pub name: &'a str,
    /// The cluster the job ran on.
    pub cluster: &'a ClusterConfig,
    /// The job's retry policy (deterministic backoff schedule).
    pub retry: &'a RetryPolicy,
    /// Distributed-cache bytes broadcast before the job.
    pub cache_bytes: u64,
    /// Broadcast transfers executed (1 + injected failures).
    pub broadcast_attempts: u32,
    /// Modeled broadcast charge.
    pub broadcast_time: Duration,
    /// Modeled shuffle transfer time (bottleneck node).
    pub shuffle_time: Duration,
    /// Shuffle bytes routed to each reducer.
    pub per_reducer_bytes: &'a [u64],
    /// Per-map-task facts.
    pub map: Vec<TaskModel>,
    /// Per-reduce-task facts.
    pub reduce: Vec<TaskModel>,
    /// Map tasks re-executed in the lost-partition recovery wave.
    pub recovery: Vec<usize>,
    /// Lost `(map_task, reducer)` shuffle partitions.
    pub lost: Vec<(usize, usize)>,
    /// Shuffle partitions whose frames failed checksum verification, in
    /// `(map, reducer)` order.
    pub corrupt: Vec<CorruptEvent>,
    /// Records skipped by the skip-bad-records policy, as
    /// `(map_task, record)` pairs in increasing order.
    pub skipped: Vec<(usize, usize)>,
    /// Node losses resolved this job, in event order.
    pub node_losses: Vec<NodeLossEvent>,
    /// Map tasks re-executed because their home node died (completed
    /// outputs invalidated or in-flight attempts killed).
    pub reexecuted: Vec<usize>,
    /// Completed map outputs invalidated by node loss (the subset of
    /// `reexecuted` whose attempt had already finished).
    pub maps_reexecuted: u64,
    /// Nodes blacklisted by the end of the job.
    pub nodes_blacklisted: u64,
    /// Final phase-level attempt count (includes recovery and backups).
    pub map_attempts: u64,
    /// Failed-and-retried map executions.
    pub map_retries: u64,
    /// Final reduce attempt count.
    pub reduce_attempts: u64,
    /// Failed-and-retried reduce executions.
    pub reduce_retries: u64,
    /// Map-side speculative wins (measured decision; counters only).
    pub map_spec_wins: u64,
    /// Reduce-side speculative wins.
    pub reduce_spec_wins: u64,
    /// Snapshot of the job's user counters (already sorted).
    pub user_counters: Vec<(String, u64)>,
}

impl JobRecord<'_> {
    /// Builds the job's metrics registry — the structured source of truth
    /// the legacy `JobMetrics` count fields are derived from.
    pub fn build_registry(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        let overhead = ticks_of(self.cluster.task_overhead);
        for task in &self.map {
            reg.add("map.records_in", task.records_in);
            reg.add("map.records_out", task.records_out);
            reg.add("map.bytes_out", task.bytes);
            for &kind in &task.failures {
                reg.add(&format!("map.failures.{}", kind.label()), 1);
            }
            // Storage-plane counters exist only for jobs that spilled, so
            // unspilled registries (and their exports) stay byte-identical.
            if !task.spills.is_empty() {
                reg.add("storage.spill_files", task.spills.len() as u64);
                reg.add("storage.spilled_bytes", task.spills.iter().sum());
                reg.add("storage.seeks", task.spills.len() as u64);
            }
            reg.record(
                "map.task_ticks",
                TICK_BUCKETS,
                task.total_ticks(self.retry, overhead),
            );
        }
        for task in &self.reduce {
            reg.add("reduce.records_in", task.records_in);
            reg.add("reduce.input_keys", task.keys_in);
            reg.add("reduce.records_out", task.records_out);
            reg.add("reduce.bytes_in", task.bytes);
            for &kind in &task.failures {
                reg.add(&format!("reduce.failures.{}", kind.label()), 1);
            }
            if let Some(m) = &task.merge {
                reg.add("storage.merge_runs", m.runs);
                reg.add("storage.merge_passes", m.passes);
                reg.add("storage.merge_bytes_read", m.bytes_read);
                reg.add("storage.merge_bytes_written", m.bytes_written);
                reg.add("storage.seeks", m.seeks);
            }
            reg.record(
                "reduce.task_ticks",
                TICK_BUCKETS,
                task.total_ticks(self.retry, overhead),
            );
        }
        reg.add("map.attempts", self.map_attempts);
        reg.add("map.retries", self.map_retries);
        reg.add("reduce.attempts", self.reduce_attempts);
        reg.add("reduce.retries", self.reduce_retries);
        reg.add("task.attempts", self.map_attempts + self.reduce_attempts);
        reg.add("map.speculative_wins", self.map_spec_wins);
        reg.add("reduce.speculative_wins", self.reduce_spec_wins);
        reg.add(
            "task.speculative_wins",
            self.map_spec_wins + self.reduce_spec_wins,
        );
        reg.add("map.recovery_tasks", self.recovery.len() as u64);
        reg.add("shuffle.lost_partitions", self.lost.len() as u64);
        reg.add("shuffle.corrupt_partitions", self.corrupt.len() as u64);
        for c in &self.corrupt {
            reg.add("shuffle.corrupt_fetches", u64::from(c.fetches));
        }
        reg.add("map.records_skipped", self.skipped.len() as u64);
        reg.add("node.lost", self.node_losses.len() as u64);
        reg.add("map.reexecuted", self.maps_reexecuted);
        reg.add("node.blacklisted", self.nodes_blacklisted);
        reg.add("shuffle.bytes", self.per_reducer_bytes.iter().sum());
        reg.add("broadcast.bytes", self.cache_bytes);
        reg.add("broadcast.attempts", u64::from(self.broadcast_attempts));
        reg.set_gauge("cluster.nodes", self.cluster.nodes as i64);
        reg.set_gauge("cluster.map_slots", self.cluster.map_slots as i64);
        reg.set_gauge("cluster.reduce_slots", self.cluster.reduce_slots as i64);
        for (key, value) in &self.user_counters {
            reg.add(&format!("user.{key}"), *value);
        }
        reg
    }

    /// Assembles the job's span timeline and commits it (with `registry`
    /// attached) to `collector`, advancing the pipeline model clock.
    pub fn emit(&self, collector: &Collector, registry: MetricsRegistry) {
        let mut job = JobTrace::new(self.name);
        *job.registry_mut() = registry;
        let cluster = self.cluster;
        job.name_lane(DRIVER_LANE, "driver");
        // With a placement, slot lanes carry their home node so node-loss
        // instants can be read against the lanes they hit. Unplaced
        // clusters keep the historical names (byte-identity).
        let placed_nodes = cluster.placement.as_ref().map(|_| cluster.nodes.max(1));
        for slot in 0..cluster.map_slots {
            let name = match placed_nodes {
                Some(n) => format!("map slot {slot} @n{}", Placement::node_of_slot(slot, n)),
                None => format!("map slot {slot}"),
            };
            job.name_lane(map_lane(slot), name);
        }
        for slot in 0..cluster.reduce_slots {
            let name = match placed_nodes {
                Some(n) => format!("reduce slot {slot} @n{}", Placement::node_of_slot(slot, n)),
                None => format!("reduce slot {slot}"),
            };
            job.name_lane(reduce_lane(cluster, slot), name);
        }

        // Driver lane: startup, then the cache broadcast.
        let startup = ticks_of(cluster.job_startup);
        let broadcast = ticks_of(self.broadcast_time);
        job.span(
            Span::new(
                &[self.name, "startup"],
                "startup",
                "driver",
                DRIVER_LANE,
                0,
                startup,
            )
            .with_arg("job", self.name),
        );
        if broadcast > 0 {
            job.span(
                Span::new(
                    &[self.name, "broadcast"],
                    "broadcast",
                    "driver",
                    DRIVER_LANE,
                    startup,
                    broadcast,
                )
                .with_arg("bytes", self.cache_bytes)
                .with_arg("transfers", u64::from(self.broadcast_attempts)),
            );
        }

        // Map wave.
        let overhead = ticks_of(cluster.task_overhead);
        let map_start = startup + broadcast;
        let map_ticks: Vec<Ticks> = self
            .map
            .iter()
            .map(|t| t.total_ticks(self.retry, overhead))
            .collect();
        let (placed, map_makespan) = place(&map_ticks, cluster.map_slots, overhead);
        let mut occupancy: Vec<(Ticks, i64)> = Vec::new();
        for (i, (task, p)) in self.map.iter().zip(&placed).enumerate() {
            let lane = map_lane(p.slot);
            self.emit_task(
                &mut job,
                "map",
                i,
                task,
                lane,
                map_start + p.start,
                overhead,
            );
            occupancy.push((map_start + p.start, 1));
            occupancy.push((map_start + p.end, -1));
        }
        emit_occupancy(&mut job, "map running", occupancy);

        // Skip-bad-records outcomes: one instant per skipped record, at
        // the map phase start (the narrowing happened inside the map wave).
        for &(task, record) in &self.skipped {
            job.instant(
                "skip-record",
                "fault",
                DRIVER_LANE,
                map_start,
                vec![
                    ("task".to_owned(), ArgValue::U64(task as u64)),
                    ("record".to_owned(), ArgValue::U64(record as u64)),
                ],
            );
        }

        // Lost-partition recovery wave: affected map tasks re-execute in a
        // second wave, one clean attempt each.
        let recovery_ticks: Vec<Ticks> = self
            .recovery
            .iter()
            .map(|&i| self.map.get(i).map_or(0, TaskModel::winner_ticks))
            .collect();
        let (replaced, recovery_makespan) = place(&recovery_ticks, cluster.map_slots, overhead);
        let recovery_start = map_start + map_makespan;
        for (&i, p) in self.recovery.iter().zip(&replaced) {
            job.span(
                Span::new(
                    &[self.name, "map-recovery", &i.to_string()],
                    format!("map[{i}] (recovery)"),
                    "map",
                    map_lane(p.slot),
                    recovery_start + p.start,
                    p.end - p.start,
                )
                .with_arg("recovered_task", i as u64),
            );
        }

        // Node-loss re-execution wave: each loss fires a `node-loss`
        // instant when detected, then the invalidated map tasks re-run
        // (one clean attempt each) after the heartbeat timeouts expire.
        let heartbeat = ticks_of(cluster.heartbeat_timeout);
        let heartbeat_total = heartbeat * self.node_losses.len() as u64;
        for loss in &self.node_losses {
            job.instant(
                "node-loss",
                "fault",
                DRIVER_LANE,
                map_start.saturating_add(loss.detect_tick),
                vec![
                    ("node".to_owned(), ArgValue::U64(loss.node as u64)),
                    ("at_tick".to_owned(), ArgValue::U64(loss.at_tick)),
                ],
            );
        }
        let reexec_ticks: Vec<Ticks> = self
            .reexecuted
            .iter()
            .map(|&i| self.map.get(i).map_or(0, TaskModel::winner_ticks))
            .collect();
        let (replaced, reexec_makespan) = place(&reexec_ticks, cluster.map_slots, overhead);
        let reexec_start = recovery_start + recovery_makespan + heartbeat_total;
        for (&i, p) in self.reexecuted.iter().zip(&replaced) {
            job.span(
                Span::new(
                    &[self.name, "map-reexec", &i.to_string()],
                    format!("map[{i}] (re-exec)"),
                    "reexec",
                    map_lane(p.slot),
                    reexec_start + p.start,
                    p.end - p.start,
                )
                .with_arg("reexecuted_task", i as u64),
            );
        }
        let reexec_shift = if self.reexecuted.is_empty() && self.node_losses.is_empty() {
            0
        } else {
            heartbeat_total + reexec_makespan
        };

        // Shuffle: reducers pull their partitions; reducer j's transfer
        // lands on node j % nodes, transfers on one node are sequential,
        // and the phase ends at the bottleneck node's finish — the same
        // accounting as `ClusterConfig::shuffle_time`.
        let shuffle_start = recovery_start + recovery_makespan + reexec_shift;
        // Corrupted partition fetches: one instant per partition whose
        // frame failed checksum verification, at the shuffle start (the
        // re-fetch/re-execution cost is already folded into
        // `shuffle_time` and the re-exec accounting).
        for c in &self.corrupt {
            job.instant(
                "fault:corrupt",
                "fault",
                DRIVER_LANE,
                shuffle_start,
                vec![
                    ("map".to_owned(), ArgValue::U64(c.map as u64)),
                    ("reducer".to_owned(), ArgValue::U64(c.reducer as u64)),
                    ("fetches".to_owned(), ArgValue::U64(u64::from(c.fetches))),
                ],
            );
        }
        let shuffle = ticks_of(self.shuffle_time);
        if shuffle > 0 {
            let nodes = cluster.nodes.max(1);
            // Per-node download cursor and whether the lane is named yet.
            let mut node_state: Vec<(Ticks, bool)> = vec![(shuffle_start, false); nodes];
            for (j, &bytes) in self.per_reducer_bytes.iter().enumerate() {
                let node = j % nodes; // xtask: allow(panic-reachability) — nodes is .max(1) two lines up, so the remainder cannot panic
                let secs = bytes as f64 * cluster.remote_fraction() / cluster.network_bytes_per_sec;
                let dur = ticks_of(Duration::from_secs_f64(secs));
                if dur == 0 {
                    continue;
                }
                let Some((cursor, named)) = node_state.get_mut(node) else {
                    continue;
                };
                if !*named {
                    job.name_lane(network_lane(cluster, node), format!("node {node} downlink"));
                    *named = true;
                }
                job.span(
                    Span::new(
                        &[self.name, "shuffle", &j.to_string()],
                        format!("shuffle→reduce[{j}]"),
                        "shuffle",
                        network_lane(cluster, node),
                        *cursor,
                        dur,
                    )
                    .with_arg("bytes", bytes)
                    .with_arg("reducer", j as u64),
                );
                *cursor += dur;
            }
        }

        // Reduce wave.
        let reduce_start = shuffle_start + shuffle;
        let reduce_ticks: Vec<Ticks> = self
            .reduce
            .iter()
            .map(|t| t.total_ticks(self.retry, overhead))
            .collect();
        let (placed, reduce_makespan) = place(&reduce_ticks, cluster.reduce_slots, overhead);
        let mut occupancy: Vec<(Ticks, i64)> = Vec::new();
        for (j, (task, p)) in self.reduce.iter().zip(&placed).enumerate() {
            let lane = reduce_lane(cluster, p.slot);
            self.emit_task(
                &mut job,
                "reduce",
                j,
                task,
                lane,
                reduce_start + p.start,
                overhead,
            );
            occupancy.push((reduce_start + p.start, 1));
            occupancy.push((reduce_start + p.end, -1));
        }
        emit_occupancy(&mut job, "reduce running", occupancy);

        job.set_total(reduce_start + reduce_makespan);
        collector.commit(job);
    }

    /// One task's span with nested attempt children, fault instants, and
    /// backoff gaps.
    #[allow(clippy::too_many_arguments)]
    fn emit_task(
        &self,
        job: &mut JobTrace,
        phase: &str,
        index: usize,
        task: &TaskModel,
        lane: u64,
        start: Ticks,
        overhead: Ticks,
    ) {
        let idx = index.to_string();
        let task_id = job.id(&[phase, &idx]);
        let total = overhead + task.total_ticks(self.retry, overhead);
        job.span(
            Span::new(
                &[self.name, phase, &idx],
                format!("{phase}[{index}]"),
                phase,
                lane,
                start,
                total,
            )
            .with_arg("records_in", task.records_in)
            .with_arg("records_out", task.records_out)
            .with_arg("bytes", task.bytes)
            .with_arg("attempts", task.failures.len() as u64 + 1)
            .with_arg("slowdown_pct", (task.slowdown.max(1.0) * 100.0) as u64),
        );
        let mut cursor = start;
        let winner = task.failures.len() as u32;
        for (k, &kind) in task.failures.iter().enumerate() {
            cursor += overhead;
            let ticks = task.failure_ticks(kind);
            let attempt = k.to_string();
            job.span(
                Span::new(
                    &[self.name, phase, &idx, "attempt", &attempt],
                    format!("attempt {k}"),
                    "attempt",
                    lane,
                    cursor,
                    ticks,
                )
                .with_parent(task_id)
                .with_arg("outcome", kind.label()),
            );
            cursor += ticks;
            // A hung attempt is killed by the progress-timeout detector,
            // not observed failing; its instant carries the timeout so the
            // kill decision is auditable from the trace alone.
            if let FailKind::Hang(timeout) = kind {
                job.instant(
                    "hang-kill",
                    "fault",
                    lane,
                    cursor,
                    vec![
                        ("task".to_owned(), ArgValue::U64(index as u64)),
                        ("attempt".to_owned(), ArgValue::U64(k as u64)),
                        ("timeout_ticks".to_owned(), ArgValue::U64(timeout)),
                    ],
                );
            } else {
                job.instant(
                    format!("fault:{}", kind.label()),
                    "fault",
                    lane,
                    cursor,
                    vec![
                        ("task".to_owned(), ArgValue::U64(index as u64)),
                        ("attempt".to_owned(), ArgValue::U64(k as u64)),
                    ],
                );
            }
            let backoff = ticks_of(self.retry.backoff_after(k as u32));
            if backoff > 0 {
                job.span(
                    Span::new(
                        &[self.name, phase, &idx, "backoff", &attempt],
                        "backoff",
                        "backoff",
                        lane,
                        cursor,
                        backoff,
                    )
                    .with_parent(task_id),
                );
                cursor += backoff;
            }
        }
        cursor += overhead;
        let attempt = winner.to_string();
        job.span(
            Span::new(
                &[self.name, phase, &idx, "attempt", &attempt],
                format!("attempt {winner}"),
                "attempt",
                lane,
                cursor,
                task.winner_ticks(),
            )
            .with_parent(task_id)
            .with_arg("outcome", "winner"),
        );
        cursor += task.winner_ticks();
        // Storage-plane children (spill mode only): each spill file the
        // winning attempt wrote, then the reduce-side merge cascade. Their
        // ticks are exactly what `storage_ticks` folded into the task
        // span's total, so the children stay inside the parent.
        for (k, &bytes) in task.spills.iter().enumerate() {
            let ticks = model::storage_ticks(bytes, 1);
            job.span(
                Span::new(
                    &[self.name, phase, &idx, "spill", &k.to_string()],
                    format!("spill[{k}]"),
                    "storage",
                    lane,
                    cursor,
                    ticks,
                )
                .with_parent(task_id)
                .with_arg("bytes", bytes),
            );
            cursor += ticks;
        }
        if let Some(m) = &task.merge {
            let ticks = model::storage_ticks(m.bytes_read + m.bytes_written, m.seeks);
            job.span(
                Span::new(
                    &[self.name, phase, &idx, "merge"],
                    "merge",
                    "storage",
                    lane,
                    cursor,
                    ticks,
                )
                .with_parent(task_id)
                .with_arg("runs", m.runs)
                .with_arg("passes", m.passes)
                .with_arg("bytes_read", m.bytes_read)
                .with_arg("bytes_written", m.bytes_written),
            );
        }
    }
}

/// Turns start/end deltas into counter samples (a stacked-area track in
/// the viewer). Ends sort before starts at the same tick so the count
/// never over-shoots.
fn emit_occupancy(job: &mut JobTrace, name: &str, mut deltas: Vec<(Ticks, i64)>) {
    deltas.sort_unstable();
    let mut running: i64 = 0;
    let mut iter = deltas.into_iter().peekable();
    while let Some((tick, delta)) = iter.next() {
        running += delta;
        while let Some(&(next_tick, next_delta)) = iter.peek() {
            if next_tick != tick {
                break;
            }
            running += next_delta;
            iter.next();
        }
        job.counter(name, tick, "tasks", running.max(0) as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skymr_telemetry::EventKind;

    fn test_record<'a>(
        cluster: &'a ClusterConfig,
        retry: &'a RetryPolicy,
        per_reducer_bytes: &'a [u64],
    ) -> JobRecord<'a> {
        JobRecord {
            name: "wc",
            cluster,
            retry,
            cache_bytes: 0,
            broadcast_attempts: 1,
            broadcast_time: Duration::ZERO,
            shuffle_time: Duration::from_micros(40),
            per_reducer_bytes,
            map: vec![
                TaskModel {
                    records_in: 10,
                    records_out: 8,
                    bytes: 256,
                    failures: vec![FailKind::LostOutput],
                    slowdown: 1.0,
                    ..Default::default()
                },
                TaskModel {
                    records_in: 6,
                    records_out: 6,
                    bytes: 128,
                    slowdown: 1.0,
                    ..Default::default()
                },
            ],
            reduce: vec![TaskModel {
                records_in: 14,
                keys_in: 5,
                records_out: 5,
                bytes: 384,
                slowdown: 1.0,
                ..Default::default()
            }],
            recovery: Vec::new(),
            lost: Vec::new(),
            corrupt: Vec::new(),
            skipped: Vec::new(),
            node_losses: Vec::new(),
            reexecuted: Vec::new(),
            maps_reexecuted: 0,
            nodes_blacklisted: 0,
            map_attempts: 3,
            map_retries: 1,
            reduce_attempts: 1,
            reduce_retries: 0,
            map_spec_wins: 0,
            reduce_spec_wins: 0,
            user_counters: vec![("gpsrs.map.tuple_cmps".to_owned(), 99)],
        }
    }

    #[test]
    fn registry_derives_phase_counters() {
        let cluster = ClusterConfig::test();
        let retry = RetryPolicy::new();
        let rec = test_record(&cluster, &retry, &[384]);
        let reg = rec.build_registry();
        assert_eq!(reg.counter("map.records_out"), 14);
        assert_eq!(reg.counter("reduce.input_keys"), 5);
        assert_eq!(reg.counter("map.failures.lost_output"), 1);
        assert_eq!(reg.counter("task.attempts"), 4);
        assert_eq!(reg.counter("user.gpsrs.map.tuple_cmps"), 99);
        assert_eq!(reg.gauge("cluster.map_slots"), Some(4));
        let hist = reg.histogram("map.task_ticks").expect("map histogram");
        assert_eq!(hist.count(), 2);
    }

    #[test]
    fn emit_lays_out_phases_in_order_with_attempt_children() {
        let cluster = ClusterConfig::test();
        let retry = RetryPolicy::new();
        let rec = test_record(&cluster, &retry, &[384]);
        let collector = Collector::new();
        let registry = rec.build_registry();
        rec.emit(&collector, registry);
        let doc = collector.finish();

        let span = |name: &str| {
            doc.events
                .iter()
                .find(|e| e.kind == EventKind::Complete && e.name == name)
                .unwrap_or_else(|| panic!("span {name} missing"))
        };
        let startup = span("startup");
        let map0 = span("map[0]");
        let reduce0 = span("reduce[0]");
        assert!(map0.ts >= startup.ts + startup.dur);
        assert!(reduce0.ts >= map0.ts + map0.dur);
        // map[0]: one failed + one winning attempt; map[1] and reduce[0]:
        // one winning attempt each.
        let attempts = doc
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Complete && e.cat == "attempt")
            .count();
        assert_eq!(attempts, 4, "2 + 1 + 1 attempts across tasks");
        assert!(doc
            .events
            .iter()
            .any(|e| e.kind == EventKind::Instant && e.name == "fault:lost_output"));
        assert!(doc
            .events
            .iter()
            .any(|e| e.kind == EventKind::Counter && e.name == "map running"));
    }

    #[test]
    fn data_integrity_events_reach_instants_and_counters() {
        let cluster = ClusterConfig::test();
        let retry = RetryPolicy::new();
        let mut rec = test_record(&cluster, &retry, &[384]);
        rec.corrupt = vec![
            CorruptEvent {
                map: 0,
                reducer: 0,
                fetches: 1,
                reexecuted: false,
            },
            CorruptEvent {
                map: 1,
                reducer: 0,
                fetches: 2,
                reexecuted: true,
            },
        ];
        rec.skipped = vec![(1, 3)];
        rec.map[0].failures = vec![FailKind::Hang(5000)];

        let reg = rec.build_registry();
        assert_eq!(reg.counter("shuffle.corrupt_partitions"), 2);
        assert_eq!(reg.counter("shuffle.corrupt_fetches"), 3);
        assert_eq!(reg.counter("map.records_skipped"), 1);
        assert_eq!(reg.counter("map.failures.hang"), 1);

        let collector = Collector::new();
        rec.emit(&collector, reg);
        let doc = collector.finish();
        let instants = |name: &str| {
            doc.events
                .iter()
                .filter(|e| e.kind == EventKind::Instant && e.name == name)
                .count()
        };
        assert_eq!(instants("fault:corrupt"), 2);
        assert_eq!(instants("skip-record"), 1);
        assert_eq!(instants("hang-kill"), 1);
        assert_eq!(instants("fault:hang"), 0, "hangs emit hang-kill instead");
        // The hung attempt's span charges exactly the carried timeout.
        let hung = doc
            .events
            .iter()
            .find(|e| e.kind == EventKind::Complete && e.cat == "attempt" && e.name == "attempt 0")
            .expect("hung attempt span");
        assert_eq!(hung.dur, 5000);
    }

    #[test]
    fn storage_plane_reaches_spans_and_counters() {
        let cluster = ClusterConfig::test();
        let retry = RetryPolicy::new();
        let mut rec = test_record(&cluster, &retry, &[384]);
        rec.map[0].spills = vec![4096, 2048];
        rec.reduce[0].merge = Some(MergeStats {
            runs: 2,
            passes: 1,
            bytes_read: 6144,
            bytes_written: 0,
            seeks: 2,
        });

        let reg = rec.build_registry();
        assert_eq!(reg.counter("storage.spill_files"), 2);
        assert_eq!(reg.counter("storage.spilled_bytes"), 6144);
        assert_eq!(reg.counter("storage.merge_passes"), 1);
        assert_eq!(reg.counter("storage.merge_bytes_read"), 6144);
        assert_eq!(
            reg.counter("storage.seeks"),
            4,
            "2 spill creates + 2 merge opens"
        );

        let collector = Collector::new();
        rec.emit(&collector, reg);
        let doc = collector.finish();
        let storage: Vec<_> = doc
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Complete && e.cat == "storage")
            .collect();
        assert_eq!(storage.len(), 3, "two spills + one merge");
        assert!(storage.iter().any(|e| e.name == "spill[1]"));
        assert!(storage.iter().any(|e| e.name == "merge"));
        // Storage children stay inside their parent task span.
        let span = |name: &str| {
            doc.events
                .iter()
                .find(|e| e.kind == EventKind::Complete && e.name == name)
                .unwrap_or_else(|| panic!("span {name} missing"))
        };
        let map0 = span("map[0]");
        let spill1 = span("spill[1]");
        assert!(spill1.ts >= map0.ts);
        assert!(spill1.ts + spill1.dur <= map0.ts + map0.dur);
        let reduce0 = span("reduce[0]");
        let merge = span("merge");
        assert!(merge.ts >= reduce0.ts);
        assert!(merge.ts + merge.dur <= reduce0.ts + reduce0.dur);
    }

    #[test]
    fn unspilled_records_emit_no_storage_artifacts() {
        let cluster = ClusterConfig::test();
        let retry = RetryPolicy::new();
        let rec = test_record(&cluster, &retry, &[384]);
        let reg = rec.build_registry();
        assert_eq!(reg.counter("storage.spill_files"), 0);
        let collector = Collector::new();
        rec.emit(&collector, reg);
        let doc = collector.finish();
        assert!(doc.events.iter().all(|e| e.cat != "storage"));
    }

    #[test]
    fn emission_is_deterministic() {
        let cluster = ClusterConfig::test();
        let retry = RetryPolicy::new();
        let rec = test_record(&cluster, &retry, &[384]);
        let run = || {
            let collector = Collector::new();
            rec.emit(&collector, rec.build_registry());
            skymr_telemetry::export::chrome_trace(&collector.finish())
        };
        assert_eq!(run(), run());
    }
}
