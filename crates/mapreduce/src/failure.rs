//! Deterministic failure injection.
//!
//! MapReduce's fault-tolerance contract is that a failed task is simply
//! re-executed, which is only correct if tasks are deterministic and
//! side-effect free. The paper leans on this property ("MapReduce … is
//! being increasingly used … for its scalability and fault-tolerance");
//! tests use [`FailurePlan`] to assert that every skyline job in this
//! workspace produces identical output when arbitrary tasks fail once and
//! re-run.

use std::collections::BTreeSet;

/// Which task executions should fail on their first attempt.
#[derive(Debug, Clone, Default)]
pub struct FailurePlan {
    /// Map task indices whose first attempt is discarded and re-run.
    pub map_fail_once: BTreeSet<usize>,
    /// Reduce task indices whose first attempt is discarded and re-run.
    pub reduce_fail_once: BTreeSet<usize>,
}

impl FailurePlan {
    /// A plan with no injected failures.
    pub fn none() -> Self {
        Self::default()
    }

    /// Fails the first attempt of the given map tasks.
    pub fn fail_maps(indices: impl IntoIterator<Item = usize>) -> Self {
        Self {
            map_fail_once: indices.into_iter().collect(),
            ..Self::default()
        }
    }

    /// Fails the first attempt of the given reduce tasks.
    pub fn fail_reduces(indices: impl IntoIterator<Item = usize>) -> Self {
        Self {
            reduce_fail_once: indices.into_iter().collect(),
            ..Self::default()
        }
    }

    /// `true` iff the plan injects no failures.
    pub fn is_empty(&self) -> bool {
        self.map_fail_once.is_empty() && self.reduce_fail_once.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_empty() {
        assert!(FailurePlan::none().is_empty());
    }

    #[test]
    fn constructors_populate_sets() {
        let p = FailurePlan::fail_maps([0, 2]);
        assert!(p.map_fail_once.contains(&0) && p.map_fail_once.contains(&2));
        assert!(p.reduce_fail_once.is_empty());
        let p = FailurePlan::fail_reduces([1]);
        assert!(p.reduce_fail_once.contains(&1));
        assert!(!p.is_empty());
    }
}
