//! Map-side combiners (Hadoop's `Combiner`).
//!
//! A combiner folds the values a single map task emitted under one key
//! into fewer values *before* the shuffle, trading mapper CPU for network
//! traffic. Semantically it must be a local pre-aggregation of what the
//! reducer would do — associative and commutative over values — which all
//! the aggregations in this workspace (bitwise OR of bitstrings, addition
//! of countstrings, sums) satisfy.
//!
//! The engine applies the combiner per map task, after [`super::task::MapTask::finish`]
//! and before partitioning, so byte accounting reflects the combined
//! traffic exactly as Hadoop's "map output bytes" does.

/// A map-side pre-aggregation of values under one key.
pub trait Combiner<K, V>: Sync {
    /// Folds `values` (all emitted by one map task under `key`) into a
    /// smaller list. Must preserve reducer semantics: the reducer sees the
    /// combined values in place of the originals.
    fn combine(&self, key: &K, values: Vec<V>) -> Vec<V>;
}

/// The identity combiner: no combining (the engine default).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoCombiner;

impl<K, V> Combiner<K, V> for NoCombiner {
    fn combine(&self, _key: &K, values: Vec<V>) -> Vec<V> {
        values
    }
}

/// Combines by folding all values into one with a binary operation.
#[derive(Debug)]
pub struct FoldCombiner<F> {
    fold: F,
}

impl<F> FoldCombiner<F> {
    /// A combiner applying `fold` pairwise left-to-right.
    pub fn new(fold: F) -> Self {
        Self { fold }
    }
}

impl<K, V, F> Combiner<K, V> for FoldCombiner<F>
where
    F: Fn(V, V) -> V + Sync,
{
    fn combine(&self, _key: &K, values: Vec<V>) -> Vec<V> {
        let mut it = values.into_iter();
        match it.next() {
            None => Vec::new(),
            Some(first) => vec![it.fold(first, &self.fold)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_combiner_is_identity() {
        let c = NoCombiner;
        let vals = vec![1, 2, 3];
        assert_eq!(Combiner::<u8, i32>::combine(&c, &0, vals.clone()), vals);
    }

    #[test]
    fn fold_combiner_reduces_to_one() {
        let c = FoldCombiner::new(|a: u64, b: u64| a + b);
        assert_eq!(
            Combiner::<u8, u64>::combine(&c, &0, vec![1, 2, 3, 4]),
            vec![10]
        );
        assert_eq!(Combiner::<u8, u64>::combine(&c, &0, vec![7]), vec![7]);
        assert!(Combiner::<u8, u64>::combine(&c, &0, vec![]).is_empty());
    }
}
