//! Dynamic analysis for the engine: invariant checkers wired into the job
//! driver in debug builds, and a *schedule shaker* that reruns a job under
//! many seeded thread-count/ordering configurations to prove its output
//! does not depend on the execution schedule.
//!
//! # Invariants
//!
//! * **Shuffle is a partition of mapper output** — every key/value pair a
//!   mapper emits reaches exactly one reducer, none are dropped or
//!   duplicated ([`check_shuffle_partition`]).
//! * **Reducer input groups are key-disjoint** — no key is handed to two
//!   reduce tasks ([`check_groups_disjoint`]).
//! * **A skyline is dominance-free** — no output tuple dominates another
//!   ([`check_antichain`] for the generic relation, [`check_skyline`] for
//!   the workspace's [`Tuple`] dominance).
//!
//! [`run_job`](crate::run_job) calls the first two after its shuffle in
//! debug builds (`debug_assertions`), so every unit/integration test run
//! exercises them for free; release benchmarks pay nothing.
//!
//! # The schedule shaker
//!
//! The engine's claim is that its output is a pure function of the input:
//! thread counts, slot counts, and split order only move the simulated
//! clock, never the answer. [`schedule_shake`] makes that claim testable:
//! it derives `n` [`ShakeCase`]s from one seed (each case fixes a host
//! thread count, slot counts, and a permutation seed), runs the caller's
//! job closure once per case, and demands byte-identical output from every
//! run. Anything schedule-dependent — a `HashMap` iteration order leaking
//! into output, a reduction merged in arrival order, a data race — shows
//! up as a [`ScheduleDivergence`] naming the first diverging case.

use std::collections::BTreeMap;
use std::fmt;

use skymr_common::dominance::dominates;
use skymr_common::Tuple;

use crate::cluster::{ClusterConfig, Placement};

// ---------------------------------------------------------------------
// Invariant checkers.
// ---------------------------------------------------------------------

/// A violated engine invariant, with enough context to debug it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant failed, e.g. `shuffle-partition`.
    pub invariant: &'static str,
    /// Human-readable specifics (offending key, counts, indices).
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invariant `{}` violated: {}",
            self.invariant, self.detail
        )
    }
}

/// Result type of the invariant checkers.
pub type InvariantResult = Result<(), Violation>;

/// Checks that the reducer input `groups` are key-disjoint: every key is
/// owned by at most one reduce task.
pub fn check_groups_disjoint<K: Ord + Clone + fmt::Debug, V>(
    groups: &[BTreeMap<K, Vec<V>>],
) -> InvariantResult {
    let mut owner: BTreeMap<&K, usize> = BTreeMap::new();
    for (j, group) in groups.iter().enumerate() {
        for k in group.keys() {
            if let Some(&prev) = owner.get(k) {
                return Err(Violation {
                    invariant: "groups-disjoint",
                    detail: format!("key {k:?} routed to both reducer {prev} and reducer {j}"),
                });
            }
            owner.insert(k, j);
        }
    }
    Ok(())
}

/// Checks that the shuffle partitioned the mapper output: the per-key pair
/// counts `emitted` by the map phase equal the per-key counts across the
/// reducer input `groups` (nothing dropped, nothing duplicated), and the
/// groups are key-disjoint.
pub fn check_shuffle_partition<K: Ord + Clone + fmt::Debug, V>(
    emitted: &BTreeMap<K, u64>,
    groups: &[BTreeMap<K, Vec<V>>],
) -> InvariantResult {
    check_groups_disjoint(groups)?;
    let mut received: BTreeMap<&K, u64> = BTreeMap::new();
    for group in groups {
        for (k, vs) in group {
            *received.entry(k).or_insert(0) += vs.len() as u64;
        }
    }
    for (k, &sent) in emitted {
        let got = received.remove(k).unwrap_or(0);
        if got != sent {
            return Err(Violation {
                invariant: "shuffle-partition",
                detail: format!("key {k:?}: mappers emitted {sent} pair(s), reducers got {got}"),
            });
        }
    }
    if let Some((k, got)) = received.into_iter().next() {
        return Err(Violation {
            invariant: "shuffle-partition",
            detail: format!("key {k:?}: reducers got {got} pair(s) the mappers never emitted"),
        });
    }
    Ok(())
}

/// Checks that `items` form an antichain under `relation`: no element is
/// related to (dominates) another. `O(n²)` — debug/test use only.
pub fn check_antichain<T, F>(items: &[T], relation: F) -> InvariantResult
where
    F: Fn(&T, &T) -> bool,
{
    for (i, a) in items.iter().enumerate() {
        for (j, b) in items.iter().enumerate() {
            if i != j && relation(a, b) {
                return Err(Violation {
                    invariant: "antichain",
                    detail: format!("element {i} dominates element {j}"),
                });
            }
        }
    }
    Ok(())
}

/// Checks that a computed skyline is dominance-free under the workspace's
/// tuple dominance relation.
pub fn check_skyline(skyline: &[Tuple]) -> InvariantResult {
    check_antichain(skyline, dominates).map_err(|v| Violation {
        invariant: "skyline-dominance-free",
        detail: v.detail,
    })
}

/// Debug-build hook used by the job driver after the shuffle: panics with
/// the violation if the shuffle lost, duplicated, or double-routed pairs.
pub(crate) fn assert_shuffle_invariants<K: Ord + Clone + fmt::Debug, V>(
    emitted: &BTreeMap<K, u64>,
    groups: &[BTreeMap<K, Vec<V>>],
) {
    if let Err(v) = check_shuffle_partition(emitted, groups) {
        panic!("{v}");
    }
}

// ---------------------------------------------------------------------
// The schedule shaker.
// ---------------------------------------------------------------------

/// One execution configuration the shaker runs a job under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShakeCase {
    /// Case number (0-based).
    pub index: usize,
    /// Host threads executing tasks concurrently (1–8).
    pub host_threads: usize,
    /// Simulated concurrent map slots (1–6).
    pub map_slots: usize,
    /// Simulated concurrent reduce slots (1–6).
    pub reduce_slots: usize,
    /// Seed for input-order permutations via [`ShakeCase::permute`].
    pub shuffle_seed: u64,
    /// Seed for the case's task [`Placement`]: where tasks live on the
    /// simulated nodes must never leak into job output either.
    pub placement_seed: u64,
}

impl ShakeCase {
    /// `base` with this case's thread and slot counts applied, plus a
    /// case-seeded [`Placement`] so node assignment varies across cases.
    pub fn cluster(&self, base: &ClusterConfig) -> ClusterConfig {
        let mut c = base.clone();
        c.host_threads = self.host_threads;
        c.map_slots = self.map_slots;
        c.reduce_slots = self.reduce_slots;
        c.placement = Some(Placement::new(self.placement_seed));
        c
    }

    /// Permutes `items` with a Fisher–Yates shuffle driven by this case's
    /// seed — reorder splits or input records to vary task/arrival order.
    pub fn permute<T>(&self, items: &mut [T]) {
        let mut state = self.shuffle_seed;
        for i in (1..items.len()).rev() {
            let j = (splitmix64(&mut state) as usize) % (i + 1);
            items.swap(i, j);
        }
    }
}

/// Derives `n` distinct-looking [`ShakeCase`]s from `seed`. Case 0 always
/// pins `host_threads = 1` (the fully serial schedule) so every shake
/// compares concurrent schedules against a serial baseline.
pub fn shake_cases(n: usize, seed: u64) -> Vec<ShakeCase> {
    let mut state = seed;
    (0..n)
        .map(|index| ShakeCase {
            index,
            host_threads: if index == 0 {
                1
            } else {
                1 + (splitmix64(&mut state) as usize) % 8
            },
            map_slots: 1 + (splitmix64(&mut state) as usize) % 6,
            reduce_slots: 1 + (splitmix64(&mut state) as usize) % 6,
            shuffle_seed: splitmix64(&mut state),
            placement_seed: splitmix64(&mut state),
        })
        .collect()
}

/// How a shake failed: some case produced different bytes than case 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleDivergence {
    /// The case whose output diverged from case 0's.
    pub case: ShakeCase,
    /// First byte offset at which the outputs differ, or the shorter
    /// output's length if one is a prefix of the other.
    pub first_difference: usize,
    /// Output lengths of (baseline, diverged case).
    pub lengths: (usize, usize),
}

impl fmt::Display for ScheduleDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "schedule-dependent output: case {} ({} host threads, {}x{} slots, seed {:#x}) \
             diverged from the serial baseline at byte {} (lengths {} vs {})",
            self.case.index,
            self.case.host_threads,
            self.case.map_slots,
            self.case.reduce_slots,
            self.case.shuffle_seed,
            self.first_difference,
            self.lengths.0,
            self.lengths.1,
        )
    }
}

/// A successful shake: every case produced byte-identical output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShakeReport {
    /// The configurations that were run.
    pub cases: Vec<ShakeCase>,
    /// Length in bytes of the (common) output.
    pub output_len: usize,
}

/// Runs `run` once per seeded case and verifies all outputs are
/// byte-identical. The closure should serialize the job's *sorted* logical
/// output (e.g. skyline tuples ordered by id) — not metrics or timings,
/// which legitimately vary with the schedule.
///
/// Returns the report on success, or the first divergence found.
///
/// # Panics
///
/// Panics if `n == 0` — a shake needs at least the serial baseline.
pub fn schedule_shake<F>(n: usize, seed: u64, mut run: F) -> Result<ShakeReport, ScheduleDivergence>
where
    F: FnMut(&ShakeCase) -> Vec<u8>,
{
    assert!(n > 0, "schedule_shake needs at least one case");
    let cases = shake_cases(n, seed);
    let baseline = run(&cases[0]);
    for case in &cases[1..] {
        let output = run(case);
        if output != baseline {
            let first_difference = baseline
                .iter()
                .zip(output.iter())
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| baseline.len().min(output.len()));
            return Err(ScheduleDivergence {
                case: case.clone(),
                first_difference,
                lengths: (baseline.len(), output.len()),
            });
        }
    }
    Ok(ShakeReport {
        cases,
        output_len: baseline.len(),
    })
}

/// [`schedule_shake`], but panics with the divergence report — the form
/// tests use.
pub fn assert_schedule_independent<F>(n: usize, seed: u64, run: F) -> ShakeReport
where
    F: FnMut(&ShakeCase) -> Vec<u8>,
{
    match schedule_shake(n, seed, run) {
        Ok(report) => report,
        Err(div) => panic!("{div}"),
    }
}

/// SplitMix64 — the workspace's standard seed-expansion step. Local copy
/// so the engine crate stays dependency-free; the sequence is fixed by the
/// algorithm, not by this implementation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn groups_of(pairs: &[&[(u32, u32)]]) -> Vec<BTreeMap<u32, Vec<u32>>> {
        pairs
            .iter()
            .map(|g| {
                let mut m: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
                for &(k, v) in *g {
                    m.entry(k).or_default().push(v);
                }
                m
            })
            .collect()
    }

    fn emitted_of(pairs: &[(u32, u64)]) -> BTreeMap<u32, u64> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn consistent_shuffle_passes() {
        let groups = groups_of(&[&[(1, 10), (1, 11)], &[(2, 20)]]);
        let emitted = emitted_of(&[(1, 2), (2, 1)]);
        assert_eq!(check_shuffle_partition(&emitted, &groups), Ok(()));
    }

    #[test]
    fn dropped_pair_is_reported() {
        let groups = groups_of(&[&[(1, 10)]]);
        let emitted = emitted_of(&[(1, 2)]);
        let err = check_shuffle_partition(&emitted, &groups).unwrap_err();
        assert_eq!(err.invariant, "shuffle-partition");
        assert!(err.detail.contains("emitted 2"), "{}", err.detail);
    }

    #[test]
    fn conjured_key_is_reported() {
        let groups = groups_of(&[&[(1, 10)], &[(9, 90)]]);
        let emitted = emitted_of(&[(1, 1)]);
        let err = check_shuffle_partition(&emitted, &groups).unwrap_err();
        assert!(err.detail.contains("never emitted"), "{}", err.detail);
    }

    #[test]
    fn double_routed_key_is_reported() {
        let groups = groups_of(&[&[(1, 10)], &[(1, 11)]]);
        let emitted = emitted_of(&[(1, 2)]);
        let err = check_shuffle_partition(&emitted, &groups).unwrap_err();
        assert_eq!(err.invariant, "groups-disjoint");
        assert!(err.detail.contains("reducer 0"), "{}", err.detail);
    }

    #[test]
    fn antichain_accepts_incomparable_and_rejects_dominated() {
        // "a dominates b" as strict divisibility: a < b and a | b.
        let rel = |a: &u32, b: &u32| a != b && b % a == 0;
        assert_eq!(check_antichain(&[4, 6, 9], rel), Ok(()));
        let err = check_antichain(&[3, 4, 12], rel).unwrap_err();
        assert!(err.detail.contains("dominates"));
    }

    #[test]
    fn skyline_checker_uses_tuple_dominance() {
        let free = vec![Tuple::new(0, vec![0.1, 0.9]), Tuple::new(1, vec![0.9, 0.1])];
        assert_eq!(check_skyline(&free), Ok(()));
        let broken = vec![Tuple::new(0, vec![0.1, 0.1]), Tuple::new(1, vec![0.5, 0.5])];
        let err = check_skyline(&broken).unwrap_err();
        assert_eq!(err.invariant, "skyline-dominance-free");
    }

    #[test]
    fn cases_are_deterministic_per_seed_and_serial_first() {
        let a = shake_cases(8, 42);
        let b = shake_cases(8, 42);
        assert_eq!(a, b);
        assert_eq!(a[0].host_threads, 1, "case 0 is the serial baseline");
        let c = shake_cases(8, 43);
        assert_ne!(a, c, "different seeds explore different schedules");
        assert!(a.iter().all(|c| (1..=8).contains(&c.host_threads)));
        assert!(a.iter().any(|c| c.host_threads > 1));
    }

    #[test]
    fn permutation_is_a_seeded_bijection() {
        let case = &shake_cases(2, 7)[1];
        let mut v1: Vec<u32> = (0..50).collect();
        let mut v2: Vec<u32> = (0..50).collect();
        case.permute(&mut v1);
        case.permute(&mut v2);
        assert_eq!(v1, v2, "same seed, same permutation");
        let mut sorted = v1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>(), "a permutation");
        assert_ne!(v1, sorted, "50 elements virtually never map to identity");
    }

    #[test]
    fn shake_accepts_schedule_independent_runs() {
        let report = schedule_shake(8, 99, |_case| b"stable output".to_vec())
            .expect("identical outputs must pass");
        assert_eq!(report.cases.len(), 8);
        assert_eq!(report.output_len, 13);
    }

    #[test]
    fn shake_reports_the_first_diverging_case() {
        let err = schedule_shake(8, 99, |case| {
            if case.index == 3 {
                b"stable outpuX".to_vec()
            } else {
                b"stable output".to_vec()
            }
        })
        .unwrap_err();
        assert_eq!(err.case.index, 3);
        assert_eq!(err.first_difference, 12);
        assert_eq!(err.lengths, (13, 13));
        assert!(err.to_string().contains("case 3"));
    }

    #[test]
    fn shake_flags_length_divergence_at_prefix_end() {
        let err = schedule_shake(2, 1, |case| vec![7; 4 + case.index]).unwrap_err();
        assert_eq!(err.first_difference, 4);
        assert_eq!(err.lengths, (4, 5));
    }

    #[test]
    #[should_panic(expected = "schedule-dependent output")]
    fn assert_form_panics_on_divergence() {
        assert_schedule_independent(4, 5, |case| vec![case.host_threads as u8]);
    }

    #[test]
    fn cluster_override_keeps_other_fields() {
        let base = ClusterConfig::test();
        let case = ShakeCase {
            index: 1,
            host_threads: 7,
            map_slots: 2,
            reduce_slots: 3,
            shuffle_seed: 0,
            placement_seed: 0xA11CE,
        };
        let c = case.cluster(&base);
        assert_eq!(c.host_threads, 7);
        assert_eq!(c.map_slots, 2);
        assert_eq!(c.reduce_slots, 3);
        assert_eq!(c.placement, Some(Placement::new(0xA11CE)));
        assert_eq!(c.nodes, base.nodes);
        assert_eq!(c.job_startup, base.job_startup);
    }

    #[test]
    fn cases_vary_the_placement_seed() {
        let cases = shake_cases(8, 42);
        let seeds: std::collections::BTreeSet<u64> =
            cases.iter().map(|c| c.placement_seed).collect();
        assert!(seeds.len() > 1, "placement seeds must vary across cases");
    }
}
