//! An in-process MapReduce engine with a simulated cluster clock.
//!
//! This crate is the reproduction's stand-in for the Hadoop 1.1.0 cluster
//! used in the paper's evaluation (13 commodity machines on a 100 Mbit/s
//! LAN). It executes map and reduce tasks on bounded thread pools and tracks
//! a *simulated wall clock* alongside real compute time:
//!
//! * **compute** — each task's real CPU time is measured, and a phase's
//!   duration is the makespan of placing those measured durations onto the
//!   configured number of task slots (LPT list scheduling), which mirrors
//!   how Hadoop schedules a wave of tasks onto a fixed slot pool;
//! * **communication** — shuffle traffic, distributed-cache broadcast, and
//!   job startup are charged analytically from byte counts
//!   ([`skymr_common::ByteSized`]) and the configured link bandwidth.
//!
//! The resulting [`JobMetrics::sim_runtime`] plays the role of the paper's
//! measured "runtime" (Section 7.1: elapsed time from computation start to
//! the global skyline being fully output). Because both the single-reducer
//! bottleneck of MR-GPSRS and the replication overhead of MR-GPMRS flow
//! through the same accounting, the trade-offs the paper measures emerge
//! from mechanics rather than hardcoded constants.
//!
//! # Programming model
//!
//! The API mirrors Hadoop's: a [`MapTask`] is created per input split by a
//! [`MapFactory`] (setup), receives every record of its split
//! ([`MapTask::map`]), and may emit trailing output when the split is
//! exhausted ([`MapTask::finish`] — Hadoop's `cleanup`, which the paper's
//! algorithms use to emit local skylines). Emitted pairs are routed to
//! reducers by a [`Partitioner`], grouped and key-sorted, and handed to
//! [`ReduceTask::reduce`] once per distinct key. Jobs can be chained; a
//! [`pipeline::PipelineMetrics`] accumulates per-job metrics.
//!
//! A read-only job-wide value (the paper's Hadoop *Distributed Cache*, used
//! to ship the global bitstring to every node) is modelled by capturing an
//! `Arc` in the factories and declaring its byte size in
//! [`JobConfig::cache_bytes`] so the broadcast is charged to the clock.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod cluster;
pub mod combiner;
pub mod fault;
pub mod job;
pub mod partitioner;
pub mod pipeline;
pub mod pool;
pub mod sched;
pub mod splits;
pub mod storage;
pub mod task;
pub mod trace;

pub use analysis::{assert_schedule_independent, schedule_shake, ShakeCase, ShakeReport};
pub use cluster::{ClusterConfig, JobMetrics, Placement};
pub use combiner::{Combiner, FoldCombiner, NoCombiner};
pub use fault::{
    BlacklistPolicy, CorruptFetch, FaultKind, FaultPlan, FaultProfile, FaultTolerance, JobError,
    NodeLoss, NodePartition, RetryPolicy, SpeculationPolicy, TaskFault, TaskKind,
};
pub use job::{
    run_job, run_job_from, run_job_with_combiner, run_job_with_combiner_from, JobConfig, JobOutcome,
};
pub use partitioner::{HashPartitioner, ModuloPartitioner, Partitioner, SingleReducerPartitioner};
pub use pipeline::{Checkpoint, JobSnapshot, PipelineMetrics, Runner, Snapshot};
pub use sched::{
    AdmissionConfig, AdmissionController, ClusterExecutor, FairShareScheduler, FifoScheduler,
    JobCompletion, JobHandle, JobSpec, PriorityScheduler, Reservation, SchedOutcome, SchedReport,
    Scheduler, TenantStats,
};
pub use splits::{FnSplits, SliceSplits, SplitData, SplitSource};
pub use storage::{parse_byte_size, StorageConfig};
pub use task::{
    Emitter, JobKey, JobValue, MapFactory, MapTask, OutputCollector, ReduceFactory, ReduceTask,
    TaskContext,
};

pub use skymr_common::{ByteSized, Counters};

/// The telemetry subsystem (re-exported so downstream crates need no
/// direct dependency): span tracing, metrics registry, exporters.
pub use skymr_telemetry as telemetry;
pub use skymr_telemetry::{Collector, MetricsRegistry, TraceDocument};
