//! Routing of intermediate keys to reducers.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Decides which reducer receives a given intermediate key.
pub trait Partitioner<K>: Sync {
    /// Returns the reducer index for `key`; must lie in `0..num_reducers`.
    fn partition(&self, key: &K, num_reducers: usize) -> usize;
}

/// Hadoop's default: `hash(key) mod r`.
#[derive(Debug, Default, Clone, Copy)]
pub struct HashPartitioner;

impl<K: Hash> Partitioner<K> for HashPartitioner {
    fn partition(&self, key: &K, num_reducers: usize) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() % num_reducers as u64) as usize // invariant: run_job asserts num_reducers > 0 before any partition call
    }
}

/// Routes everything to reducer 0 — the single-reducer topology used by the
/// bitstring-generation job, MR-GPSRS, MR-BNL, and MR-Angle.
#[derive(Debug, Default, Clone, Copy)]
pub struct SingleReducerPartitioner;

impl<K> Partitioner<K> for SingleReducerPartitioner {
    fn partition(&self, _key: &K, num_reducers: usize) -> usize {
        debug_assert_eq!(
            num_reducers, 1,
            "SingleReducerPartitioner expects one reducer"
        );
        0
    }
}

/// Routes an integer key `k` to reducer `k mod r` — the round-robin group
/// distribution of MR-GPMRS (paper Algorithm 8 line 18: `Output(i % r + 1, …)`).
#[derive(Debug, Default, Clone, Copy)]
pub struct ModuloPartitioner;

macro_rules! impl_modulo {
    ($($t:ty),*) => {
        $(impl Partitioner<$t> for ModuloPartitioner {
            fn partition(&self, key: &$t, num_reducers: usize) -> usize {
                (*key as usize) % num_reducers
            }
        })*
    };
}

impl_modulo!(u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_partitioner_is_deterministic_and_in_range() {
        let p = HashPartitioner;
        for k in 0u64..100 {
            let r = p.partition(&k, 7);
            assert!(r < 7);
            assert_eq!(r, p.partition(&k, 7));
        }
    }

    #[test]
    fn hash_partitioner_spreads_keys() {
        let p = HashPartitioner;
        let mut seen = std::collections::HashSet::new();
        for k in 0u64..64 {
            seen.insert(p.partition(&k, 8));
        }
        assert!(seen.len() > 1, "all keys routed to one reducer");
    }

    #[test]
    fn single_reducer_partitioner_always_zero() {
        let p = SingleReducerPartitioner;
        assert_eq!(Partitioner::<u32>::partition(&p, &99, 1), 0);
    }

    #[test]
    fn modulo_partitioner_wraps() {
        let p = ModuloPartitioner;
        assert_eq!(p.partition(&0u32, 4), 0);
        assert_eq!(p.partition(&5u32, 4), 1);
        assert_eq!(p.partition(&7u32, 4), 3);
    }
}
