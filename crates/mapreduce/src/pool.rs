//! A minimal work-stealing-free slot pool for executing indexed tasks.
//!
//! The engine needs exact per-task durations (for the makespan model) and
//! deterministic result placement (results indexed by task id), which a
//! hand-rolled pool over `std::thread::scope` provides with no surprises
//! about task placement.
//!
//! This module is the **only** place in the workspace allowed to spawn
//! threads (`cargo xtask lint` enforces it): funnelling every worker through
//! one pool keeps panic propagation, duration accounting, and the
//! schedule-shaker's thread-count sweeps ([`crate::analysis`]) all in one
//! auditable spot.

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Once;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// Runs `num_tasks` closures concurrently on at most `threads` workers.
///
/// `run(task_index)` is invoked exactly once per index (unless a task
/// panics). Returns per-task `(result, measured_duration)` in task-index
/// order regardless of which worker executed which task.
///
/// # Panics
///
/// Re-raises the **first** task panic *with its original payload*, so a
/// panicking map/reduce task fails the job with the task's own message
/// rather than a generic pool error. Later panics (tasks already running on
/// other workers when the first one fired) are dropped; remaining queued
/// tasks are drained without executing. Result slots written by tasks that
/// completed before the panic are discarded wholesale — no partially
/// poisoned output can escape because the panic is re-raised before the
/// results vector is returned.
pub fn run_indexed<T, F>(num_tasks: usize, threads: usize, run: F) -> Vec<(T, Duration)>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(threads > 0, "pool requires at least one thread");
    let results: Mutex<Vec<Option<(T, Duration)>>> =
        Mutex::new((0..num_tasks).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    let panic_slot: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    let workers = threads.min(num_tasks.max(1));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= num_tasks {
                    break;
                }
                let started = Instant::now(); // xtask: allow(clock-discipline) — per-task host duration lands in the worker's result slot as an advisory metric; sim time comes from the cost model
                match catch_unwind(AssertUnwindSafe(|| run(i))) {
                    Ok(value) => {
                        let elapsed = started.elapsed();
                        results.lock()[i] = Some((value, elapsed));
                    }
                    Err(payload) => {
                        let mut slot = panic_slot.lock();
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                        // Drain remaining work so other workers exit quickly.
                        next.store(num_tasks, Ordering::Relaxed);
                        break;
                    }
                }
            });
        }
    });

    if let Some(payload) = panic_slot.into_inner() {
        resume_unwind(payload);
    }

    results
        .into_inner()
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|| panic!("task {i} never executed")))
        .collect()
}

/// A panic captured from one task *attempt* by [`catch_attempt`].
///
/// Keeps both a human-readable message (extracted when the payload is the
/// usual `&str` / `String`) and the original payload, so the fault layer
/// can re-raise the exact panic once a task's retry budget is exhausted.
pub struct CaughtPanic {
    /// Best-effort textual form of the panic payload.
    pub message: String,
    /// The original payload, untouched.
    pub payload: Box<dyn std::any::Any + Send>,
}

impl std::fmt::Debug for CaughtPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CaughtPanic")
            .field("message", &self.message)
            .finish_non_exhaustive()
    }
}

thread_local! {
    /// True while the current thread is unwinding from a *deliberately
    /// injected* panic — the global hook stays silent for those.
    static QUIET_PANIC: Cell<bool> = const { Cell::new(false) };
}
static QUIET_HOOK: Once = Once::new();

/// Raises a deliberately injected panic without letting the global panic
/// hook print a message and backtrace to stderr: injected mid-task crashes
/// are expected control flow for the fault layer, not bugs worth a stderr
/// dump on every chaos run. Genuine UDF panics are unaffected — the hook
/// only goes quiet for panics raised through this function, and
/// [`catch_attempt`] re-arms printing as soon as the attempt is caught.
pub fn raise_injected_panic(message: String) -> ! {
    QUIET_HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !QUIET_PANIC.with(Cell::get) {
                previous(info);
            }
        }));
    });
    QUIET_PANIC.with(|flag| flag.set(true));
    std::panic::panic_any(message)
}

/// Runs one task attempt, converting a panic into an `Err(CaughtPanic)`
/// instead of unwinding into the pool.
///
/// This is the fault-tolerance boundary the retry scheduler builds on: a
/// UDF panic caught here becomes a *task failure* (retried under the job's
/// [`crate::fault::RetryPolicy`]) rather than a job abort, so one crashing
/// attempt no longer poisons sibling tasks running on the same pool. The
/// catch lives next to [`run_indexed`] because together they define the
/// pool's complete panic story: caught per-attempt here, first-payload
/// re-raised there if a panic escapes anyway.
pub fn catch_attempt<T>(run: impl FnOnce() -> T) -> Result<T, CaughtPanic> {
    let caught = catch_unwind(AssertUnwindSafe(run));
    QUIET_PANIC.with(|flag| flag.set(false));
    match caught {
        Ok(value) => Ok(value),
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            Err(CaughtPanic { message, payload })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn executes_every_task_exactly_once() {
        let calls = AtomicU64::new(0);
        let results = run_indexed(100, 4, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i * 2
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        let values: Vec<usize> = results.iter().map(|(v, _)| *v).collect();
        assert_eq!(values, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn results_are_in_task_order_despite_concurrency() {
        let results = run_indexed(50, 8, |i| {
            if i % 7 == 0 {
                std::thread::sleep(Duration::from_micros(200));
            }
            i
        });
        for (i, (v, _)) in results.iter().enumerate() {
            assert_eq!(*v, i);
        }
    }

    #[test]
    fn durations_are_measured() {
        let results = run_indexed(2, 2, |_| {
            std::thread::sleep(Duration::from_millis(5));
        });
        for (_, d) in results {
            assert!(d >= Duration::from_millis(4), "duration {d:?} too small");
        }
    }

    #[test]
    fn zero_tasks_is_fine() {
        let results: Vec<((), Duration)> = run_indexed(0, 4, |_| ());
        assert!(results.is_empty());
    }

    #[test]
    fn more_threads_than_tasks_is_fine() {
        let results = run_indexed(2, 16, |i| i + 1);
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn single_thread_runs_sequentially() {
        let seen = Mutex::new(HashSet::new());
        run_indexed(10, 1, |i| {
            seen.lock().insert(i);
        });
        assert_eq!(seen.into_inner().len(), 10);
    }

    #[test]
    fn task_panic_propagates() {
        let outcome = catch_unwind(|| {
            run_indexed(4, 2, |i| {
                if i == 2 {
                    panic!("boom in task");
                }
                i
            })
        });
        assert!(outcome.is_err());
    }

    /// Regression test: a panicking task must surface its *original*
    /// payload (message intact), and tasks that completed before the panic
    /// must not leak partially filled results — the call either returns a
    /// complete result vector or unwinds.
    #[test]
    fn task_panic_keeps_original_payload_and_poisons_nothing() {
        let completed = AtomicU64::new(0);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run_indexed(16, 3, |i| {
                if i == 5 {
                    panic!("map task 5 exploded on split 5");
                }
                completed.fetch_add(1, Ordering::Relaxed);
                i
            })
        }));
        let payload = outcome.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .expect("payload must be the original panic message");
        assert_eq!(msg, "map task 5 exploded on split 5");
        // Some tasks finished before the panic, yet none of their slots
        // escaped: the unwind happened instead of a partial return.
        assert!(completed.load(Ordering::Relaxed) < 16);
    }

    /// Regression test (fault-tolerance layer): with retries enabled the
    /// per-attempt catch turns a panic on attempt 0 into an `Err`, so the
    /// pool never sees it and sibling tasks run to completion untouched.
    #[test]
    fn caught_attempt_panic_does_not_poison_siblings() {
        let completed = AtomicU64::new(0);
        let results = run_indexed(16, 3, |i| {
            let first = catch_attempt(|| {
                if i == 5 {
                    panic!("map task 5 exploded on attempt 0");
                }
                i
            });
            match first {
                Ok(v) => {
                    completed.fetch_add(1, Ordering::Relaxed);
                    v
                }
                // Retry: attempt 1 of the flaky task succeeds.
                Err(caught) => {
                    assert_eq!(caught.message, "map task 5 exploded on attempt 0");
                    completed.fetch_add(1, Ordering::Relaxed);
                    i
                }
            }
        });
        assert_eq!(
            completed.load(Ordering::Relaxed),
            16,
            "no sibling was poisoned"
        );
        let values: Vec<usize> = results.iter().map(|(v, _)| *v).collect();
        assert_eq!(values, (0..16).collect::<Vec<_>>());
    }

    /// The payload captured by `catch_attempt` is the *original* one, so
    /// re-raising it after an exhausted retry budget surfaces the exact
    /// panic the UDF threw.
    #[test]
    fn caught_attempt_preserves_original_payload() {
        let err =
            catch_attempt(|| -> () { std::panic::panic_any(42_u64) }).expect_err("must catch");
        assert_eq!(err.message, "non-string panic payload");
        assert_eq!(err.payload.downcast_ref::<u64>(), Some(&42));
        let outcome = catch_unwind(AssertUnwindSafe(|| resume_unwind(err.payload)));
        let payload = outcome.expect_err("resume re-raises");
        assert_eq!(payload.downcast_ref::<u64>(), Some(&42));
    }

    /// When several tasks panic, the first observed payload wins and the
    /// pool still unwinds exactly once.
    #[test]
    fn first_of_many_panics_wins() {
        let outcome = catch_unwind(|| {
            run_indexed(8, 1, |i| {
                panic!("task {i} failed");
            })
        });
        let payload = outcome.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("formatted panic payload is a String");
        // Single-threaded pool: task 0 is deterministically first.
        assert_eq!(msg, "task 0 failed");
    }
}
