//! A minimal work-stealing-free slot pool for executing indexed tasks.
//!
//! The engine needs exact per-task durations (for the makespan model) and
//! deterministic result placement (results indexed by task id), which a
//! hand-rolled pool over `crossbeam::scope` provides with no surprises about
//! task placement.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// Runs `num_tasks` closures concurrently on at most `threads` workers.
///
/// `run(task_index)` is invoked exactly once per index (unless it panics).
/// Returns per-task `(result, measured_duration)` in task-index order.
///
/// # Panics
///
/// Re-raises the first panic observed in any task after all workers have
/// stopped, so a panicking map/reduce task fails the job loudly instead of
/// deadlocking.
pub fn run_indexed<T, F>(num_tasks: usize, threads: usize, run: F) -> Vec<(T, Duration)>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(threads > 0, "pool requires at least one thread");
    let results: Mutex<Vec<Option<(T, Duration)>>> =
        Mutex::new((0..num_tasks).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    let panic_slot: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    let workers = threads.min(num_tasks.max(1));
    crossbeam::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= num_tasks {
                    break;
                }
                let started = Instant::now();
                match catch_unwind(AssertUnwindSafe(|| run(i))) {
                    Ok(value) => {
                        let elapsed = started.elapsed();
                        results.lock()[i] = Some((value, elapsed));
                    }
                    Err(payload) => {
                        let mut slot = panic_slot.lock();
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                        // Drain remaining work so other workers exit quickly.
                        next.store(num_tasks, Ordering::Relaxed);
                        break;
                    }
                }
            });
        }
    })
    .expect("pool worker thread panicked outside task execution");

    if let Some(payload) = panic_slot.into_inner() {
        std::panic::resume_unwind(payload);
    }

    results
        .into_inner()
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|| panic!("task {i} never executed")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn executes_every_task_exactly_once() {
        let calls = AtomicU64::new(0);
        let results = run_indexed(100, 4, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i * 2
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        let values: Vec<usize> = results.iter().map(|(v, _)| *v).collect();
        assert_eq!(values, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn results_are_in_task_order_despite_concurrency() {
        let results = run_indexed(50, 8, |i| {
            if i % 7 == 0 {
                std::thread::sleep(Duration::from_micros(200));
            }
            i
        });
        for (i, (v, _)) in results.iter().enumerate() {
            assert_eq!(*v, i);
        }
    }

    #[test]
    fn durations_are_measured() {
        let results = run_indexed(2, 2, |_| {
            std::thread::sleep(Duration::from_millis(5));
        });
        for (_, d) in results {
            assert!(d >= Duration::from_millis(4), "duration {d:?} too small");
        }
    }

    #[test]
    fn zero_tasks_is_fine() {
        let results: Vec<((), Duration)> = run_indexed(0, 4, |_| ());
        assert!(results.is_empty());
    }

    #[test]
    fn more_threads_than_tasks_is_fine() {
        let results = run_indexed(2, 16, |i| i + 1);
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn single_thread_runs_sequentially() {
        let seen = Mutex::new(HashSet::new());
        run_indexed(10, 1, |i| {
            seen.lock().insert(i);
        });
        assert_eq!(seen.into_inner().len(), 10);
    }

    #[test]
    fn task_panic_propagates() {
        let outcome = std::panic::catch_unwind(|| {
            run_indexed(4, 2, |i| {
                if i == 2 {
                    panic!("boom in task");
                }
                i
            })
        });
        assert!(outcome.is_err());
    }
}
