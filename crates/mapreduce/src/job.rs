//! The job driver: map phase → shuffle → reduce phase, with Hadoop-style
//! fault tolerance (bounded retries, backoff, speculative execution).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use skymr_common::{decode_pairs, encode_pairs, Counters};

use crate::cluster::{makespan, ClusterConfig, JobMetrics, Placement};
use crate::combiner::{Combiner, NoCombiner};
use crate::fault::{
    run_attempts, BlacklistPolicy, CorruptFetch, FailureCause, FaultPlan, FaultTolerance, Inject,
    JobError, RetryPolicy, SpeculationPolicy, TaskExecution, TaskFault, TaskKind,
};
use crate::partitioner::Partitioner;
use crate::pool::run_indexed;
use crate::splits::{SliceSplits, SplitSource};
use crate::storage::{
    merge::{cascade_stats, external_merge, KWayMerge, MergeStats, RunSource},
    segment::{flip_bit, verify_frames, write_segment, Segment},
    SpillSession,
};
use crate::task::{
    Emitter, MapFactory, MapTask, OutputCollector, ReduceFactory, ReduceTask, TaskContext,
};
use crate::trace::{CorruptEvent, FailKind, JobRecord, NodeLossEvent, TaskModel};
use skymr_telemetry::{Collector, MetricsRegistry};

/// Per-job configuration.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Job name, used in metrics and reports.
    pub name: String,
    /// Number of reduce tasks.
    pub num_reducers: usize,
    /// Bytes of read-only data broadcast to every node before the job
    /// starts (the Hadoop Distributed Cache; the paper ships the global
    /// bitstring this way). Charged to the simulated clock.
    pub cache_bytes: u64,
    /// Fault-injection plan (empty by default).
    pub faults: FaultPlan,
    /// Retry budget and backoff for failed task attempts.
    pub retry: RetryPolicy,
    /// Speculative execution of straggling tasks (off by default).
    pub speculation: Option<SpeculationPolicy>,
    /// Node blacklisting (off by default; needs a cluster [`Placement`]).
    pub blacklist: Option<BlacklistPolicy>,
    /// Telemetry collector the job commits its trace to (off by default).
    /// The metrics registry is built either way; the collector only adds
    /// the span timeline.
    pub collector: Option<Collector>,
}

impl JobConfig {
    /// A job with the given name and reducer count, no cache, no faults,
    /// and the default retry budget.
    pub fn new(name: impl Into<String>, num_reducers: usize) -> Self {
        Self {
            name: name.into(),
            num_reducers,
            cache_bytes: 0,
            faults: FaultPlan::none(),
            retry: RetryPolicy::new(),
            speculation: None,
            blacklist: None,
            collector: None,
        }
    }

    /// Sets the distributed-cache byte charge.
    pub fn with_cache_bytes(mut self, bytes: u64) -> Self {
        self.cache_bytes = bytes;
        self
    }

    /// Sets the fault-injection plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Enables speculative execution.
    pub fn with_speculation(mut self, speculation: SpeculationPolicy) -> Self {
        self.speculation = Some(speculation);
        self
    }

    /// Enables node blacklisting.
    pub fn with_blacklist(mut self, blacklist: BlacklistPolicy) -> Self {
        self.blacklist = Some(blacklist);
        self
    }

    /// Applies a bundled [`FaultTolerance`] configuration (plan, retry
    /// policy, speculation, and blacklisting in one go — what the
    /// algorithm configs carry).
    pub fn with_fault_tolerance(mut self, ft: &FaultTolerance) -> Self {
        self.faults = ft.plan.clone();
        self.retry = ft.retry.clone();
        self.speculation = ft.speculation.clone();
        self.blacklist = ft.blacklist;
        self
    }

    /// Attaches a telemetry collector: the job commits its span timeline
    /// there on success. `None` leaves tracing off (the default).
    pub fn with_collector(mut self, collector: Option<Collector>) -> Self {
        self.collector = collector;
        self
    }
}

/// Result of a job: per-reducer outputs plus metrics and counters.
#[derive(Debug)]
pub struct JobOutcome<Out> {
    /// Output records, indexed by reducer.
    pub outputs: Vec<Vec<Out>>,
    /// Simulated and measured execution metrics.
    pub metrics: JobMetrics,
    /// Job counters populated by tasks.
    pub counters: Counters,
    /// The job's metrics registry — the structured source the countable
    /// [`JobMetrics`] fields are derived from.
    pub registry: MetricsRegistry,
}

impl<Out> JobOutcome<Out> {
    /// Flattens per-reducer outputs into one vector (reducer order).
    pub fn into_flat_output(self) -> Vec<Out> {
        self.outputs.into_iter().flatten().collect()
    }
}

/// Where one map task's partitioned output lives: in memory (the default
/// engine) or on disk as spill segments (the out-of-core storage plane,
/// engaged when [`crate::StorageConfig::memory_budget`] is set).
enum MapBuckets<K, V> {
    Memory(Vec<Vec<(K, V)>>),
    Spilled(Vec<Segment>),
}

struct MapResult<K, V> {
    buckets: MapBuckets<K, V>,
    /// Wire-size accounting per reducer ([`skymr_common::ByteSized`]) —
    /// identical between the memory and spilled representations, so the
    /// shuffle traffic model never notices spilling.
    bucket_bytes: Vec<u64>,
    records: u64,
}

/// A reducer's input group, handed off to its reduce task's attempts.
type GroupSlot<K, V> = parking_lot::Mutex<Option<BTreeMap<K, Vec<V>>>>;

/// One combined, partitioned batch of map output: per-reducer buckets,
/// their wire-byte sizes, and the post-combiner record count.
type RoutedBatch<K, V> = (Vec<Vec<(K, V)>>, Vec<u64>, u64);

/// Per-phase fault-tolerance accounting, folded from each task's
/// [`TaskExecution`].
struct PhaseStats {
    /// Modeled per-task durations as placed on slots: winner compute plus
    /// lost attempts, scaled by the task's straggler slowdown, plus
    /// backoff and the extra per-attempt launch overheads.
    effective: Vec<Duration>,
    retries: u64,
    attempts: u64,
    wasted: Duration,
    backoff: Duration,
    speculative_wins: u64,
}

fn phase_stats<T>(execs: &[(TaskExecution<T>, TaskFault)], overhead: Duration) -> PhaseStats {
    let mut stats = PhaseStats {
        effective: Vec::with_capacity(execs.len()),
        retries: 0,
        attempts: 0,
        wasted: Duration::ZERO,
        backoff: Duration::ZERO,
        speculative_wins: 0,
    };
    for (exec, fault) in execs {
        let slowdown = fault.slowdown.max(1.0);
        let busy = (exec.winner_duration + exec.lost_time).mul_f64(slowdown);
        let extra_launches = overhead * exec.attempts.saturating_sub(1);
        stats.effective.push(busy + exec.backoff + extra_launches);
        stats.retries += u64::from(exec.retries());
        stats.attempts += u64::from(exec.attempts);
        stats.wasted += exec.lost_time.mul_f64(slowdown);
        stats.backoff += exec.backoff;
    }
    stats
}

/// Slots still schedulable once `excluded` nodes (dead or blacklisted) are
/// gone: each slot lives on node `slot % nodes`
/// ([`Placement::node_of_slot`]). At least one slot always survives so the
/// job can limp home rather than deadlock.
fn surviving_slots(total: usize, nodes: usize, excluded: &BTreeSet<usize>) -> usize {
    let n = nodes.max(1);
    (0..total)
        .filter(|&s| !excluded.contains(&Placement::node_of_slot(s, n)))
        .count()
        .max(1)
}

/// Nodes whose strike count has reached the blacklist budget.
fn over_budget(strikes: &BTreeMap<usize, u32>, policy: &BlacklistPolicy) -> BTreeSet<usize> {
    strikes
        .iter()
        .filter(|&(_, &count)| count >= policy.max_failures.max(1))
        .map(|(&node, _)| node)
        .collect()
}

fn median(durations: &[Duration]) -> Duration {
    let mut sorted = durations.to_vec();
    sorted.sort_unstable();
    let mid = sorted.len() / 2;
    sorted.get(mid).copied().unwrap_or(Duration::ZERO)
}

/// Runs speculative backup attempts for one phase.
///
/// Any task whose modeled duration exceeds `policy.slowdown_threshold` ×
/// the phase median gets a backup attempt, really re-executed at full
/// speed (`rerun`). The winner rule is deterministic in simulated time: a
/// backup launched at the median mark wins iff it commits before the
/// straggling original; ties go to the original. Either loser's slot time
/// is charged to `wasted`.
fn speculate_phase<T: Send>(
    execs: &mut [(TaskExecution<T>, TaskFault)],
    stats: &mut PhaseStats,
    policy: &SpeculationPolicy,
    cluster: &ClusterConfig,
    rerun: impl Fn(usize, u32) -> T + Sync,
) {
    if stats.effective.len() < policy.min_phase_tasks {
        return;
    }
    let med = median(&stats.effective);
    if med == Duration::ZERO {
        return;
    }
    let threshold = med.mul_f64(policy.slowdown_threshold.max(1.0));
    let candidates: Vec<usize> = stats
        .effective
        .iter()
        .enumerate()
        .filter(|(_, d)| **d > threshold)
        .map(|(i, _)| i)
        .collect();
    if candidates.is_empty() {
        return;
    }
    let next_attempts: Vec<u32> = candidates.iter().map(|&i| execs[i].0.attempts).collect();
    let backups = run_indexed(candidates.len(), cluster.host_threads, |c| {
        rerun(candidates[c], next_attempts[c])
    });
    for (c, (value, backup_duration)) in backups.into_iter().enumerate() {
        let i = candidates[c];
        let original = stats.effective[i];
        let backup_finish = med + backup_duration + cluster.task_overhead;
        stats.attempts += 1;
        if backup_finish < original {
            // Backup commits first; the original is killed at that moment,
            // having burnt its slot since the phase started.
            stats.speculative_wins += 1;
            stats.wasted += backup_finish;
            stats.effective[i] = backup_finish;
            execs[i].0.value = Some(value);
        } else {
            // Original commits; the backup ran from the median mark until
            // then (or to completion, whichever came first) for nothing.
            stats.wasted += (original - med).min(backup_duration + cluster.task_overhead);
        }
    }
}

/// Runs one MapReduce job (no combiner).
///
/// `splits` is the pre-split input `R_1, …, R_m` — one map task per split,
/// exactly as the paper's job flows show (Figures 3–5). The reduce phase
/// runs `config.num_reducers` tasks; keys are routed by `partitioner`,
/// sorted, and grouped.
///
/// Task attempts that fail (injected via [`JobConfig::faults`] or a
/// genuinely panicking UDF) are retried under [`JobConfig::retry`]; a task
/// that exhausts its budget aborts the job with a structured [`JobError`]
/// carrying the attempt history and partial metrics.
///
/// ```
/// use skymr_mapreduce::*;
///
/// // Word count: the canonical MapReduce example.
/// struct Wc;
/// struct WcTask;
/// impl MapTask for WcTask {
///     type In = String;
///     type K = String;
///     type V = u64;
///     fn map(&mut self, line: &String, out: &mut Emitter<String, u64>) {
///         for word in line.split_whitespace() {
///             out.emit(word.to_string(), 1);
///         }
///     }
/// }
/// impl MapFactory for Wc {
///     type Task = WcTask;
///     fn create(&self, _: &TaskContext) -> WcTask { WcTask }
/// }
/// struct Sum;
/// struct SumTask;
/// impl ReduceTask for SumTask {
///     type K = String;
///     type V = u64;
///     type Out = (String, u64);
///     fn reduce(&mut self, k: String, vs: Vec<u64>, out: &mut OutputCollector<(String, u64)>) {
///         out.collect((k, vs.iter().sum()));
///     }
/// }
/// impl ReduceFactory for Sum {
///     type Task = SumTask;
///     fn create(&self, _: &TaskContext) -> SumTask { SumTask }
/// }
///
/// # fn main() -> Result<(), JobError> {
/// let splits = vec![vec!["a b a".to_string()], vec!["b".to_string()]];
/// let outcome = run_job(
///     &ClusterConfig::test(),
///     &JobConfig::new("wc", 2),
///     &splits,
///     &Wc,
///     &Sum,
///     &HashPartitioner,
/// )?;
/// let mut counts = outcome.into_flat_output();
/// counts.sort();
/// assert_eq!(counts, vec![("a".to_string(), 2), ("b".to_string(), 2)]);
/// # Ok(())
/// # }
/// ```
pub fn run_job<In, K, V, Out, MF, RF, P>(
    cluster: &ClusterConfig,
    config: &JobConfig,
    splits: &[Vec<In>],
    map_factory: &MF,
    reduce_factory: &RF,
    partitioner: &P,
) -> Result<JobOutcome<Out>, JobError>
where
    In: Send + Sync,
    K: crate::task::JobKey,
    V: crate::task::JobValue + Clone,
    Out: Send,
    MF: MapFactory,
    MF::Task: MapTask<In = In, K = K, V = V>,
    RF: ReduceFactory,
    RF::Task: ReduceTask<K = K, V = V, Out = Out>,
    P: Partitioner<K>,
{
    run_job_with_combiner(
        cluster,
        config,
        splits,
        map_factory,
        reduce_factory,
        partitioner,
        &NoCombiner,
    )
}

/// Runs one MapReduce job with a map-side [`Combiner`] applied to each map
/// task's output before the shuffle.
pub fn run_job_with_combiner<In, K, V, Out, MF, RF, P, C>(
    cluster: &ClusterConfig,
    config: &JobConfig,
    splits: &[Vec<In>],
    map_factory: &MF,
    reduce_factory: &RF,
    partitioner: &P,
    combiner: &C,
) -> Result<JobOutcome<Out>, JobError>
where
    In: Send + Sync,
    K: crate::task::JobKey,
    V: crate::task::JobValue + Clone,
    Out: Send,
    MF: MapFactory,
    MF::Task: MapTask<In = In, K = K, V = V>,
    RF: ReduceFactory,
    RF::Task: ReduceTask<K = K, V = V, Out = Out>,
    P: Partitioner<K>,
    C: Combiner<K, V>,
{
    run_job_with_combiner_from(
        cluster,
        config,
        &SliceSplits::new(splits),
        map_factory,
        reduce_factory,
        partitioner,
        combiner,
    )
}

/// [`run_job`], but fed from a [`SplitSource`] instead of materialized
/// `Vec` splits: each map attempt materializes only its own split, for
/// only as long as it runs. This is how queued jobs under the
/// [`sched`](crate::sched) executor avoid pinning their whole input in
/// RAM while they wait, and how datasets larger than memory stream in
/// from a seeded [`FnSplits`](crate::splits::FnSplits) recipe.
pub fn run_job_from<In, K, V, Out, S, MF, RF, P>(
    cluster: &ClusterConfig,
    config: &JobConfig,
    source: &S,
    map_factory: &MF,
    reduce_factory: &RF,
    partitioner: &P,
) -> Result<JobOutcome<Out>, JobError>
where
    In: Send + Sync,
    K: crate::task::JobKey,
    V: crate::task::JobValue + Clone,
    Out: Send,
    S: SplitSource<In>,
    MF: MapFactory,
    MF::Task: MapTask<In = In, K = K, V = V>,
    RF: ReduceFactory,
    RF::Task: ReduceTask<K = K, V = V, Out = Out>,
    P: Partitioner<K>,
{
    run_job_with_combiner_from(
        cluster,
        config,
        source,
        map_factory,
        reduce_factory,
        partitioner,
        &NoCombiner,
    )
}

/// The fully general driver: [`SplitSource`] input plus a map-side
/// [`Combiner`]. Everything else delegates here.
pub fn run_job_with_combiner_from<In, K, V, Out, S, MF, RF, P, C>(
    cluster: &ClusterConfig,
    config: &JobConfig,
    source: &S,
    map_factory: &MF,
    reduce_factory: &RF,
    partitioner: &P,
    combiner: &C,
) -> Result<JobOutcome<Out>, JobError>
where
    In: Send + Sync,
    K: crate::task::JobKey,
    V: crate::task::JobValue + Clone,
    Out: Send,
    S: SplitSource<In>,
    MF: MapFactory,
    MF::Task: MapTask<In = In, K = K, V = V>,
    RF: ReduceFactory,
    RF::Task: ReduceTask<K = K, V = V, Out = Out>,
    P: Partitioner<K>,
    C: Combiner<K, V>,
{
    assert!(config.num_reducers > 0, "a job needs at least one reducer");
    let started = Instant::now(); // xtask: allow(clock-discipline) — feeds only metrics.host_wall (advisory); sim_runtime is derived from the cluster cost model
    let counters = Counters::new();
    let m = source.num_splits();
    // Split lengths are model facts (skip-bad-records bounds, per-task
    // records_in); sources report them without materializing any records.
    let split_lens: Vec<usize> = (0..m).map(|i| source.split_len(i)).collect();
    let r = config.num_reducers;
    let plan = &config.faults;

    // The cache broadcast happens before any task launches; failed
    // transfers are re-sent in full, multiplying the charge.
    let broadcast_attempts = plan.broadcast_failures_for(&config.name) + 1;
    let broadcast_time = cluster.broadcast_time(config.cache_bytes) * broadcast_attempts;

    // ---- Storage plane ----------------------------------------------------
    // With a memory budget set, map output spills to sorted on-disk
    // segments and reducers stream their input through an external merge;
    // the session owns the job's spill directory and removes it on every
    // exit path. Failing to create it is an environment fault the job
    // cannot work around.
    let spill_session: Option<SpillSession> = if cluster.storage.enabled() {
        Some(
            SpillSession::create(&cluster.storage, &config.name)
                .expect("storage plane: cannot create spill directory"), // xtask: allow(no-unwrap) — an unusable spill root is an environment fault with no in-job recovery
        )
    } else {
        None
    };
    let spill_budget = cluster.storage.memory_budget;

    // ---- Map phase -------------------------------------------------------
    // Scripted poison records: the UDF deterministically dies on these on
    // every attempt, so only the skip-bad-records protocol below can get
    // the task past them.
    let map_poison: Vec<Vec<usize>> = (0..m)
        .map(|i| plan.poison_records_for(&config.name, i))
        .collect();
    // Groups one batch of emitted pairs per key, applies the combiner,
    // and partitions the result — the shared kernel of the in-memory path
    // and of each spill (spilling combines per spill batch, exactly as
    // Hadoop runs the combiner on each spill).
    let route_batch = |pairs: Vec<(K, V)>| -> RoutedBatch<K, V> {
        let mut grouped: BTreeMap<K, Vec<V>> = BTreeMap::new();
        for (k, v) in pairs {
            grouped.entry(k).or_default().push(v);
        }
        let mut buckets: Vec<Vec<(K, V)>> = (0..r).map(|_| Vec::new()).collect();
        let mut bucket_bytes = vec![0u64; r];
        let mut records = 0u64;
        for (k, vs) in grouped {
            let combined = combiner.combine(&k, vs);
            let dest = partitioner.partition(&k, r);
            assert!(dest < r, "partitioner returned reducer {dest} of {r}");
            for v in combined {
                records += 1;
                bucket_bytes[dest] += k.byte_size() + v.byte_size();
                buckets[dest].push((k.clone(), v));
            }
        }
        (buckets, bucket_bytes, records)
    };
    let run_map_attempt = |i: usize,
                           attempt: u32,
                           inject: Inject,
                           skips: &BTreeSet<usize>,
                           progress: &AtomicUsize|
     -> MapResult<K, V> {
        let ctx = TaskContext {
            task_index: i,
            num_tasks: m,
            num_reducers: r,
            attempt,
            counters: counters.clone(),
        };
        let mut task = map_factory.create(&ctx);
        let mut emitter = Emitter::new();
        // Materialized for this attempt only; dropped when it returns.
        let split = source.load(i);
        let split: &[In] = &split;
        // Out-of-core state for this attempt. The spill trigger compares
        // the emitter's wire-size accounting against the budget — a pure
        // function of the emitted data, so spill points are identical on
        // every host and every replay of this attempt.
        let mut spilled: Vec<Segment> = Vec::new();
        let mut bucket_bytes = vec![0u64; r];
        let mut records = 0u64;
        let spill_now = |emitter: &mut Emitter<K, V>,
                         spilled: &mut Vec<Segment>,
                         bucket_bytes: &mut Vec<u64>,
                         records: &mut u64| {
            let session = spill_session.as_ref().expect("spilling without a session"); // xtask: allow(no-unwrap) — spill_now only runs under a budget, which creates the session
            let (pairs, _) = emitter.drain();
            let (buckets, batch_bytes, batch_records) = route_batch(pairs);
            let segment = write_segment(
                session.segment_path(i, attempt),
                &buckets,
                cluster.storage.io_chunk,
            )
            .expect("storage plane: spill write failed"); // xtask: allow(no-unwrap) — the panic unwinds this attempt into the retry ladder, the storage plane's recovery path
            for (dest, b) in batch_bytes.into_iter().enumerate() {
                bucket_bytes[dest] += b;
            }
            *records += batch_records;
            spilled.push(segment);
        };
        // An injected mid-task crash fires halfway through the split — the
        // attempt genuinely unwinds with part of its work done.
        let crash_at = match inject {
            Inject::MidTaskPanic => Some(split.len() / 2),
            Inject::None => None,
        };
        if crash_at.is_some() && split.is_empty() {
            crate::pool::raise_injected_panic(format!(
                "[fault-injection] map task {i} attempt {attempt} crashed mid-task"
            ));
        }
        for (n, record) in split.iter().enumerate() {
            // The tracker's per-attempt progress report: if this attempt
            // dies, record `n` is the suspect the skip protocol narrows to.
            progress.store(n, Ordering::Relaxed);
            if crash_at == Some(n) {
                crate::pool::raise_injected_panic(format!(
                    "[fault-injection] map task {i} attempt {attempt} crashed mid-task"
                ));
            }
            if skips.contains(&n) {
                continue;
            }
            if map_poison[i].binary_search(&n).is_ok() {
                crate::pool::raise_injected_panic(format!(
                    "[fault-injection] map task {i} attempt {attempt} poisoned at record {n}"
                ));
            }
            task.map(record, &mut emitter);
            if let Some(budget) = spill_budget {
                if emitter.buffered_bytes() >= budget {
                    spill_now(&mut emitter, &mut spilled, &mut bucket_bytes, &mut records);
                }
            }
        }
        task.finish(&mut emitter);
        if spill_budget.is_some() {
            // The tail batch always goes to disk too — with a budget set,
            // map RAM never holds the task's full output.
            if !emitter.is_empty() {
                spill_now(&mut emitter, &mut spilled, &mut bucket_bytes, &mut records);
            }
            return MapResult {
                buckets: MapBuckets::Spilled(spilled),
                bucket_bytes,
                records,
            };
        }
        let (pairs, _) = emitter.into_parts();
        // Group this task's output per key and apply the combiner (the
        // identity combiner leaves values untouched); the key-sorted order
        // keeps the downstream pipeline deterministic.
        let (buckets, bucket_bytes, records) = route_batch(pairs);
        MapResult {
            buckets: MapBuckets::Memory(buckets),
            bucket_bytes,
            records,
        }
    };

    let map_runs = run_indexed(m, cluster.host_threads, |i| {
        let fault = plan.task_fault(&config.name, TaskKind::Map, i);
        let mut skips: BTreeSet<usize> = BTreeSet::new();
        let progress = AtomicUsize::new(usize::MAX);
        // Map inputs are immutable splits, so every attempt can replay.
        progress.store(usize::MAX, Ordering::Relaxed);
        let mut exec = run_attempts(
            &fault,
            &config.retry,
            None,
            cluster.progress_timeout,
            |attempt, inject| run_map_attempt(i, attempt, inject, &skips, &progress),
        );
        // Hadoop's skip-bad-records protocol: when the budget exhausts
        // with a panic, the tracker's last progress report names the
        // suspect record; it enters the skip set and the task re-runs
        // without it. Scripted attempt failures were consumed by the
        // first round, so later rounds face only the data. Each round
        // retires one record, bounding the loop by the split length.
        let mut round_fault = fault;
        round_fault.failures = 0;
        for _round in 0..split_lens[i] {
            if exec.succeeded() || !cluster.skip_bad_records {
                break;
            }
            // Only a panicking attempt names a record; lost outputs and
            // hangs are the node's fault, not the data's.
            let panicked = matches!(
                exec.failures.last().map(|f| &f.cause),
                Some(FailureCause::Panic { .. })
            );
            let suspect = progress.load(Ordering::Relaxed);
            if !panicked || suspect >= split_lens[i] || !skips.insert(suspect) {
                break;
            }
            progress.store(usize::MAX, Ordering::Relaxed);
            let next = run_attempts(
                &round_fault,
                &config.retry,
                None,
                cluster.progress_timeout,
                |attempt, inject| run_map_attempt(i, attempt, inject, &skips, &progress),
            );
            exec.attempts += next.attempts;
            exec.failures.extend(next.failures);
            exec.lost_time += next.lost_time;
            exec.backoff += next.backoff;
            exec.winner_duration = next.winner_duration;
            exec.value = next.value;
            if next.payload.is_some() {
                exec.payload = next.payload;
            }
        }
        ((exec, fault), skips)
    });
    let mut map_execs: Vec<(TaskExecution<MapResult<K, V>>, TaskFault)> = Vec::with_capacity(m);
    let mut map_skips: Vec<BTreeSet<usize>> = Vec::with_capacity(m);
    for ((pair, skips), _) in map_runs {
        map_execs.push(pair);
        map_skips.push(skips);
    }
    // Records retired by the skip protocol, as (task, record) pairs —
    // the job completes without them and reports itself degraded.
    let skipped: Vec<(usize, usize)> = map_skips
        .iter()
        .enumerate()
        .flat_map(|(i, s)| s.iter().map(move |&n| (i, n)))
        .collect();

    let mut map_stats = phase_stats(&map_execs, cluster.task_overhead);

    if let Some(index) = map_execs.iter().position(|(e, _)| !e.succeeded()) {
        let (exec, _) = map_execs.swap_remove(index);
        let mut metrics = JobMetrics::empty(&config.name, m, r);
        metrics.map_phase = makespan(
            &map_stats.effective,
            cluster.map_slots,
            cluster.task_overhead,
        );
        metrics.cache_bytes = config.cache_bytes;
        metrics.broadcast_time = broadcast_time;
        metrics.startup_time = cluster.job_startup;
        metrics.map_retries = map_stats.retries;
        metrics.attempts = map_stats.attempts;
        metrics.wasted_task_time = map_stats.wasted;
        metrics.backoff_time = map_stats.backoff;
        metrics.map_task_durations = map_stats.effective;
        metrics.records_skipped = skipped.len() as u64;
        metrics.degraded = !skipped.is_empty();
        metrics.sim_runtime = cluster.job_startup + broadcast_time + metrics.map_phase;
        metrics.host_wall = started.elapsed();
        return Err(JobError {
            job: config.name.clone(),
            task: TaskKind::Map,
            index,
            attempts: exec.attempts,
            history: exec.failures,
            counters,
            metrics: Box::new(metrics),
            payload: exec.payload,
        });
    }

    if let Some(spec) = &config.speculation {
        speculate_phase(
            &mut map_execs,
            &mut map_stats,
            spec,
            cluster,
            |i, attempt| {
                let progress = AtomicUsize::new(usize::MAX);
                run_map_attempt(i, attempt, Inject::None, &map_skips[i], &progress)
            },
        );
    }

    let mut map_outputs: Vec<MapResult<K, V>> = Vec::with_capacity(m);
    for (exec, _) in &mut map_execs {
        match exec.value.take() {
            Some(result) => map_outputs.push(result),
            None => unreachable!("map failures were handled above"),
        }
    }

    // Lost shuffle partitions: the affected map tasks re-execute (their
    // inputs are replayable) in a second wave, and the regenerated buckets
    // replace the lost ones — byte-identical because UDFs are pure.
    let lost = plan.lost_partitions_for(&config.name, m, r);
    let mut recovery_wave: Vec<Duration> = Vec::new();
    let mut recovery_tasks: Vec<usize> = Vec::new();
    if !lost.is_empty() {
        let affected: Vec<usize> = lost
            .iter()
            .map(|&(i, _)| i)
            .collect::<BTreeSet<usize>>()
            .into_iter()
            .collect();
        let next_attempts: Vec<u32> = affected.iter().map(|&i| map_execs[i].0.attempts).collect();
        let reruns = run_indexed(affected.len(), cluster.host_threads, |c| {
            let i = affected[c];
            let progress = AtomicUsize::new(usize::MAX);
            run_map_attempt(i, next_attempts[c], Inject::None, &map_skips[i], &progress)
        });
        let mut regenerated: BTreeMap<usize, MapResult<K, V>> = BTreeMap::new();
        for (c, (result, duration)) in reruns.into_iter().enumerate() {
            recovery_wave.push(duration);
            regenerated.insert(affected[c], result);
        }
        if spill_session.is_some() {
            // Spilled outputs are whole segment files; the regenerated
            // output replaces the lost task's segments wholesale —
            // equivalent to patching one bucket because pure UDFs
            // regenerate byte-identical output.
            for (i, regen) in regenerated {
                if let Some(original) = map_outputs.get_mut(i) {
                    *original = regen;
                }
            }
        } else {
            for &(i, j) in &lost {
                if let (
                    Some(MapResult {
                        buckets: MapBuckets::Memory(regen_buckets),
                        bucket_bytes: regen_bytes,
                        ..
                    }),
                    Some(MapResult {
                        buckets: MapBuckets::Memory(buckets),
                        bucket_bytes,
                        ..
                    }),
                ) = (regenerated.get_mut(&i), map_outputs.get_mut(i))
                {
                    buckets[j] = std::mem::take(&mut regen_buckets[j]);
                    bucket_bytes[j] = regen_bytes[j];
                }
            }
        }
        map_stats.retries += affected.len() as u64;
        map_stats.attempts += affected.len() as u64;
        recovery_tasks = affected;
    }

    let map_output_records: u64 = map_outputs.iter().map(|res| res.records).sum();
    // Per-task I/O facts for the trace model, captured before the shuffle
    // consumes the map outputs: (records_out, shuffle bytes emitted).
    let map_io: Vec<(u64, u64)> = map_outputs
        .iter()
        .map(|res| (res.records, res.bucket_bytes.iter().sum::<u64>()))
        .collect();
    // Spill accounting: on-disk bytes per spill file backing the final
    // shuffle (failed and superseded attempts' files are dropped unread).
    // Each task's spill traffic is charged to its modeled duration through
    // the disk cost model *before* the phase makespan and the node-loss
    // timeline consume those durations, so spilling slows the simulated
    // job exactly where Hadoop pays for it.
    let map_spills: Vec<Vec<u64>> = map_outputs
        .iter()
        .map(|res| match &res.buckets {
            MapBuckets::Spilled(segments) => segments.iter().map(Segment::disk_bytes).collect(),
            MapBuckets::Memory(_) => Vec::new(),
        })
        .collect();
    for (i, spills) in map_spills.iter().enumerate() {
        if !spills.is_empty() {
            let bytes: u64 = spills.iter().sum();
            map_stats.effective[i] += cluster.storage.io_time(bytes, spills.len() as u64);
        }
    }
    let map_models: Vec<TaskModel> = split_lens
        .iter()
        .zip(map_execs.iter().zip(map_io.iter().zip(&map_spills)))
        .map(
            |(&split_len, ((exec, fault), (&(records_out, bytes), spills)))| TaskModel {
                records_in: split_len as u64,
                keys_in: 0,
                records_out,
                bytes,
                failures: exec
                    .failures
                    .iter()
                    .map(|f| FailKind::from_cause(&f.cause))
                    .collect(),
                slowdown: fault.slowdown,
                spills: spills.clone(),
                merge: None,
            },
        )
        .collect();

    // ---- Node failure domains --------------------------------------------
    // With a placement, every map task's materialized output has a home
    // node — a pure hash of (seed, job, kind, index), never the measured
    // LPT schedule. Node losses are resolved on the deterministic
    // model-tick timeline: completed map outputs on a dead node are
    // invalidated and re-execute before the shuffle can finish, in-flight
    // attempts die and retry, and the heartbeat timeout plus the
    // re-execution wave are charged to the simulated clock (folded into
    // the map phase).
    let node_losses = match &cluster.placement {
        Some(_) => plan.node_losses_for(&config.name, cluster.nodes),
        None => Vec::new(),
    };
    let node_partitions = match &cluster.placement {
        Some(_) => plan.node_partitions_for(&config.name, cluster.nodes),
        None => Vec::new(),
    };
    let all_nodes: Vec<usize> = (0..cluster.nodes.max(1)).collect();
    let mut map_homes: Vec<usize> = match &cluster.placement {
        Some(p) => (0..m)
            .map(|i| p.task_home(&config.name, TaskKind::Map, i, &all_nodes))
            .collect(),
        None => Vec::new(),
    };
    // Map-phase blacklist pass: failed attempts are attributed to the node
    // they ran on; nodes over the strike budget leave scheduling before
    // the re-execution wave and the reduce phase launch.
    let mut strikes: BTreeMap<usize, u32> = BTreeMap::new();
    let mut blacklisted: BTreeSet<usize> = BTreeSet::new();
    if let (Some(placement), Some(policy)) = (&cluster.placement, &config.blacklist) {
        for (i, (exec, _)) in map_execs.iter().enumerate() {
            for f in &exec.failures {
                let node =
                    placement.attempt_home(&config.name, TaskKind::Map, i, f.attempt, &all_nodes);
                *strikes.entry(node).or_insert(0) += 1;
            }
        }
        blacklisted = over_budget(&strikes, policy);
    }
    let mut dead_nodes: BTreeSet<usize> = BTreeSet::new();
    let mut node_loss_events: Vec<NodeLossEvent> = Vec::new();
    let mut reexec_tasks: Vec<usize> = Vec::new();
    let mut reexecution_time = Duration::ZERO;
    let mut maps_reexecuted = 0u64;
    if let Some(placement) = &cluster.placement {
        if !node_losses.is_empty() {
            let overhead_ticks = crate::trace::ticks_of(cluster.task_overhead);
            let map_ticks: Vec<u64> = map_models
                .iter()
                .map(|t| t.total_ticks(&config.retry, overhead_ticks))
                .collect();
            let (map_places, map_model_end) =
                skymr_telemetry::place::place(&map_ticks, cluster.map_slots, overhead_ticks);
            let heartbeat = crate::trace::ticks_of(cluster.heartbeat_timeout);
            let mut affected: BTreeSet<usize> = BTreeSet::new();
            for loss in &node_losses {
                dead_nodes.insert(loss.node);
                // Losses past the end of the map phase land at the shuffle
                // barrier — the moment the missing outputs are discovered.
                let at = loss.at_tick.min(map_model_end);
                node_loss_events.push(NodeLossEvent {
                    node: loss.node,
                    at_tick: at,
                    detect_tick: at.saturating_add(heartbeat),
                });
                // Detection is charged once per loss, unconditionally: the
                // tracker waits out the heartbeat timeout before declaring
                // the node dead and rescheduling its work.
                reexecution_time += cluster.heartbeat_timeout;
                for (i, p) in map_places.iter().enumerate() {
                    if map_homes[i] != loss.node {
                        continue;
                    }
                    if p.end <= at {
                        // Completed: the materialized output is gone.
                        maps_reexecuted += 1;
                        affected.insert(i);
                    } else if p.start < at {
                        // In-flight: the attempt dies with the node.
                        map_stats.retries += 1;
                        map_stats.wasted += Duration::from_micros(at - p.start);
                        affected.insert(i);
                    }
                    // Pending tasks simply launch on a surviving node.
                }
            }
            let survivors: Vec<usize> = all_nodes
                .iter()
                .copied()
                .filter(|n| !dead_nodes.contains(n))
                .collect();
            reexec_tasks = affected.into_iter().collect();
            // Replacement outputs materialize on surviving nodes.
            for &i in &reexec_tasks {
                map_homes[i] = placement.task_home(&config.name, TaskKind::Map, i, &survivors);
            }
            let next_attempts: Vec<u32> = reexec_tasks
                .iter()
                .map(|&i| map_execs[i].0.attempts)
                .collect();
            let reruns = run_indexed(reexec_tasks.len(), cluster.host_threads, |c| {
                let i = reexec_tasks[c];
                let progress = AtomicUsize::new(usize::MAX);
                run_map_attempt(i, next_attempts[c], Inject::None, &map_skips[i], &progress)
            });
            let mut reexec_wave: Vec<Duration> = Vec::with_capacity(reexec_tasks.len());
            for (c, (result, duration)) in reruns.into_iter().enumerate() {
                reexec_wave.push(duration);
                map_outputs[reexec_tasks[c]] = result;
            }
            map_stats.attempts += reexec_tasks.len() as u64;
            let mut excluded = dead_nodes.clone();
            excluded.extend(blacklisted.iter().copied());
            let slots = surviving_slots(cluster.map_slots, cluster.nodes, &excluded);
            reexecution_time += makespan(&reexec_wave, slots, cluster.task_overhead);
        }
    }
    let nodes_lost = node_losses.len() as u64;

    let map_phase = makespan(
        &map_stats.effective,
        cluster.map_slots,
        cluster.task_overhead,
    ) + makespan(&recovery_wave, cluster.map_slots, cluster.task_overhead)
        + reexecution_time;

    // Dead and blacklisted nodes take their slots with them for the rest
    // of the job: the reduce phase runs on what survives.
    let mut excluded_nodes = dead_nodes.clone();
    excluded_nodes.extend(blacklisted.iter().copied());
    let reduce_slots_alive = surviving_slots(cluster.reduce_slots, cluster.nodes, &excluded_nodes);

    // ---- Shuffle ---------------------------------------------------------
    // With a placement, reducers get homes too (over surviving nodes), and
    // only buckets whose producing map task is homed elsewhere cross the
    // network; without one, the closed-form remote fraction applies.
    let survivors: Vec<usize> = all_nodes
        .iter()
        .copied()
        .filter(|n| !dead_nodes.contains(n))
        .collect();
    let reducer_homes: Option<Vec<usize>> = cluster.placement.as_ref().map(|p| {
        (0..r)
            .map(|j| p.task_home(&config.name, TaskKind::Reduce, j, &survivors))
            .collect()
    });
    let mut remote_per_node = vec![0u64; cluster.nodes.max(1)];
    let mut per_reducer_bytes = vec![0u64; r];
    let mut groups: Vec<BTreeMap<K, Vec<V>>> = (0..r).map(|_| BTreeMap::new()).collect();
    // Spill mode: each reducer's input is a priority-ordered list of runs
    // (map index, then spill sequence) merged lazily in the reduce phase;
    // nothing is materialized here.
    let mut reducer_runs: Vec<Vec<(Segment, usize)>> = (0..r).map(|_| Vec::new()).collect();

    // ---- Data-plane integrity --------------------------------------------
    // Partition fetches whose frames arrive corrupted, keyed by
    // (map, reducer). One bad fetch is transient: the reducer re-fetches
    // and the second copy verifies. Two bad fetches mean the materialized
    // map output itself is rotten: the producer re-executes (pure UDFs
    // regenerate byte-identical output) before the merge below consumes
    // it, and the wave is charged to the shuffle clock where the
    // corruption was discovered.
    let corrupt_plan: BTreeMap<(usize, usize), CorruptFetch> = plan
        .corrupt_fetches_for(&config.name, m, r)
        .into_iter()
        .map(|c| ((c.map, c.reducer), c))
        .collect();
    let corrupt_reexec: Vec<usize> = corrupt_plan
        .values()
        .filter(|c| c.fetches >= 2)
        .map(|c| c.map)
        .collect::<BTreeSet<usize>>()
        .into_iter()
        .collect();
    let mut corrupt_reexec_time = Duration::ZERO;
    if !corrupt_reexec.is_empty() {
        let next_attempts: Vec<u32> = corrupt_reexec
            .iter()
            .map(|&i| map_execs[i].0.attempts)
            .collect();
        let reruns = run_indexed(corrupt_reexec.len(), cluster.host_threads, |c| {
            let i = corrupt_reexec[c];
            let progress = AtomicUsize::new(usize::MAX);
            run_map_attempt(i, next_attempts[c], Inject::None, &map_skips[i], &progress)
        });
        let mut wave: Vec<Duration> = Vec::with_capacity(corrupt_reexec.len());
        for (c, (result, duration)) in reruns.into_iter().enumerate() {
            wave.push(duration);
            map_outputs[corrupt_reexec[c]] = result;
        }
        map_stats.retries += corrupt_reexec.len() as u64;
        map_stats.attempts += corrupt_reexec.len() as u64;
        corrupt_reexec_time = makespan(&wave, cluster.map_slots, cluster.task_overhead);
    }

    // Debug builds tally the mapper-emitted pairs per key so the shuffle
    // can be checked as an exact partition of the map output below.
    let mut emitted: BTreeMap<K, u64> = BTreeMap::new();
    let mut corrupt_events: Vec<CorruptEvent> = Vec::new();
    let mut refetch_bytes = 0u64;
    for (i, result) in map_outputs.into_iter().enumerate() {
        for j in 0..r {
            per_reducer_bytes[j] += result.bucket_bytes[j];
            if let Some(homes) = &reducer_homes {
                if map_homes[i] != homes[j] {
                    remote_per_node[homes[j]] += result.bucket_bytes[j];
                }
            }
        }
        match result.buckets {
            MapBuckets::Memory(buckets) => {
                for (j, bucket) in buckets.into_iter().enumerate() {
                    // Every partition crosses the shuffle boundary as one
                    // checksummed frame; the reduce side verifies before it
                    // consumes a single record, so the codec is load-bearing.
                    let frame = encode_pairs(&bucket);
                    drop(bucket);
                    if let Some(c) = corrupt_plan.get(&(i, j)) {
                        // Deliver the corrupted copy first: flip one seeded bit
                        // and require verification to reject it, then charge the
                        // re-fetch traffic. At-rest corruption (two bad fetches)
                        // already escalated to re-executing the producer above,
                        // so the frame in hand is clean either way.
                        let failed = c.fetches.min(2);
                        let bit = c.bit_seed % (frame.len() as u64 * 8);
                        let byte = (bit / 8) as usize;
                        let mut bad = frame.clone();
                        bad[byte] ^= 1 << (bit % 8);
                        assert!(
                            decode_pairs::<K, V>(&bad).is_err(),
                            "a single-bit flip must never pass frame verification"
                        );
                        refetch_bytes += frame.len() as u64 * u64::from(failed);
                        corrupt_events.push(CorruptEvent {
                            map: i,
                            reducer: j,
                            fetches: failed,
                            reexecuted: c.fetches >= 2,
                        });
                    }
                    let Ok(pairs) = decode_pairs::<K, V>(&frame) else {
                        unreachable!("a freshly encoded frame always verifies");
                    };
                    for (k, v) in pairs {
                        if cfg!(debug_assertions) {
                            *emitted.entry(k.clone()).or_insert(0) += 1;
                        }
                        groups[j].entry(k).or_default().push(v);
                    }
                }
            }
            MapBuckets::Spilled(segments) => {
                // The shuffle-phase integrity scan: every partition's
                // frames are checksum-verified at rest before the merge
                // consumes a single record. Corruption injection flips a
                // real bit in the segment file, and verification must
                // reject it; the re-fetch is modeled by flipping the bit
                // back (XOR restores the byte) and re-verifying clean.
                // Two bad fetches already escalated to re-executing the
                // producer above, so the files in hand regenerate clean.
                debug_assert_eq!(
                    segments
                        .iter()
                        .flat_map(|s| s.parts.iter())
                        .map(|p| p.records)
                        .sum::<u64>(),
                    result.records,
                    "spill manifests must account for every map output record"
                );
                for j in 0..r {
                    if let Some(c) = corrupt_plan.get(&(i, j)) {
                        let failed = c.fetches.min(2);
                        let target = segments
                            .iter()
                            .find(|s| s.parts.get(j).is_some_and(|p| p.len > 0));
                        if let Some(seg) = target {
                            let meta = &seg.parts[j];
                            flip_bit(&seg.path, meta.offset, meta.len, c.bit_seed)
                                .expect("storage plane: corruption injection failed"); // xtask: allow(no-unwrap) — scripted-fault machinery; a failing injection must abort the experiment loudly
                            let err = verify_frames(seg, j)
                                .expect_err("a flipped bit must never pass frame verification"); // xtask: allow(no-unwrap) — asserts the CRC invariant the chaos test exists to prove
                            let restored = flip_bit(&seg.path, meta.offset, meta.len, c.bit_seed);
                            restored.expect("storage plane: corruption restore failed"); // xtask: allow(no-unwrap) — scripted-fault machinery; a failing restore must abort the experiment loudly
                            assert!(err.is_corruption(), "flip must read as corruption: {err}");
                        }
                        let part_bytes: u64 = segments
                            .iter()
                            .filter_map(|s| s.parts.get(j))
                            .map(|p| p.len)
                            .sum();
                        refetch_bytes += part_bytes * u64::from(failed);
                        corrupt_events.push(CorruptEvent {
                            map: i,
                            reducer: j,
                            fetches: failed,
                            reexecuted: c.fetches >= 2,
                        });
                    }
                    for seg in &segments {
                        if let Err(e) = verify_frames(seg, j) {
                            panic!("storage plane: spill segment failed the shuffle integrity scan after recovery: {e}");
                        }
                    }
                }
                for seg in segments {
                    for (j, runs) in reducer_runs.iter_mut().enumerate() {
                        if seg.parts.get(j).is_some_and(|p| p.records > 0) {
                            runs.push((seg.clone(), j));
                        }
                    }
                }
            }
        }
    }
    if cfg!(debug_assertions) {
        crate::analysis::assert_shuffle_invariants(&emitted, &groups);
    }
    drop(emitted);
    let shuffle_bytes: u64 = per_reducer_bytes.iter().sum();
    // Per-reducer group facts for the trace model: (distinct keys, values),
    // plus (spill mode) the closed-form merge-cascade cost the model
    // charges — a pure function of the manifests, identical for every
    // attempt of the reducer.
    let (reduce_io, merge_models): (Vec<(u64, u64)>, Vec<Option<MergeStats>>) =
        if spill_session.is_some() {
            let counted = run_indexed(r, cluster.host_threads, |j| {
                let sources: Vec<RunSource<K, V>> = reducer_runs[j]
                    .iter()
                    .map(|(segment, part)| RunSource::Disk {
                        segment: segment.clone(),
                        part: *part,
                    })
                    .collect();
                let run_bytes: Vec<u64> = reducer_runs[j]
                    .iter()
                    .map(|(segment, part)| segment.parts[*part].len)
                    .collect();
                let stats = cascade_stats(&run_bytes, cluster.storage.merge_fan_in);
                // Counting pass: distinct keys and total values, so the
                // trace model and mid-task crash injection see the same
                // figures the in-memory engine reads off its group maps.
                let mut merge =
                    KWayMerge::open(sources).expect("storage plane: cannot open runs for counting"); // xtask: allow(no-unwrap) — every segment passed the shuffle integrity scan just above
                let mut keys = 0u64;
                let mut values = 0u64;
                let mut last: Option<K> = None;
                loop {
                    let next = merge.next_pair().expect("counting merge failed"); // xtask: allow(no-unwrap) — every segment passed the integrity scan above
                    let Some((k, _v)) = next else { break };
                    values += 1;
                    if last.as_ref() != Some(&k) {
                        keys += 1;
                        last = Some(k);
                    }
                }
                ((keys, values), stats)
            });
            counted
                .into_iter()
                .map(|(((keys, values), stats), _)| ((keys, values), Some(stats)))
                .unzip()
        } else {
            let io: Vec<(u64, u64)> = groups
                .iter()
                .map(|g| {
                    let values: usize = g.values().map(Vec::len).sum();
                    (g.len() as u64, values as u64)
                })
                .collect();
            let none = vec![None; r];
            (io, none)
        };
    let reduce_input_keys: u64 = reduce_io.iter().map(|&(keys, _)| keys).sum();

    // ---- Reduce phase ----------------------------------------------------
    let group_slots: Vec<GroupSlot<K, V>> = groups
        .into_iter()
        .map(|g| parking_lot::Mutex::new(Some(g)))
        .collect();

    let run_reduce_attempt =
        |j: usize, attempt: u32, input: BTreeMap<K, Vec<V>>, inject: Inject| -> Vec<Out> {
            let ctx = TaskContext {
                task_index: j,
                num_tasks: r,
                num_reducers: r,
                attempt,
                counters: counters.clone(),
            };
            let mut task = reduce_factory.create(&ctx);
            let mut out = OutputCollector::new();
            let crash_at = match inject {
                Inject::MidTaskPanic => Some(input.len() / 2),
                Inject::None => None,
            };
            if crash_at.is_some() && input.is_empty() {
                crate::pool::raise_injected_panic(format!(
                    "[fault-injection] reduce task {j} attempt {attempt} crashed mid-task"
                ));
            }
            for (n, (k, vs)) in input.into_iter().enumerate() {
                if crash_at == Some(n) {
                    crate::pool::raise_injected_panic(format!(
                        "[fault-injection] reduce task {j} attempt {attempt} crashed mid-task"
                    ));
                }
                task.reduce(k, vs, &mut out);
            }
            task.finish(&mut out);
            out.into_records()
        };

    // Spill-mode reduce attempt: the input is never materialized — the
    // external merge streams `(key, values)` groups straight off the spill
    // segments in exactly the order the in-memory engine's group map
    // produces. Mid-task crash injection counts key groups, so crash
    // points match the in-memory engine group for group.
    let run_reduce_attempt_spilled = |j: usize, attempt: u32, inject: Inject| -> Vec<Out> {
        let session = spill_session
            .as_ref()
            .expect("spill-mode reduce without a session"); // xtask: allow(no-unwrap) — this closure is only entered when the session exists
        let ctx = TaskContext {
            task_index: j,
            num_tasks: r,
            num_reducers: r,
            attempt,
            counters: counters.clone(),
        };
        let mut task = reduce_factory.create(&ctx);
        let mut out = OutputCollector::new();
        let crash_at = match inject {
            Inject::MidTaskPanic => Some((reduce_io[j].0 / 2) as usize),
            Inject::None => None,
        };
        if crash_at.is_some() && reduce_io[j].0 == 0 {
            crate::pool::raise_injected_panic(format!(
                "[fault-injection] reduce task {j} attempt {attempt} crashed mid-task"
            ));
        }
        let sources: Vec<RunSource<K, V>> = reducer_runs[j]
            .iter()
            .map(|(segment, part)| RunSource::Disk {
                segment: segment.clone(),
                part: *part,
            })
            .collect();
        let (mut merge, _stats) = external_merge(
            session,
            j,
            sources,
            cluster.storage.merge_fan_in,
            cluster.storage.io_chunk,
        )
        .expect("storage plane: external merge failed"); // xtask: allow(no-unwrap) — the panic unwinds this attempt into the retry ladder, the storage plane's recovery path
        let mut n = 0usize;
        loop {
            let group = merge
                .next_group()
                .expect("storage plane: merge read failed"); // xtask: allow(no-unwrap) — the panic unwinds this attempt into the retry ladder
            let Some((k, vs)) = group else { break };
            if crash_at == Some(n) {
                crate::pool::raise_injected_panic(format!(
                    "[fault-injection] reduce task {j} attempt {attempt} crashed mid-task"
                ));
            }
            n += 1;
            task.reduce(k, vs, &mut out);
        }
        task.finish(&mut out);
        out.into_records()
    };

    // Reduce inputs are single-consumer: attempts expected to fail get a
    // clone, the expected winner consumes the original. With speculation
    // on, the input is retained (cloned per attempt) so backup attempts
    // can replay it. Spill mode streams from disk instead, but keeps the
    // same replay budget so the fault ladder behaves identically in both
    // modes.
    let keep_input = config.speculation.is_some();
    let mut reduce_execs: Vec<(TaskExecution<Vec<Out>>, TaskFault)> =
        run_indexed(r, cluster.host_threads, |j| {
            let fault = plan.task_fault(&config.name, TaskKind::Reduce, j);
            let scheduled = fault.failures.min(config.retry.attempt_budget());
            // An attempt whose input was consumed cannot be replayed: an
            // *unscheduled* failure of the consuming attempt (a genuine UDF
            // panic) therefore aborts immediately — unlike map tasks, whose
            // splits replay forever.
            let replay_limit = if keep_input {
                None
            } else {
                Some(scheduled + 1)
            };
            let exec = run_attempts(
                &fault,
                &config.retry,
                replay_limit,
                cluster.progress_timeout,
                |attempt, inject| {
                    if spill_session.is_some() {
                        return run_reduce_attempt_spilled(j, attempt, inject);
                    }
                    let input = {
                        let mut slot = group_slots[j].lock();
                        if keep_input || attempt < scheduled {
                            (*slot).clone().unwrap_or_default()
                        } else {
                            slot.take().unwrap_or_default()
                        }
                    };
                    run_reduce_attempt(j, attempt, input, inject)
                },
            );
            (exec, fault)
        })
        .into_iter()
        .map(|(v, _)| v)
        .collect();

    let mut reduce_stats = phase_stats(&reduce_execs, cluster.task_overhead);
    // Spill mode: the external-merge cascade's disk traffic (reads of
    // every run, intermediate-run writes, one seek per file open) is
    // charged to each reducer's modeled duration before the makespan —
    // the model pays for the merge once, with the closed-form cost every
    // attempt of the reducer incurs identically.
    for (j, model) in merge_models.iter().enumerate() {
        if let Some(s) = model {
            reduce_stats.effective[j] += cluster
                .storage
                .io_time(s.bytes_read + s.bytes_written, s.seeks);
        }
    }
    // Transient node partitions stall the shuffle barrier for their
    // duration (model ticks); folding the stall into `shuffle_time` shifts
    // everything downstream — trace, sim clock — consistently. Corrupted
    // fetches charge the same way: each failed fetch re-transfers its
    // whole frame (always remote — the local copy is the bad one), and an
    // escalated producer re-execution wave runs before the barrier lifts.
    let partition_stall =
        Duration::from_micros(node_partitions.iter().map(|p| p.for_ticks).sum::<u64>());
    let refetch_stall =
        Duration::from_secs_f64(refetch_bytes as f64 / cluster.network_bytes_per_sec);
    let shuffle_time = if reducer_homes.is_some() {
        cluster.shuffle_time_placed(&remote_per_node)
    } else {
        cluster.shuffle_time(&per_reducer_bytes)
    } + partition_stall
        + refetch_stall
        + corrupt_reexec_time;

    if let Some(index) = reduce_execs.iter().position(|(e, _)| !e.succeeded()) {
        let (exec, _) = reduce_execs.swap_remove(index);
        let mut metrics = JobMetrics::empty(&config.name, m, r);
        metrics.map_phase = map_phase;
        metrics.reduce_phase = makespan(
            &reduce_stats.effective,
            reduce_slots_alive,
            cluster.task_overhead,
        );
        metrics.nodes_lost = nodes_lost;
        metrics.maps_reexecuted = maps_reexecuted;
        metrics.reexecution_time = reexecution_time;
        metrics.shuffle_bytes = shuffle_bytes;
        metrics.per_reducer_bytes = per_reducer_bytes;
        metrics.shuffle_time = shuffle_time;
        metrics.cache_bytes = config.cache_bytes;
        metrics.broadcast_time = broadcast_time;
        metrics.startup_time = cluster.job_startup;
        metrics.map_output_records = map_output_records;
        metrics.reduce_input_keys = reduce_input_keys;
        metrics.map_retries = map_stats.retries;
        metrics.reduce_retries = reduce_stats.retries;
        metrics.attempts = map_stats.attempts + reduce_stats.attempts;
        metrics.wasted_task_time = map_stats.wasted + reduce_stats.wasted;
        metrics.speculative_wins = map_stats.speculative_wins;
        metrics.backoff_time = map_stats.backoff + reduce_stats.backoff;
        metrics.map_task_durations = map_stats.effective;
        metrics.reduce_task_durations = reduce_stats.effective;
        metrics.corrupt_fetches = corrupt_events.iter().map(|c| u64::from(c.fetches)).sum();
        metrics.records_skipped = skipped.len() as u64;
        metrics.degraded = !skipped.is_empty();
        metrics.spill_files = map_spills.iter().map(|s| s.len() as u64).sum();
        metrics.spilled_bytes = map_spills.iter().flatten().sum();
        metrics.merge_passes = merge_models.iter().flatten().map(|s| s.passes).sum();
        metrics.sim_runtime =
            cluster.job_startup + broadcast_time + map_phase + shuffle_time + metrics.reduce_phase;
        metrics.host_wall = started.elapsed();
        return Err(JobError {
            job: config.name.clone(),
            task: TaskKind::Reduce,
            index,
            attempts: exec.attempts,
            history: exec.failures,
            counters,
            metrics: Box::new(metrics),
            payload: exec.payload,
        });
    }

    if let Some(spec) = &config.speculation {
        speculate_phase(
            &mut reduce_execs,
            &mut reduce_stats,
            spec,
            cluster,
            |j, attempt| {
                if spill_session.is_some() {
                    return run_reduce_attempt_spilled(j, attempt, Inject::None);
                }
                let input = (*group_slots[j].lock()).clone().unwrap_or_default();
                run_reduce_attempt(j, attempt, input, Inject::None)
            },
        );
    }

    let mut outputs: Vec<Vec<Out>> = Vec::with_capacity(r);
    for (exec, _) in &mut reduce_execs {
        match exec.value.take() {
            Some(records) => outputs.push(records),
            None => unreachable!("reduce failures were handled above"),
        }
    }
    // ---- Simulated clock -------------------------------------------------
    let reduce_phase = makespan(
        &reduce_stats.effective,
        reduce_slots_alive,
        cluster.task_overhead,
    );
    let sim_runtime =
        cluster.job_startup + broadcast_time + map_phase + shuffle_time + reduce_phase;

    // Reduce-phase blacklist pass: attribute reduce failures to their
    // nodes, so the final blacklist state covers the whole job.
    if let (Some(placement), Some(policy)) = (&cluster.placement, &config.blacklist) {
        for (j, (exec, _)) in reduce_execs.iter().enumerate() {
            for f in &exec.failures {
                let node = placement.attempt_home(
                    &config.name,
                    TaskKind::Reduce,
                    j,
                    f.attempt,
                    &all_nodes,
                );
                *strikes.entry(node).or_insert(0) += 1;
            }
        }
        blacklisted = over_budget(&strikes, policy);
    }
    let nodes_blacklisted = blacklisted.len() as u64;

    // ---- Telemetry -------------------------------------------------------
    // Assemble the deterministic execution record, derive the metrics
    // registry from it, and emit the span timeline if a collector is
    // attached. The registry is built either way: the countable
    // `JobMetrics` fields below are a facade over its counters.
    let reduce_models: Vec<TaskModel> = reduce_execs
        .iter()
        .zip(reduce_io.iter().zip(&merge_models))
        .zip(per_reducer_bytes.iter().zip(&outputs))
        .map(
            |(((exec, fault), (&(keys, values), merge)), (&bytes, output))| TaskModel {
                records_in: values,
                keys_in: keys,
                records_out: output.len() as u64,
                bytes,
                failures: exec
                    .failures
                    .iter()
                    .map(|f| FailKind::from_cause(&f.cause))
                    .collect(),
                slowdown: fault.slowdown,
                spills: Vec::new(),
                merge: *merge,
            },
        )
        .collect();
    let record = JobRecord {
        name: &config.name,
        cluster,
        retry: &config.retry,
        cache_bytes: config.cache_bytes,
        broadcast_attempts,
        broadcast_time,
        shuffle_time,
        per_reducer_bytes: &per_reducer_bytes,
        map: map_models,
        reduce: reduce_models,
        recovery: recovery_tasks,
        lost,
        corrupt: corrupt_events,
        skipped,
        node_losses: node_loss_events,
        reexecuted: reexec_tasks,
        maps_reexecuted,
        nodes_blacklisted,
        map_attempts: map_stats.attempts,
        map_retries: map_stats.retries,
        reduce_attempts: reduce_stats.attempts,
        reduce_retries: reduce_stats.retries,
        map_spec_wins: map_stats.speculative_wins,
        reduce_spec_wins: reduce_stats.speculative_wins,
        user_counters: counters.snapshot().into_iter().collect(),
    };
    let registry = record.build_registry();
    if let Some(collector) = &config.collector {
        record.emit(collector, registry.clone());
    }

    let metrics = JobMetrics {
        name: config.name.clone(),
        map_tasks: m,
        reduce_tasks: r,
        map_phase,
        reduce_phase,
        shuffle_bytes,
        per_reducer_bytes,
        shuffle_time,
        cache_bytes: config.cache_bytes,
        broadcast_time,
        startup_time: cluster.job_startup,
        sim_runtime,
        host_wall: started.elapsed(),
        map_output_records: registry.counter("map.records_out"),
        reduce_input_keys: registry.counter("reduce.input_keys"),
        output_records: registry.counter("reduce.records_out"),
        map_retries: registry.counter("map.retries"),
        reduce_retries: registry.counter("reduce.retries"),
        attempts: registry.counter("task.attempts"),
        wasted_task_time: map_stats.wasted + reduce_stats.wasted,
        speculative_wins: registry.counter("task.speculative_wins"),
        backoff_time: map_stats.backoff + reduce_stats.backoff,
        nodes_lost: registry.counter("node.lost"),
        maps_reexecuted: registry.counter("map.reexecuted"),
        reexecution_time,
        nodes_blacklisted: registry.counter("node.blacklisted"),
        corrupt_fetches: registry.counter("shuffle.corrupt_fetches"),
        records_skipped: registry.counter("map.records_skipped"),
        spill_files: registry.counter("storage.spill_files"),
        spilled_bytes: registry.counter("storage.spilled_bytes"),
        merge_passes: registry.counter("storage.merge_passes"),
        degraded: registry.counter("map.records_skipped") > 0,
        map_task_durations: map_stats.effective,
        reduce_task_durations: reduce_stats.effective,
        // Scheduling charges belong to the executor a job ran under, not
        // to the job itself; `sched::ClusterExecutor` fills them in.
        queue_wait_time: Duration::ZERO,
        preemptions: 0,
    };

    Ok(JobOutcome {
        outputs,
        metrics,
        counters,
        registry,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultKind;
    use crate::partitioner::{HashPartitioner, ModuloPartitioner};

    /// Word-count: the canonical MapReduce smoke test.
    struct WcMap;
    struct WcMapTask;
    impl MapTask for WcMapTask {
        type In = String;
        type K = String;
        type V = u64;
        fn map(&mut self, input: &String, out: &mut Emitter<String, u64>) {
            for word in input.split_whitespace() {
                out.emit(word.to_owned(), 1);
            }
        }
    }
    impl MapFactory for WcMap {
        type Task = WcMapTask;
        fn create(&self, _ctx: &TaskContext) -> WcMapTask {
            WcMapTask
        }
    }

    struct WcReduce;
    struct WcReduceTask;
    impl ReduceTask for WcReduceTask {
        type K = String;
        type V = u64;
        type Out = (String, u64);
        fn reduce(
            &mut self,
            key: String,
            values: Vec<u64>,
            out: &mut OutputCollector<(String, u64)>,
        ) {
            out.collect((key, values.iter().sum()));
        }
    }
    impl ReduceFactory for WcReduce {
        type Task = WcReduceTask;
        fn create(&self, _ctx: &TaskContext) -> WcReduceTask {
            WcReduceTask
        }
    }

    fn word_count_config(
        splits: &[Vec<String>],
        config: &JobConfig,
    ) -> Result<JobOutcome<(String, u64)>, JobError> {
        let cluster = ClusterConfig::test();
        run_job(
            &cluster,
            config,
            splits,
            &WcMap,
            &WcReduce,
            &HashPartitioner,
        )
    }

    fn word_count(
        splits: &[Vec<String>],
        reducers: usize,
        faults: FaultPlan,
    ) -> JobOutcome<(String, u64)> {
        let config = JobConfig::new("wc", reducers).with_faults(faults);
        word_count_config(splits, &config).expect("word count must not abort")
    }

    fn splits() -> Vec<Vec<String>> {
        vec![
            vec!["a b a".into(), "c".into()],
            vec!["b b".into()],
            vec!["a c".into()],
        ]
    }

    fn sorted_counts(outcome: JobOutcome<(String, u64)>) -> Vec<(String, u64)> {
        let mut v = outcome.into_flat_output();
        v.sort();
        v
    }

    fn expected_counts() -> Vec<(String, u64)> {
        vec![
            ("a".to_string(), 3),
            ("b".to_string(), 3),
            ("c".to_string(), 2),
        ]
    }

    #[test]
    fn word_count_single_reducer() {
        let out = word_count(&splits(), 1, FaultPlan::none());
        assert_eq!(out.metrics.map_tasks, 3);
        assert_eq!(out.metrics.reduce_tasks, 1);
        assert_eq!(out.metrics.map_output_records, 8);
        assert_eq!(out.metrics.attempts, 4, "3 map + 1 reduce attempts");
        assert_eq!(out.metrics.wasted_task_time, Duration::ZERO);
        assert_eq!(out.metrics.backoff_time, Duration::ZERO);
        assert_eq!(sorted_counts(out), expected_counts());
    }

    #[test]
    fn word_count_multiple_reducers_same_answer() {
        for r in [2, 3, 7] {
            let out = word_count(&splits(), r, FaultPlan::none());
            assert_eq!(
                sorted_counts(out),
                expected_counts(),
                "wrong counts with {r} reducers"
            );
        }
    }

    #[test]
    fn shuffle_bytes_are_positive_and_distributed() {
        let out = word_count(&splits(), 2, FaultPlan::none());
        assert!(out.metrics.shuffle_bytes > 0);
        assert_eq!(out.metrics.per_reducer_bytes.len(), 2);
        assert_eq!(
            out.metrics.per_reducer_bytes.iter().sum::<u64>(),
            out.metrics.shuffle_bytes
        );
    }

    #[test]
    fn map_failures_are_retried_without_changing_output() {
        let out = word_count(&splits(), 2, FaultPlan::fail_maps([0, 2]));
        assert_eq!(out.metrics.map_retries, 2);
        assert_eq!(out.metrics.reduce_retries, 0);
        assert_eq!(out.metrics.attempts, 7, "5 map + 2 reduce attempts");
        assert!(out.metrics.wasted_task_time > Duration::ZERO);
        assert_eq!(sorted_counts(out), expected_counts());
    }

    #[test]
    fn reduce_failures_are_retried_without_changing_output() {
        let out = word_count(&splits(), 3, FaultPlan::fail_reduces([1]));
        assert_eq!(out.metrics.reduce_retries, 1);
        assert_eq!(sorted_counts(out), expected_counts());
    }

    #[test]
    fn repeated_failures_of_one_task_are_survived() {
        let plan = FaultPlan::none().with_map_fault(1, TaskFault::lost(3));
        let out = word_count(&splits(), 2, plan);
        assert_eq!(out.metrics.map_retries, 3);
        assert_eq!(sorted_counts(out), expected_counts());
    }

    #[test]
    fn mid_task_panics_are_caught_and_retried() {
        let plan = FaultPlan::none()
            .with_map_fault(0, TaskFault::panics(2))
            .with_reduce_fault(0, TaskFault::panics(1));
        let out = word_count(&splits(), 2, plan);
        assert_eq!(out.metrics.map_retries, 2);
        assert_eq!(out.metrics.reduce_retries, 1);
        assert_eq!(sorted_counts(out), expected_counts());
    }

    /// Regression test for the pre-fault-layer accounting bug: the failed
    /// attempt's duration used to be discarded (`let _lost = ...`), so a
    /// retried job could report the same phase time as a clean one. Lost
    /// attempts and backoff are now charged to the simulated clock.
    #[test]
    fn failed_attempts_are_charged_to_the_simulated_clock() {
        let clean = word_count(&splits(), 2, FaultPlan::none());
        let faulty = word_count(&splits(), 2, FaultPlan::fail_maps([0, 1, 2]));
        assert!(
            faulty.metrics.sim_runtime >= clean.metrics.sim_runtime,
            "lost attempts must not make the job faster: {:?} < {:?}",
            faulty.metrics.sim_runtime,
            clean.metrics.sim_runtime
        );
        assert!(faulty.metrics.backoff_time > Duration::ZERO);
        assert!(faulty.metrics.wasted_task_time > Duration::ZERO);
        // Every map task waited out one 100 ms backoff before its retry, so
        // the phase is strictly dominated by it (clean tasks take µs here).
        assert!(faulty.metrics.map_phase >= Duration::from_millis(100));
        assert!(faulty.metrics.sim_runtime > clean.metrics.sim_runtime);
    }

    #[test]
    fn straggler_slowdown_stretches_the_phase() {
        let clean = word_count(&splits(), 2, FaultPlan::none());
        let plan = FaultPlan::none().with_map_fault(0, TaskFault::straggler(50.0));
        let slow = word_count(&splits(), 2, plan);
        assert!(
            slow.metrics.map_phase > clean.metrics.map_phase,
            "a 50x straggler must dominate the map makespan"
        );
        assert_eq!(sorted_counts(slow), expected_counts());
    }

    #[test]
    fn speculation_rescues_a_straggler() {
        let plan = FaultPlan::none().with_map_fault(0, TaskFault::straggler(1000.0));
        let config = JobConfig::new("wc", 2)
            .with_faults(plan.clone())
            .with_speculation(SpeculationPolicy::new());
        let speculative = word_count_config(&splits(), &config).expect("job must succeed");
        let plain = word_count(&splits(), 2, plan);
        // Timing noise on the tiny test tasks can occasionally add wins
        // beyond the scripted straggler's, so pin a lower bound only.
        assert!(speculative.metrics.speculative_wins >= 1);
        assert!(speculative.metrics.wasted_task_time > Duration::ZERO);
        assert!(
            speculative.metrics.map_phase < plain.metrics.map_phase,
            "the backup must beat a 1000x straggler"
        );
        assert_eq!(sorted_counts(speculative), expected_counts());
    }

    /// The countable `JobMetrics` fields are a facade over the registry.
    #[test]
    fn registry_backs_the_job_metrics_facade() {
        let plan = FaultPlan::none().with_map_fault(0, TaskFault::lost(2));
        let out = word_count(&splits(), 2, plan);
        let reg = &out.registry;
        assert_eq!(
            reg.counter("map.records_out"),
            out.metrics.map_output_records
        );
        assert_eq!(
            reg.counter("reduce.input_keys"),
            out.metrics.reduce_input_keys
        );
        assert_eq!(
            reg.counter("reduce.records_out"),
            out.metrics.output_records
        );
        assert_eq!(reg.counter("map.retries"), out.metrics.map_retries);
        assert_eq!(reg.counter("task.attempts"), out.metrics.attempts);
        assert_eq!(reg.counter("map.failures.lost_output"), 2);
        let (hist_count, _) = reg
            .histogram("map.task_ticks")
            .map(|h| (h.count(), h.sum()))
            .expect("map task histogram present");
        assert_eq!(hist_count, 3, "one histogram sample per map task");
        assert_eq!(
            reg.gauge("cluster.map_slots"),
            Some(i64::try_from(ClusterConfig::test().map_slots).expect("slots fit"))
        );
    }

    /// With a collector attached, the job emits a span timeline whose
    /// exported bytes are identical run to run.
    #[test]
    fn collector_receives_spans_for_every_task() {
        let render = || {
            let collector = Collector::new();
            let config = JobConfig::new("wc", 2).with_collector(Some(collector.clone()));
            word_count_config(&splits(), &config).expect("job must succeed");
            skymr_telemetry::export::chrome_trace(&collector.finish())
        };
        let trace = render();
        // (No shuffle spans here: the test cluster's shuffle of a few
        // dozen bytes rounds to zero model ticks.)
        for needle in [
            "\"map[0]\"",
            "\"map[1]\"",
            "\"map[2]\"",
            "\"reduce[0]\"",
            "\"reduce[1]\"",
        ] {
            assert!(trace.contains(needle), "trace must contain {needle}");
        }
        assert_eq!(trace, render(), "trace bytes must be reproducible");
    }

    /// Reduce-side mirror of [`speculation_rescues_a_straggler`]: a backup
    /// attempt beats a straggling reducer, and the *losing* attempt's time
    /// is charged to `wasted_task_time` rather than discarded.
    #[test]
    fn reduce_speculation_charges_the_losing_attempt_as_waste() {
        // Three reducers so the phase median is an un-faulted task (with
        // two, the median *is* the straggler and nothing speculates).
        let plan = FaultPlan::none().with_reduce_fault(0, TaskFault::straggler(1000.0));
        let config = JobConfig::new("wc", 3)
            .with_faults(plan.clone())
            .with_speculation(SpeculationPolicy::new());
        let speculative = word_count_config(&splits(), &config).expect("job must succeed");
        let plain = word_count(&splits(), 3, plan);
        // Hash-partition skew can make more than one reduce task clear the
        // 3x-median bar, and host timing noise on the tiny test maps can
        // occasionally add a map-side win too — so pin only "some backup
        // won on the reduce side" plus the map/reduce/total consistency.
        assert!(speculative.registry.counter("reduce.speculative_wins") >= 1);
        assert_eq!(
            speculative.registry.counter("map.speculative_wins")
                + speculative.registry.counter("reduce.speculative_wins"),
            speculative.metrics.speculative_wins
        );
        assert!(
            speculative.metrics.wasted_task_time > Duration::ZERO,
            "the losing reduce attempt's time must be charged as waste"
        );
        assert!(
            speculative.metrics.reduce_phase < plain.metrics.reduce_phase,
            "the backup must beat a 1000x straggling reducer"
        );
        assert_eq!(sorted_counts(speculative), expected_counts());
    }

    #[test]
    fn lost_partitions_are_regenerated() {
        let plan = FaultPlan::none()
            .with_lost_partition(0, 0)
            .with_lost_partition(2, 1);
        let out = word_count(&splits(), 2, plan);
        assert_eq!(out.metrics.map_retries, 2, "two map tasks re-executed");
        assert_eq!(sorted_counts(out), expected_counts());
    }

    #[test]
    fn broadcast_failures_multiply_the_broadcast_charge() {
        let mut cluster = ClusterConfig::test();
        cluster.nodes = 4;
        cluster.network_bytes_per_sec = 1e6;
        let base = JobConfig::new("wc", 1).with_cache_bytes(1_000_000);
        let clean = run_job(
            &cluster,
            &base,
            &splits(),
            &WcMap,
            &WcReduce,
            &HashPartitioner,
        )
        .expect("clean run");
        let flaky = base.with_faults(FaultPlan::none().with_broadcast_failures(2));
        let retried = run_job(
            &cluster,
            &flaky,
            &splits(),
            &WcMap,
            &WcReduce,
            &HashPartitioner,
        )
        .expect("retried run");
        assert_eq!(
            retried.metrics.broadcast_time,
            clean.metrics.broadcast_time * 3
        );
        assert!(retried.metrics.sim_runtime > clean.metrics.sim_runtime);
    }

    #[test]
    fn exhausted_map_retries_return_structured_error() {
        let plan = FaultPlan::none().with_map_fault(
            1,
            TaskFault {
                failures: u32::MAX,
                kind: FaultKind::MidTaskPanic,
                slowdown: 1.0,
            },
        );
        let config = JobConfig::new("wc", 2)
            .with_faults(plan)
            .with_retry(RetryPolicy::new().with_max_attempts(3));
        let err = word_count_config(&splits(), &config).expect_err("job must abort");
        assert_eq!(err.task, TaskKind::Map);
        assert_eq!(err.index, 1);
        assert_eq!(err.attempts, 3);
        assert_eq!(err.history.len(), 3, "full attempt history");
        assert!(err.died_panicking());
        assert!(err.to_string().contains("map task 1"));
        // Partial metrics still account for the doomed task's attempts.
        assert!(err.metrics.attempts >= 3);
        assert!(err.metrics.sim_runtime > Duration::ZERO);
    }

    #[test]
    fn exhausted_reduce_retries_return_structured_error() {
        let plan = FaultPlan::none().with_reduce_fault(0, TaskFault::lost(u32::MAX));
        let config = JobConfig::new("wc", 1)
            .with_faults(plan)
            .with_retry(RetryPolicy::new().with_max_attempts(2));
        let err = word_count_config(&splits(), &config).expect_err("job must abort");
        assert_eq!(err.task, TaskKind::Reduce);
        assert_eq!(err.index, 0);
        assert_eq!(err.attempts, 2);
        assert!(!err.died_panicking(), "lost output is not a panic");
        // The map phase completed; its metrics survive in the error.
        assert_eq!(err.metrics.map_tasks, 3);
        assert!(err.metrics.map_phase > Duration::ZERO);
        assert!(err.metrics.shuffle_bytes > 0);
    }

    /// A genuinely broken UDF (panics on every attempt, nothing injected)
    /// becomes a structured error once the budget is gone — the original
    /// payload stays available for callers that want to re-raise it.
    #[test]
    fn genuine_udf_panic_exhausts_budget_then_surfaces_payload() {
        struct BadMap;
        struct BadMapTask;
        impl MapTask for BadMapTask {
            type In = u32;
            type K = u32;
            type V = u32;
            fn map(&mut self, input: &u32, _out: &mut Emitter<u32, u32>) {
                if *input == 3 {
                    panic!("record 3 is poison");
                }
            }
        }
        impl MapFactory for BadMap {
            type Task = BadMapTask;
            fn create(&self, _: &TaskContext) -> BadMapTask {
                BadMapTask
            }
        }
        let splits: Vec<Vec<u32>> = vec![vec![1, 2], vec![3, 4]];
        let cluster = ClusterConfig::test();
        let config = JobConfig::new("bad", 1).with_retry(RetryPolicy::new().with_max_attempts(2));
        let err = run_job(
            &cluster,
            &config,
            &splits,
            &BadMap,
            &WcReduceLike,
            &ModuloPartitioner,
        )
        .expect_err("poison record must abort the job");
        assert_eq!((err.task, err.index, err.attempts), (TaskKind::Map, 1, 2));
        assert!(err.last_cause().contains("record 3 is poison"));
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| err.resume_panic()))
            .expect_err("resume_panic re-raises");
        assert_eq!(
            unwound.downcast_ref::<&str>().copied(),
            Some("record 3 is poison")
        );
    }

    #[test]
    fn seeded_chaos_does_not_change_the_output() {
        let clean = sorted_counts(word_count(&splits(), 2, FaultPlan::none()));
        for seed in 0..8 {
            let out = word_count(&splits(), 2, FaultPlan::seeded(seed));
            assert_eq!(sorted_counts(out), clean, "seed {seed} changed the output");
        }
    }

    #[test]
    fn sim_runtime_includes_all_components() {
        let out = word_count(&splits(), 1, FaultPlan::none());
        let m = &out.metrics;
        assert_eq!(
            m.sim_runtime,
            m.startup_time + m.broadcast_time + m.map_phase + m.shuffle_time + m.reduce_phase
        );
        assert!(m.map_phase > Duration::ZERO);
    }

    #[test]
    fn cache_bytes_charge_broadcast() {
        let cluster = ClusterConfig::test();
        let config = JobConfig::new("wc", 1).with_cache_bytes(1_000_000);
        let out = run_job(
            &cluster,
            &config,
            &splits(),
            &WcMap,
            &WcReduce,
            &HashPartitioner,
        )
        .expect("job must succeed");
        assert_eq!(out.metrics.cache_bytes, 1_000_000);
        assert!(out.metrics.broadcast_time > Duration::ZERO);
    }

    #[test]
    fn empty_input_produces_empty_output() {
        let empty: Vec<Vec<String>> = vec![vec![], vec![]];
        let out = word_count(&empty, 2, FaultPlan::none());
        assert_eq!(out.metrics.map_output_records, 0);
        assert!(out.into_flat_output().is_empty());
    }

    #[test]
    fn combiner_cuts_shuffle_without_changing_results() {
        use crate::combiner::FoldCombiner;
        let cluster = ClusterConfig::test();
        let config = JobConfig::new("wc", 2);
        let plain = run_job(
            &cluster,
            &config,
            &splits(),
            &WcMap,
            &WcReduce,
            &HashPartitioner,
        )
        .expect("plain run");
        let combined = run_job_with_combiner(
            &cluster,
            &config,
            &splits(),
            &WcMap,
            &WcReduce,
            &HashPartitioner,
            &FoldCombiner::new(|a: u64, b: u64| a + b),
        )
        .expect("combined run");
        // Split 0 holds "a b a" + "c": the duplicate 'a' combines away.
        assert!(combined.metrics.map_output_records < plain.metrics.map_output_records);
        assert!(combined.metrics.shuffle_bytes < plain.metrics.shuffle_bytes);
        let mut a = plain.into_flat_output();
        let mut b = combined.into_flat_output();
        a.sort();
        b.sort();
        assert_eq!(a, b, "combiner changed the job result");
    }

    #[test]
    fn keys_arrive_sorted_at_reducers() {
        struct OrderMap;
        struct OrderMapTask;
        impl MapTask for OrderMapTask {
            type In = u32;
            type K = u32;
            type V = u32;
            fn map(&mut self, input: &u32, out: &mut Emitter<u32, u32>) {
                out.emit(*input, *input);
            }
        }
        impl MapFactory for OrderMap {
            type Task = OrderMapTask;
            fn create(&self, _: &TaskContext) -> OrderMapTask {
                OrderMapTask
            }
        }
        struct OrderReduce;
        struct OrderReduceTask {
            last: Option<u32>,
        }
        impl ReduceTask for OrderReduceTask {
            type K = u32;
            type V = u32;
            type Out = u32;
            fn reduce(&mut self, key: u32, _values: Vec<u32>, out: &mut OutputCollector<u32>) {
                if let Some(last) = self.last {
                    assert!(key > last, "keys not sorted: {key} after {last}");
                }
                self.last = Some(key);
                out.collect(key);
            }
        }
        impl ReduceFactory for OrderReduce {
            type Task = OrderReduceTask;
            fn create(&self, _: &TaskContext) -> OrderReduceTask {
                OrderReduceTask { last: None }
            }
        }
        let splits: Vec<Vec<u32>> = vec![vec![5, 3, 9], vec![1, 7, 3]];
        let cluster = ClusterConfig::test();
        let out = run_job(
            &cluster,
            &JobConfig::new("order", 2),
            &splits,
            &OrderMap,
            &OrderReduce,
            &ModuloPartitioner,
        )
        .expect("job must succeed");
        let mut keys = out.into_flat_output();
        keys.sort_unstable();
        assert_eq!(keys, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn counters_flow_from_tasks_to_outcome() {
        struct CountingMap;
        struct CountingMapTask {
            counters: Counters,
        }
        impl MapTask for CountingMapTask {
            type In = u32;
            type K = u32;
            type V = u32;
            fn map(&mut self, input: &u32, out: &mut Emitter<u32, u32>) {
                self.counters.add("records", 1);
                out.emit(*input % 2, *input);
            }
        }
        impl MapFactory for CountingMap {
            type Task = CountingMapTask;
            fn create(&self, ctx: &TaskContext) -> CountingMapTask {
                CountingMapTask {
                    counters: ctx.counters.clone(),
                }
            }
        }
        let splits: Vec<Vec<u32>> = vec![vec![1, 2, 3], vec![4, 5]];
        let cluster = ClusterConfig::test();
        let out = run_job(
            &cluster,
            &JobConfig::new("count", 1),
            &splits,
            &CountingMap,
            &WcReduceLike,
            &ModuloPartitioner,
        )
        .expect("job must succeed");
        assert_eq!(out.counters.get("records"), 5);
    }

    fn word_count_on(
        cluster: &ClusterConfig,
        config: &JobConfig,
    ) -> Result<JobOutcome<(String, u64)>, JobError> {
        run_job(
            cluster,
            config,
            &splits(),
            &WcMap,
            &WcReduce,
            &HashPartitioner,
        )
    }

    #[test]
    fn transient_corruption_is_detected_refetched_and_output_preserving() {
        let clean = word_count(&splits(), 2, FaultPlan::none());
        let plan = FaultPlan::none().with_corrupt_shuffle(0, 0, 1);
        let out = word_count(&splits(), 2, plan);
        assert_eq!(
            out.metrics.corrupt_fetches, 1,
            "one bad fetch, one re-fetch"
        );
        assert_eq!(out.registry.counter("shuffle.corrupt_partitions"), 1);
        assert_eq!(out.registry.counter("shuffle.corrupt_fetches"), 1);
        assert!(
            out.metrics.shuffle_time > clean.metrics.shuffle_time,
            "the re-fetched frame must cost shuffle time"
        );
        assert!(!out.metrics.degraded, "corruption recovery loses nothing");
        assert_eq!(out.metrics.map_retries, 0, "no re-execution for transient");
        assert_eq!(sorted_counts(out), expected_counts());
    }

    #[test]
    fn at_rest_corruption_reexecutes_the_producing_map() {
        let plan = FaultPlan::none().with_corrupt_shuffle(1, 0, 2);
        let out = word_count(&splits(), 2, plan);
        assert_eq!(out.metrics.corrupt_fetches, 2, "both fetches were bad");
        assert_eq!(
            out.metrics.map_retries, 1,
            "the producer re-executed once the re-fetch failed too"
        );
        assert_eq!(sorted_counts(out), expected_counts());
    }

    #[test]
    fn hung_attempts_are_killed_by_the_progress_timeout_and_retried() {
        let cluster = ClusterConfig::test();
        let plan = FaultPlan::none().with_map_fault(0, TaskFault::hangs(2));
        let config = JobConfig::new("wc", 2).with_faults(plan);
        let out = word_count_on(&cluster, &config).expect("job must survive hangs");
        assert_eq!(out.metrics.map_retries, 2);
        assert_eq!(out.registry.counter("map.failures.hang"), 2);
        assert!(
            out.metrics.wasted_task_time >= cluster.progress_timeout * 2,
            "each kill charges the full progress timeout"
        );
        assert_eq!(sorted_counts(out), expected_counts());
    }

    #[test]
    fn poison_record_without_skip_policy_aborts_the_job() {
        let plan = FaultPlan::none().with_poison_record(1, 0);
        let config = JobConfig::new("wc", 2)
            .with_faults(plan)
            .with_retry(RetryPolicy::new().with_max_attempts(3));
        let err = word_count_config(&splits(), &config).expect_err("poison must abort");
        assert_eq!((err.task, err.index, err.attempts), (TaskKind::Map, 1, 3));
        assert!(err.last_cause().contains("poisoned at record 0"));
        assert!(!err.metrics.degraded);
    }

    #[test]
    fn skip_bad_records_narrows_to_the_poison_and_completes_degraded() {
        let mut cluster = ClusterConfig::test();
        cluster.skip_bad_records = true;
        // Poison split 1's only record ("b b"); the surviving input is
        // exactly splits 0 and 2.
        let plan = FaultPlan::none().with_poison_record(1, 0);
        let config = JobConfig::new("wc", 2).with_faults(plan);
        let out = word_count_on(&cluster, &config).expect("skip policy must rescue the job");
        assert!(out.metrics.degraded);
        assert_eq!(out.metrics.records_skipped, 1);
        assert_eq!(out.registry.counter("map.records_skipped"), 1);
        // Budget exhausted once (4 attempts), then one clean skip round.
        assert_eq!(out.metrics.map_retries, 4);
        let reduced: Vec<Vec<String>> = vec![splits()[0].clone(), Vec::new(), splits()[2].clone()];
        let baseline = word_count(&reduced, 2, FaultPlan::none());
        assert_eq!(
            sorted_counts(out),
            sorted_counts(baseline),
            "output must equal the fault-free run minus the poisoned record"
        );
    }

    #[test]
    fn seeded_data_chaos_preserves_output_and_is_replayable() {
        let clean = sorted_counts(word_count(&splits(), 2, FaultPlan::none()));
        for seed in 0..6 {
            let run = || word_count(&splits(), 2, FaultPlan::chaos_data(seed));
            let a = run();
            let b = run();
            assert_eq!(a.metrics.corrupt_fetches, b.metrics.corrupt_fetches);
            assert_eq!(sorted_counts(a), clean, "seed {seed} changed the output");
            assert_eq!(sorted_counts(b), clean, "seed {seed} changed the output");
        }
    }

    #[test]
    fn node_loss_reexecutes_completed_maps_without_changing_output() {
        let cluster = ClusterConfig::test_placed(0xBEEF);
        let run = |plan: FaultPlan| {
            word_count_on(&cluster, &JobConfig::new("wc", 2).with_faults(plan))
                .expect("job must survive a node loss")
        };
        let clean = run(FaultPlan::none());
        assert_eq!(clean.metrics.nodes_lost, 0);
        assert_eq!(clean.metrics.reexecution_time, Duration::ZERO);
        // Kill the node that homes map task 0's output, far past the map
        // phase: its completed output is invalidated and must re-execute.
        let placement = Placement::new(0xBEEF);
        let alive: Vec<usize> = (0..cluster.nodes).collect();
        let victim = placement.task_home("wc", TaskKind::Map, 0, &alive);
        let faulty = run(FaultPlan::none().with_node_loss(victim, u64::MAX / 2));
        assert_eq!(faulty.metrics.nodes_lost, 1);
        assert!(faulty.metrics.maps_reexecuted >= 1, "map 0 lived there");
        assert!(faulty.metrics.reexecution_time >= cluster.heartbeat_timeout);
        assert!(
            faulty.metrics.sim_runtime > clean.metrics.sim_runtime,
            "detection + re-execution must cost simulated time"
        );
        assert_eq!(faulty.registry.counter("node.lost"), 1);
        assert_eq!(
            faulty.registry.counter("map.reexecuted"),
            faulty.metrics.maps_reexecuted
        );
        assert_eq!(sorted_counts(faulty), sorted_counts(clean));
    }

    #[test]
    fn node_events_are_inert_without_a_placement() {
        let plan = FaultPlan::none()
            .with_node_loss(0, 0)
            .with_node_partition(1, 0, 500);
        let out = word_count(&splits(), 2, plan);
        assert_eq!(out.metrics.nodes_lost, 0);
        assert_eq!(out.metrics.maps_reexecuted, 0);
        assert_eq!(out.metrics.reexecution_time, Duration::ZERO);
        assert_eq!(sorted_counts(out), expected_counts());
    }

    #[test]
    fn node_partition_stalls_the_shuffle() {
        let cluster = ClusterConfig::test_placed(3);
        let run = |plan: FaultPlan| {
            word_count_on(&cluster, &JobConfig::new("wc", 2).with_faults(plan))
                .expect("job must survive a partition")
        };
        let clean = run(FaultPlan::none());
        let stalled = run(FaultPlan::none().with_node_partition(0, 0, 700));
        assert_eq!(
            stalled.metrics.shuffle_time,
            clean.metrics.shuffle_time + Duration::from_micros(700),
            "the partition window stalls the shuffle barrier"
        );
        assert_eq!(sorted_counts(stalled), sorted_counts(clean));
    }

    #[test]
    fn failing_nodes_are_blacklisted() {
        let cluster = ClusterConfig::test_placed(9);
        let plan = FaultPlan::none()
            .with_map_fault(0, TaskFault::lost(2))
            .with_map_fault(1, TaskFault::lost(1));
        let config = JobConfig::new("wc", 2)
            .with_faults(plan)
            .with_blacklist(BlacklistPolicy::new().with_max_failures(1));
        let out = word_count_on(&cluster, &config).expect("job must succeed");
        assert!(out.metrics.nodes_blacklisted >= 1, "strikes were recorded");
        assert_eq!(
            out.registry.counter("node.blacklisted"),
            out.metrics.nodes_blacklisted
        );
        assert_eq!(sorted_counts(out), expected_counts());
    }

    #[test]
    fn node_chaos_is_replayable_and_output_preserving() {
        let cluster = ClusterConfig::test_placed(11);
        let run = |seed: u64| {
            let config = JobConfig::new("wc", 2).with_faults(FaultPlan::chaos_nodes(seed));
            word_count_on(&cluster, &config).expect("chaos run must succeed")
        };
        for seed in 0..6 {
            let a = run(seed);
            let b = run(seed);
            // The deterministic counters replay exactly; only measured
            // durations may differ between runs.
            assert_eq!(a.metrics.nodes_lost, b.metrics.nodes_lost);
            assert_eq!(a.metrics.maps_reexecuted, b.metrics.maps_reexecuted);
            assert_eq!(sorted_counts(a), expected_counts(), "seed {seed}");
            assert_eq!(sorted_counts(b), expected_counts(), "seed {seed}");
        }
    }

    /// Test cluster with the out-of-core plane forced on: a `budget`-byte
    /// map output buffer spills (almost) every emitted pair.
    fn spill_cluster(budget: u64) -> ClusterConfig {
        let mut cluster = ClusterConfig::test();
        cluster.storage.memory_budget = Some(budget);
        cluster
    }

    #[test]
    fn spill_mode_is_output_identical_and_reports_storage_metrics() {
        let clean = word_count(&splits(), 2, FaultPlan::none());
        let cluster = spill_cluster(1);
        let out = word_count_on(&cluster, &JobConfig::new("wc", 2)).expect("spill run");
        assert!(out.metrics.spill_files > 0, "a 1-byte budget must spill");
        assert!(out.metrics.spilled_bytes > 0);
        assert!(out.metrics.merge_passes >= 1, "disk runs need a final pass");
        assert_eq!(
            out.registry.counter("storage.spill_files"),
            out.metrics.spill_files
        );
        assert_eq!(
            out.registry.counter("storage.spilled_bytes"),
            out.metrics.spilled_bytes
        );
        assert_eq!(
            out.registry.counter("storage.merge_passes"),
            out.metrics.merge_passes
        );
        // The shuffle model accounts wire bytes, not the representation.
        assert_eq!(out.metrics.shuffle_bytes, clean.metrics.shuffle_bytes);
        assert_eq!(
            out.metrics.reduce_input_keys,
            clean.metrics.reduce_input_keys
        );
        // A clean in-memory run reports no storage traffic at all.
        assert_eq!(clean.metrics.spill_files, 0);
        assert_eq!(clean.metrics.spilled_bytes, 0);
        assert_eq!(clean.metrics.merge_passes, 0);
        assert_eq!(sorted_counts(out), sorted_counts(clean));
    }

    #[test]
    fn spill_mode_survives_faults_and_chaos() {
        let clean = sorted_counts(word_count(&splits(), 2, FaultPlan::none()));
        let cluster = spill_cluster(1);
        let run = |plan: FaultPlan| {
            word_count_on(&cluster, &JobConfig::new("wc", 2).with_faults(plan))
                .expect("spill run must survive")
        };
        let retried = run(FaultPlan::fail_maps([0, 2]));
        assert_eq!(retried.metrics.map_retries, 2);
        assert_eq!(sorted_counts(retried), clean);

        let panicky = run(FaultPlan::none().with_reduce_fault(0, TaskFault::panics(1)));
        assert_eq!(panicky.metrics.reduce_retries, 1);
        assert_eq!(sorted_counts(panicky), clean);

        let regenerated = run(FaultPlan::none().with_lost_partition(0, 0));
        assert_eq!(regenerated.metrics.map_retries, 1);
        assert_eq!(sorted_counts(regenerated), clean);

        for seed in 0..4 {
            let out = run(FaultPlan::seeded(seed));
            assert_eq!(sorted_counts(out), clean, "seed {seed} changed the output");
        }
    }

    /// Spill-mode corruption physically bit-flips the on-disk segment; the
    /// CRC scan must catch it and route into the re-fetch → re-exec ladder.
    #[test]
    fn spill_segment_corruption_routes_into_the_recovery_ladder() {
        let cluster = spill_cluster(1);
        let run = |plan: FaultPlan| {
            word_count_on(&cluster, &JobConfig::new("wc", 2).with_faults(plan))
                .expect("spill run must survive")
        };
        // Transient: the first fetch hits the flipped bit, the re-fetch
        // (bit restored — a clean replica) passes the scan.
        let transient = run(FaultPlan::none().with_corrupt_shuffle(0, 0, 1));
        assert_eq!(transient.metrics.corrupt_fetches, 1);
        assert_eq!(transient.registry.counter("shuffle.corrupt_partitions"), 1);
        assert_eq!(transient.metrics.map_retries, 0);
        assert_eq!(sorted_counts(transient), expected_counts());
        // At rest: both fetches fail the scan, the producing map re-executes
        // and rewrites its segments.
        let at_rest = run(FaultPlan::none().with_corrupt_shuffle(1, 0, 2));
        assert_eq!(at_rest.metrics.corrupt_fetches, 2);
        assert_eq!(at_rest.metrics.map_retries, 1);
        assert_eq!(sorted_counts(at_rest), expected_counts());
    }

    #[test]
    fn spill_runs_emit_storage_spans_reproducibly() {
        let cluster = spill_cluster(1);
        let render = || {
            let collector = Collector::new();
            let config = JobConfig::new("wc", 2).with_collector(Some(collector.clone()));
            word_count_on(&cluster, &config).expect("job must succeed");
            skymr_telemetry::export::chrome_trace(&collector.finish())
        };
        let trace = render();
        assert!(trace.contains("\"spill[0]\""), "spill span missing");
        assert!(trace.contains("\"merge\""), "merge span missing");
        assert_eq!(trace, render(), "spill trace bytes must be reproducible");
    }

    struct WcReduceLike;
    struct WcReduceLikeTask;
    impl ReduceTask for WcReduceLikeTask {
        type K = u32;
        type V = u32;
        type Out = u32;
        fn reduce(&mut self, _key: u32, values: Vec<u32>, out: &mut OutputCollector<u32>) {
            out.collect(values.into_iter().sum());
        }
    }
    impl ReduceFactory for WcReduceLike {
        type Task = WcReduceLikeTask;
        fn create(&self, _: &TaskContext) -> WcReduceLikeTask {
            WcReduceLikeTask
        }
    }
}
