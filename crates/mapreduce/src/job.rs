//! The job driver: map phase → shuffle → reduce phase.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use skymr_common::Counters;

use crate::cluster::{makespan, ClusterConfig, JobMetrics};
use crate::combiner::{Combiner, NoCombiner};
use crate::failure::FailurePlan;
use crate::partitioner::Partitioner;
use crate::pool::run_indexed;
use crate::task::{
    Emitter, MapFactory, MapTask, OutputCollector, ReduceFactory, ReduceTask, TaskContext,
};

/// Per-job configuration.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Job name, used in metrics and reports.
    pub name: String,
    /// Number of reduce tasks.
    pub num_reducers: usize,
    /// Bytes of read-only data broadcast to every node before the job
    /// starts (the Hadoop Distributed Cache; the paper ships the global
    /// bitstring this way). Charged to the simulated clock.
    pub cache_bytes: u64,
    /// Failure-injection plan (empty by default).
    pub failures: FailurePlan,
}

impl JobConfig {
    /// A job with the given name and reducer count, no cache, no failures.
    pub fn new(name: impl Into<String>, num_reducers: usize) -> Self {
        Self {
            name: name.into(),
            num_reducers,
            cache_bytes: 0,
            failures: FailurePlan::none(),
        }
    }

    /// Sets the distributed-cache byte charge.
    pub fn with_cache_bytes(mut self, bytes: u64) -> Self {
        self.cache_bytes = bytes;
        self
    }

    /// Sets the failure-injection plan.
    pub fn with_failures(mut self, failures: FailurePlan) -> Self {
        self.failures = failures;
        self
    }
}

/// Result of a job: per-reducer outputs plus metrics and counters.
#[derive(Debug)]
pub struct JobOutcome<Out> {
    /// Output records, indexed by reducer.
    pub outputs: Vec<Vec<Out>>,
    /// Simulated and measured execution metrics.
    pub metrics: JobMetrics,
    /// Job counters populated by tasks.
    pub counters: Counters,
}

impl<Out> JobOutcome<Out> {
    /// Flattens per-reducer outputs into one vector (reducer order).
    pub fn into_flat_output(self) -> Vec<Out> {
        self.outputs.into_iter().flatten().collect()
    }
}

struct MapResult<K, V> {
    buckets: Vec<Vec<(K, V)>>,
    bucket_bytes: Vec<u64>,
    records: u64,
}

/// A reducer's input group, handed off to exactly one reduce task.
type GroupSlot<K, V> = parking_lot::Mutex<Option<BTreeMap<K, Vec<V>>>>;

/// Runs one MapReduce job (no combiner).
///
/// `splits` is the pre-split input `R_1, …, R_m` — one map task per split,
/// exactly as the paper's job flows show (Figures 3–5). The reduce phase
/// runs `config.num_reducers` tasks; keys are routed by `partitioner`,
/// sorted, and grouped.
///
/// ```
/// use skymr_mapreduce::*;
///
/// // Word count: the canonical MapReduce example.
/// struct Wc;
/// struct WcTask;
/// impl MapTask for WcTask {
///     type In = String;
///     type K = String;
///     type V = u64;
///     fn map(&mut self, line: &String, out: &mut Emitter<String, u64>) {
///         for word in line.split_whitespace() {
///             out.emit(word.to_string(), 1);
///         }
///     }
/// }
/// impl MapFactory for Wc {
///     type Task = WcTask;
///     fn create(&self, _: &TaskContext) -> WcTask { WcTask }
/// }
/// struct Sum;
/// struct SumTask;
/// impl ReduceTask for SumTask {
///     type K = String;
///     type V = u64;
///     type Out = (String, u64);
///     fn reduce(&mut self, k: String, vs: Vec<u64>, out: &mut OutputCollector<(String, u64)>) {
///         out.collect((k, vs.iter().sum()));
///     }
/// }
/// impl ReduceFactory for Sum {
///     type Task = SumTask;
///     fn create(&self, _: &TaskContext) -> SumTask { SumTask }
/// }
///
/// let splits = vec![vec!["a b a".to_string()], vec!["b".to_string()]];
/// let outcome = run_job(
///     &ClusterConfig::test(),
///     &JobConfig::new("wc", 2),
///     &splits,
///     &Wc,
///     &Sum,
///     &HashPartitioner,
/// );
/// let mut counts = outcome.into_flat_output();
/// counts.sort();
/// assert_eq!(counts, vec![("a".to_string(), 2), ("b".to_string(), 2)]);
/// ```
pub fn run_job<In, K, V, Out, MF, RF, P>(
    cluster: &ClusterConfig,
    config: &JobConfig,
    splits: &[Vec<In>],
    map_factory: &MF,
    reduce_factory: &RF,
    partitioner: &P,
) -> JobOutcome<Out>
where
    In: Send + Sync,
    K: crate::task::JobKey,
    V: crate::task::JobValue + Clone,
    Out: Send,
    MF: MapFactory,
    MF::Task: MapTask<In = In, K = K, V = V>,
    RF: ReduceFactory,
    RF::Task: ReduceTask<K = K, V = V, Out = Out>,
    P: Partitioner<K>,
{
    run_job_with_combiner(
        cluster,
        config,
        splits,
        map_factory,
        reduce_factory,
        partitioner,
        &NoCombiner,
    )
}

/// Runs one MapReduce job with a map-side [`Combiner`] applied to each map
/// task's output before the shuffle.
pub fn run_job_with_combiner<In, K, V, Out, MF, RF, P, C>(
    cluster: &ClusterConfig,
    config: &JobConfig,
    splits: &[Vec<In>],
    map_factory: &MF,
    reduce_factory: &RF,
    partitioner: &P,
    combiner: &C,
) -> JobOutcome<Out>
where
    In: Send + Sync,
    K: crate::task::JobKey,
    V: crate::task::JobValue + Clone,
    Out: Send,
    MF: MapFactory,
    MF::Task: MapTask<In = In, K = K, V = V>,
    RF: ReduceFactory,
    RF::Task: ReduceTask<K = K, V = V, Out = Out>,
    P: Partitioner<K>,
    C: Combiner<K, V>,
{
    assert!(config.num_reducers > 0, "a job needs at least one reducer");
    let started = Instant::now();
    let counters = Counters::new();
    let m = splits.len();
    let r = config.num_reducers;
    let map_retries = AtomicU64::new(0);
    let reduce_retries = AtomicU64::new(0);

    // ---- Map phase -------------------------------------------------------
    let run_map_attempt = |i: usize, attempt: u32| -> MapResult<K, V> {
        let ctx = TaskContext {
            task_index: i,
            num_tasks: m,
            num_reducers: r,
            attempt,
            counters: counters.clone(),
        };
        let mut task = map_factory.create(&ctx);
        let mut emitter = Emitter::new();
        for record in &splits[i] {
            task.map(record, &mut emitter);
        }
        task.finish(&mut emitter);
        let (pairs, _) = emitter.into_parts();
        // Group this task's output per key and apply the combiner (the
        // identity combiner leaves values untouched); the key-sorted order
        // keeps the downstream pipeline deterministic.
        let mut grouped: BTreeMap<K, Vec<V>> = BTreeMap::new();
        for (k, v) in pairs {
            grouped.entry(k).or_default().push(v);
        }
        let mut buckets: Vec<Vec<(K, V)>> = (0..r).map(|_| Vec::new()).collect();
        let mut bucket_bytes = vec![0u64; r];
        let mut records = 0u64;
        for (k, vs) in grouped {
            let combined = combiner.combine(&k, vs);
            let dest = partitioner.partition(&k, r);
            assert!(dest < r, "partitioner returned reducer {dest} of {r}");
            for v in combined {
                records += 1;
                bucket_bytes[dest] += k.byte_size() + v.byte_size();
                buckets[dest].push((k.clone(), v));
            }
        }
        MapResult {
            buckets,
            bucket_bytes,
            records,
        }
    };

    let map_results = run_indexed(m, cluster.host_threads, |i| {
        if config.failures.map_fail_once.contains(&i) {
            // First attempt runs to completion, then its output is lost
            // (simulated node failure); the framework re-executes.
            let _lost = run_map_attempt(i, 0);
            map_retries.fetch_add(1, Ordering::Relaxed);
            run_map_attempt(i, 1)
        } else {
            run_map_attempt(i, 0)
        }
    });

    let map_task_durations: Vec<Duration> = map_results.iter().map(|(_, d)| *d).collect();
    let map_output_records: u64 = map_results.iter().map(|(res, _)| res.records).sum();

    // ---- Shuffle ---------------------------------------------------------
    let mut per_reducer_bytes = vec![0u64; r];
    let mut groups: Vec<BTreeMap<K, Vec<V>>> = (0..r).map(|_| BTreeMap::new()).collect();
    // Debug builds tally the mapper-emitted pairs per key so the shuffle
    // can be checked as an exact partition of the map output below.
    let mut emitted: BTreeMap<K, u64> = BTreeMap::new();
    for (result, _) in map_results {
        for (j, bucket) in result.buckets.into_iter().enumerate() {
            per_reducer_bytes[j] += result.bucket_bytes[j];
            for (k, v) in bucket {
                if cfg!(debug_assertions) {
                    *emitted.entry(k.clone()).or_insert(0) += 1;
                }
                groups[j].entry(k).or_default().push(v);
            }
        }
    }
    if cfg!(debug_assertions) {
        crate::analysis::assert_shuffle_invariants(&emitted, &groups);
    }
    drop(emitted);
    let shuffle_bytes: u64 = per_reducer_bytes.iter().sum();
    let reduce_input_keys: u64 = groups.iter().map(|g| g.len() as u64).sum();

    // ---- Reduce phase ----------------------------------------------------
    let group_slots: Vec<GroupSlot<K, V>> = groups
        .into_iter()
        .map(|g| parking_lot::Mutex::new(Some(g)))
        .collect();

    let run_reduce_attempt = |j: usize, attempt: u32, input: BTreeMap<K, Vec<V>>| -> Vec<Out> {
        let ctx = TaskContext {
            task_index: j,
            num_tasks: r,
            num_reducers: r,
            attempt,
            counters: counters.clone(),
        };
        let mut task = reduce_factory.create(&ctx);
        let mut out = OutputCollector::new();
        for (k, vs) in input {
            task.reduce(k, vs, &mut out);
        }
        task.finish(&mut out);
        out.into_records()
    };

    let reduce_results = run_indexed(r, cluster.host_threads, |j| {
        // `run_indexed` invokes each index exactly once, so the slot is
        // always still full here.
        let Some(input) = group_slots[j].lock().take() else {
            unreachable!("reduce input for task {j} taken twice")
        };
        if config.failures.reduce_fail_once.contains(&j) {
            let _lost = run_reduce_attempt(j, 0, input.clone());
            reduce_retries.fetch_add(1, Ordering::Relaxed);
            run_reduce_attempt(j, 1, input)
        } else {
            run_reduce_attempt(j, 0, input)
        }
    });

    let reduce_task_durations: Vec<Duration> = reduce_results.iter().map(|(_, d)| *d).collect();
    let outputs: Vec<Vec<Out>> = reduce_results.into_iter().map(|(o, _)| o).collect();
    let output_records: u64 = outputs.iter().map(|o| o.len() as u64).sum();

    // ---- Simulated clock -------------------------------------------------
    let map_phase = makespan(
        &map_task_durations,
        cluster.map_slots,
        cluster.task_overhead,
    );
    let reduce_phase = makespan(
        &reduce_task_durations,
        cluster.reduce_slots,
        cluster.task_overhead,
    );
    let shuffle_time = cluster.shuffle_time(&per_reducer_bytes);
    let broadcast_time = cluster.broadcast_time(config.cache_bytes);
    let sim_runtime =
        cluster.job_startup + broadcast_time + map_phase + shuffle_time + reduce_phase;

    let metrics = JobMetrics {
        name: config.name.clone(),
        map_tasks: m,
        reduce_tasks: r,
        map_phase,
        reduce_phase,
        shuffle_bytes,
        per_reducer_bytes,
        shuffle_time,
        cache_bytes: config.cache_bytes,
        broadcast_time,
        startup_time: cluster.job_startup,
        sim_runtime,
        host_wall: started.elapsed(),
        map_output_records,
        reduce_input_keys,
        output_records,
        map_retries: map_retries.into_inner(),
        reduce_retries: reduce_retries.into_inner(),
        map_task_durations,
        reduce_task_durations,
    };

    JobOutcome {
        outputs,
        metrics,
        counters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioner::{HashPartitioner, ModuloPartitioner};

    /// Word-count: the canonical MapReduce smoke test.
    struct WcMap;
    struct WcMapTask;
    impl MapTask for WcMapTask {
        type In = String;
        type K = String;
        type V = u64;
        fn map(&mut self, input: &String, out: &mut Emitter<String, u64>) {
            for word in input.split_whitespace() {
                out.emit(word.to_owned(), 1);
            }
        }
    }
    impl MapFactory for WcMap {
        type Task = WcMapTask;
        fn create(&self, _ctx: &TaskContext) -> WcMapTask {
            WcMapTask
        }
    }

    struct WcReduce;
    struct WcReduceTask;
    impl ReduceTask for WcReduceTask {
        type K = String;
        type V = u64;
        type Out = (String, u64);
        fn reduce(
            &mut self,
            key: String,
            values: Vec<u64>,
            out: &mut OutputCollector<(String, u64)>,
        ) {
            out.collect((key, values.iter().sum()));
        }
    }
    impl ReduceFactory for WcReduce {
        type Task = WcReduceTask;
        fn create(&self, _ctx: &TaskContext) -> WcReduceTask {
            WcReduceTask
        }
    }

    fn word_count(
        splits: &[Vec<String>],
        reducers: usize,
        failures: FailurePlan,
    ) -> JobOutcome<(String, u64)> {
        let cluster = ClusterConfig::test();
        let config = JobConfig::new("wc", reducers).with_failures(failures);
        run_job(
            &cluster,
            &config,
            splits,
            &WcMap,
            &WcReduce,
            &HashPartitioner,
        )
    }

    fn splits() -> Vec<Vec<String>> {
        vec![
            vec!["a b a".into(), "c".into()],
            vec!["b b".into()],
            vec!["a c".into()],
        ]
    }

    fn sorted_counts(outcome: JobOutcome<(String, u64)>) -> Vec<(String, u64)> {
        let mut v = outcome.into_flat_output();
        v.sort();
        v
    }

    #[test]
    fn word_count_single_reducer() {
        let out = word_count(&splits(), 1, FailurePlan::none());
        assert_eq!(out.metrics.map_tasks, 3);
        assert_eq!(out.metrics.reduce_tasks, 1);
        assert_eq!(out.metrics.map_output_records, 8);
        assert_eq!(
            sorted_counts(out),
            vec![
                ("a".to_string(), 3),
                ("b".to_string(), 3),
                ("c".to_string(), 2)
            ]
        );
    }

    #[test]
    fn word_count_multiple_reducers_same_answer() {
        for r in [2, 3, 7] {
            let out = word_count(&splits(), r, FailurePlan::none());
            assert_eq!(
                sorted_counts(out),
                vec![
                    ("a".to_string(), 3),
                    ("b".to_string(), 3),
                    ("c".to_string(), 2)
                ],
                "wrong counts with {r} reducers"
            );
        }
    }

    #[test]
    fn shuffle_bytes_are_positive_and_distributed() {
        let out = word_count(&splits(), 2, FailurePlan::none());
        assert!(out.metrics.shuffle_bytes > 0);
        assert_eq!(out.metrics.per_reducer_bytes.len(), 2);
        assert_eq!(
            out.metrics.per_reducer_bytes.iter().sum::<u64>(),
            out.metrics.shuffle_bytes
        );
    }

    #[test]
    fn map_failures_are_retried_without_changing_output() {
        let clean = sorted_counts(word_count(&splits(), 2, FailurePlan::none()));
        let out = word_count(&splits(), 2, FailurePlan::fail_maps([0, 2]));
        assert_eq!(out.metrics.map_retries, 2);
        assert_eq!(out.metrics.reduce_retries, 0);
        assert_eq!(sorted_counts(out), clean);
    }

    #[test]
    fn reduce_failures_are_retried_without_changing_output() {
        let clean = sorted_counts(word_count(&splits(), 3, FailurePlan::none()));
        let out = word_count(&splits(), 3, FailurePlan::fail_reduces([1]));
        assert_eq!(out.metrics.reduce_retries, 1);
        assert_eq!(sorted_counts(out), clean);
    }

    #[test]
    fn sim_runtime_includes_all_components() {
        let out = word_count(&splits(), 1, FailurePlan::none());
        let m = &out.metrics;
        assert_eq!(
            m.sim_runtime,
            m.startup_time + m.broadcast_time + m.map_phase + m.shuffle_time + m.reduce_phase
        );
        assert!(m.map_phase > Duration::ZERO);
    }

    #[test]
    fn cache_bytes_charge_broadcast() {
        let cluster = ClusterConfig::test();
        let config = JobConfig::new("wc", 1).with_cache_bytes(1_000_000);
        let out = run_job(
            &cluster,
            &config,
            &splits(),
            &WcMap,
            &WcReduce,
            &HashPartitioner,
        );
        assert_eq!(out.metrics.cache_bytes, 1_000_000);
        assert!(out.metrics.broadcast_time > Duration::ZERO);
    }

    #[test]
    fn empty_input_produces_empty_output() {
        let empty: Vec<Vec<String>> = vec![vec![], vec![]];
        let out = word_count(&empty, 2, FailurePlan::none());
        assert_eq!(out.metrics.map_output_records, 0);
        assert!(out.into_flat_output().is_empty());
    }

    #[test]
    fn combiner_cuts_shuffle_without_changing_results() {
        use crate::combiner::FoldCombiner;
        let cluster = ClusterConfig::test();
        let config = JobConfig::new("wc", 2);
        let plain = run_job(
            &cluster,
            &config,
            &splits(),
            &WcMap,
            &WcReduce,
            &HashPartitioner,
        );
        let combined = run_job_with_combiner(
            &cluster,
            &config,
            &splits(),
            &WcMap,
            &WcReduce,
            &HashPartitioner,
            &FoldCombiner::new(|a: u64, b: u64| a + b),
        );
        // Split 0 holds "a b a" + "c": the duplicate 'a' combines away.
        assert!(combined.metrics.map_output_records < plain.metrics.map_output_records);
        assert!(combined.metrics.shuffle_bytes < plain.metrics.shuffle_bytes);
        let mut a = plain.into_flat_output();
        let mut b = combined.into_flat_output();
        a.sort();
        b.sort();
        assert_eq!(a, b, "combiner changed the job result");
    }

    #[test]
    fn keys_arrive_sorted_at_reducers() {
        struct OrderMap;
        struct OrderMapTask;
        impl MapTask for OrderMapTask {
            type In = u32;
            type K = u32;
            type V = u32;
            fn map(&mut self, input: &u32, out: &mut Emitter<u32, u32>) {
                out.emit(*input, *input);
            }
        }
        impl MapFactory for OrderMap {
            type Task = OrderMapTask;
            fn create(&self, _: &TaskContext) -> OrderMapTask {
                OrderMapTask
            }
        }
        struct OrderReduce;
        struct OrderReduceTask {
            last: Option<u32>,
        }
        impl ReduceTask for OrderReduceTask {
            type K = u32;
            type V = u32;
            type Out = u32;
            fn reduce(&mut self, key: u32, _values: Vec<u32>, out: &mut OutputCollector<u32>) {
                if let Some(last) = self.last {
                    assert!(key > last, "keys not sorted: {key} after {last}");
                }
                self.last = Some(key);
                out.collect(key);
            }
        }
        impl ReduceFactory for OrderReduce {
            type Task = OrderReduceTask;
            fn create(&self, _: &TaskContext) -> OrderReduceTask {
                OrderReduceTask { last: None }
            }
        }
        let splits: Vec<Vec<u32>> = vec![vec![5, 3, 9], vec![1, 7, 3]];
        let cluster = ClusterConfig::test();
        let out = run_job(
            &cluster,
            &JobConfig::new("order", 2),
            &splits,
            &OrderMap,
            &OrderReduce,
            &ModuloPartitioner,
        );
        let mut keys = out.into_flat_output();
        keys.sort_unstable();
        assert_eq!(keys, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn counters_flow_from_tasks_to_outcome() {
        struct CountingMap;
        struct CountingMapTask {
            counters: Counters,
        }
        impl MapTask for CountingMapTask {
            type In = u32;
            type K = u32;
            type V = u32;
            fn map(&mut self, input: &u32, out: &mut Emitter<u32, u32>) {
                self.counters.add("records", 1);
                out.emit(*input % 2, *input);
            }
        }
        impl MapFactory for CountingMap {
            type Task = CountingMapTask;
            fn create(&self, ctx: &TaskContext) -> CountingMapTask {
                CountingMapTask {
                    counters: ctx.counters.clone(),
                }
            }
        }
        let splits: Vec<Vec<u32>> = vec![vec![1, 2, 3], vec![4, 5]];
        let cluster = ClusterConfig::test();
        let out = run_job(
            &cluster,
            &JobConfig::new("count", 1),
            &splits,
            &CountingMap,
            &WcReduceLike,
            &ModuloPartitioner,
        );
        assert_eq!(out.counters.get("records"), 5);
    }

    struct WcReduceLike;
    struct WcReduceLikeTask;
    impl ReduceTask for WcReduceLikeTask {
        type K = u32;
        type V = u32;
        type Out = u32;
        fn reduce(&mut self, _key: u32, values: Vec<u32>, out: &mut OutputCollector<u32>) {
            out.collect(values.into_iter().sum());
        }
    }
    impl ReduceFactory for WcReduceLike {
        type Task = WcReduceLikeTask;
        fn create(&self, _: &TaskContext) -> WcReduceLikeTask {
            WcReduceLikeTask
        }
    }
}
