//! The per-task retry executor: runs attempts under a fault plan until one
//! succeeds or the retry budget is exhausted.

use std::time::{Duration, Instant};

use crate::pool::catch_attempt;

use super::plan::{FaultKind, TaskFault};
use super::retry::RetryPolicy;

/// Injection directive handed to each task attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Inject {
    /// Run normally.
    #[default]
    None,
    /// Panic partway through the input (the attempt must genuinely unwind,
    /// exercising the catch-per-attempt path in the pool).
    MidTaskPanic,
}

/// Why one attempt failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureCause {
    /// The attempt ran to completion but its output was lost (simulated
    /// node failure after the task finished).
    LostOutput,
    /// The attempt panicked (injected mid-task crash or a genuine UDF bug).
    Panic {
        /// Best-effort text of the panic payload.
        message: String,
    },
    /// The attempt made no progress and was killed by the progress-timeout
    /// detector after `timeout` of simulated time.
    Hang {
        /// The progress timeout that was waited out before the kill.
        timeout: Duration,
    },
    /// The attempt was stopped by the scheduler rather than by a fault:
    /// its job's deadline expired, or a preemption storm exhausted the
    /// re-queue budget. The work it had done is charged to
    /// `wasted_task_time`; no output survives.
    Cancelled {
        /// Why the scheduler stopped it (deadline, preemption budget).
        reason: String,
    },
}

impl std::fmt::Display for FailureCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureCause::LostOutput => f.write_str("output lost after completion"),
            FailureCause::Panic { message } => write!(f, "panicked: {message}"),
            FailureCause::Hang { timeout } => {
                write!(f, "made no progress for {timeout:?}; killed")
            }
            FailureCause::Cancelled { reason } => {
                write!(f, "cancelled by the scheduler: {reason}")
            }
        }
    }
}

/// One failed attempt in a task's history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttemptFailure {
    /// 0-based attempt number.
    pub attempt: u32,
    /// How it failed.
    pub cause: FailureCause,
    /// Real measured duration of the failed attempt.
    pub duration: Duration,
}

/// The outcome of executing one task under the retry scheduler.
pub struct TaskExecution<T> {
    /// Output of the successful attempt (`None` = budget exhausted).
    pub value: Option<T>,
    /// Real measured duration of the successful attempt.
    pub winner_duration: Duration,
    /// Attempts actually executed (≥ 1).
    pub attempts: u32,
    /// Every failed attempt, in order.
    pub failures: Vec<AttemptFailure>,
    /// Total real duration burnt by failed attempts.
    pub lost_time: Duration,
    /// Total backoff charged between attempts.
    pub backoff: Duration,
    /// Original payload of the last panic, if any — re-raised or attached
    /// to the `JobError` when the task ultimately fails.
    pub payload: Option<Box<dyn std::any::Any + Send>>,
}

impl<T> std::fmt::Debug for TaskExecution<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskExecution")
            .field("succeeded", &self.succeeded())
            .field("attempts", &self.attempts)
            .field("failures", &self.failures)
            .field("lost_time", &self.lost_time)
            .field("backoff", &self.backoff)
            .finish_non_exhaustive()
    }
}

impl<T> TaskExecution<T> {
    /// `true` iff the task ultimately succeeded.
    pub fn succeeded(&self) -> bool {
        self.value.is_some()
    }

    /// Failed attempts that were followed by a retry (the quantity the
    /// engine has always reported as `map_retries` / `reduce_retries`).
    pub fn retries(&self) -> u32 {
        self.attempts.saturating_sub(1)
    }
}

/// Runs one task under `fault` and `policy` until an attempt succeeds or
/// the budget runs out.
///
/// * The first `fault.failures` attempts fail: a [`FaultKind::LostOutput`]
///   attempt runs to completion and its output is discarded; a
///   [`FaultKind::MidTaskPanic`] attempt receives [`Inject::MidTaskPanic`]
///   and is expected to genuinely panic, which is caught per-attempt (the
///   pool and sibling tasks never observe it).
/// * Genuine (uninjected) panics from the UDF are caught the same way and
///   consume budget like injected ones, so a deterministic always-failing
///   task degrades into a structured failure, never a job-wide unwind.
/// * `replay_limit` caps how many attempts can actually run, regardless of
///   budget — the reduce phase passes the number of retained input clones
///   here, since an attempt without input cannot be replayed. `None`
///   means the input is always re-readable (map tasks).
/// * A [`FaultKind::Hang`] attempt never runs at all: the progress-timeout
///   detector waits out `hang_timeout` of simulated time, kills it, and
///   charges the whole window as lost slot time before the retry launches.
/// * Exponential backoff is charged after every failed attempt that is
///   followed by another one.
pub fn run_attempts<T>(
    fault: &TaskFault,
    policy: &RetryPolicy,
    replay_limit: Option<u32>,
    hang_timeout: Duration,
    mut run: impl FnMut(u32, Inject) -> T,
) -> TaskExecution<T> {
    let budget = policy.attempt_budget();
    let cap = replay_limit.map_or(budget, |l| l.min(budget)).max(1);
    let mut failures = Vec::new();
    let mut lost_time = Duration::ZERO;
    let mut backoff = Duration::ZERO;
    let mut payload = None;
    for attempt in 0..cap {
        let scheduled = attempt < fault.failures;
        if scheduled && fault.kind == FaultKind::Hang {
            // The attempt is wedged: nothing executes, the slot sits idle
            // until the detector declares it dead on the model clock.
            failures.push(AttemptFailure {
                attempt,
                cause: FailureCause::Hang {
                    timeout: hang_timeout,
                },
                duration: hang_timeout,
            });
            lost_time += hang_timeout;
            if attempt + 1 < cap {
                backoff += policy.backoff_after(attempt);
            }
            continue;
        }
        let inject = if scheduled && fault.kind == FaultKind::MidTaskPanic {
            Inject::MidTaskPanic
        } else {
            Inject::None
        };
        let started = Instant::now(); // xtask: allow(clock-discipline) — attempt host duration feeds winner_duration reporting only; retry/speculation decisions run on injected fault plans, not wall time
        let outcome = catch_attempt(|| run(attempt, inject));
        let duration = started.elapsed();
        match outcome {
            Ok(value) if !scheduled => {
                return TaskExecution {
                    value: Some(value),
                    winner_duration: duration,
                    attempts: attempt + 1,
                    failures,
                    lost_time,
                    backoff,
                    payload,
                };
            }
            Ok(_) => {
                // Scheduled lost-output failure: the work happened, the
                // result is gone.
                failures.push(AttemptFailure {
                    attempt,
                    cause: FailureCause::LostOutput,
                    duration,
                });
                lost_time += duration;
            }
            Err(caught) => {
                failures.push(AttemptFailure {
                    attempt,
                    cause: FailureCause::Panic {
                        message: caught.message,
                    },
                    duration,
                });
                lost_time += duration;
                payload = Some(caught.payload);
            }
        }
        if attempt + 1 < cap {
            backoff += policy.backoff_after(attempt);
        }
    }
    TaskExecution {
        value: None,
        winner_duration: Duration::ZERO,
        attempts: cap,
        failures,
        lost_time,
        backoff,
        payload,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    /// Progress timeout used by the tests — deliberately distinctive so
    /// assertions can recognize it in the charged durations.
    const HANG: Duration = Duration::from_millis(7);

    #[test]
    fn hung_attempts_never_run_and_charge_the_timeout() {
        let calls = AtomicU32::new(0);
        let exec = run_attempts(
            &TaskFault::hangs(2),
            &RetryPolicy::new(),
            None,
            HANG,
            |a, _| {
                calls.fetch_add(1, Ordering::Relaxed);
                a
            },
        );
        assert_eq!(
            calls.load(Ordering::Relaxed),
            1,
            "only the post-hang retry actually executes"
        );
        assert_eq!(exec.value, Some(2));
        assert_eq!(exec.attempts, 3);
        assert_eq!(exec.failures.len(), 2);
        assert!(exec
            .failures
            .iter()
            .all(|f| f.cause == FailureCause::Hang { timeout: HANG } && f.duration == HANG));
        assert_eq!(exec.lost_time, HANG * 2, "each kill charges the timeout");
        // Backoff after each of the two kills: 100 + 200 ms.
        assert_eq!(exec.backoff, Duration::from_millis(300));
        assert!(exec.payload.is_none(), "a hang carries no panic payload");
    }

    #[test]
    fn hangs_beyond_budget_exhaust_the_task_without_running_it() {
        let calls = AtomicU32::new(0);
        let exec = run_attempts(
            &TaskFault::hangs(10),
            &RetryPolicy::new().with_max_attempts(2),
            None,
            HANG,
            |_, _| {
                calls.fetch_add(1, Ordering::Relaxed);
                1
            },
        );
        assert!(!exec.succeeded());
        assert_eq!(calls.load(Ordering::Relaxed), 0, "every attempt hung");
        assert_eq!(exec.attempts, 2);
        assert_eq!(exec.failures.len(), 2);
        assert_eq!(exec.lost_time, HANG * 2);
    }

    #[test]
    fn healthy_task_runs_once_with_no_overheads() {
        let exec = run_attempts(
            &TaskFault::none(),
            &RetryPolicy::new(),
            None,
            HANG,
            |a, i| {
                assert_eq!((a, i), (0, Inject::None));
                7
            },
        );
        assert_eq!(exec.value, Some(7));
        assert_eq!(exec.attempts, 1);
        assert_eq!(exec.retries(), 0);
        assert!(exec.failures.is_empty());
        assert_eq!(exec.backoff, Duration::ZERO);
    }

    #[test]
    fn lost_output_failures_burn_attempts_then_succeed() {
        let calls = AtomicU32::new(0);
        let exec = run_attempts(
            &TaskFault::lost(2),
            &RetryPolicy::new(),
            None,
            HANG,
            |a, _| {
                calls.fetch_add(1, Ordering::Relaxed);
                a
            },
        );
        assert_eq!(
            calls.load(Ordering::Relaxed),
            3,
            "lost attempts still run fully"
        );
        assert_eq!(exec.value, Some(2));
        assert_eq!(exec.attempts, 3);
        assert_eq!(exec.retries(), 2);
        assert_eq!(exec.failures.len(), 2);
        assert!(exec
            .failures
            .iter()
            .all(|f| f.cause == FailureCause::LostOutput));
        // Backoff after each of the two failures: 100 + 200 ms.
        assert_eq!(exec.backoff, Duration::from_millis(300));
    }

    #[test]
    fn mid_task_panics_are_caught_and_retried() {
        let exec = run_attempts(
            &TaskFault::panics(1),
            &RetryPolicy::new(),
            None,
            HANG,
            |a, inject| {
                if inject == Inject::MidTaskPanic {
                    panic!("injected crash on attempt {a}");
                }
                "ok"
            },
        );
        assert_eq!(exec.value, Some("ok"));
        assert_eq!(exec.attempts, 2);
        assert_eq!(
            exec.failures[0].cause,
            FailureCause::Panic {
                message: "injected crash on attempt 0".into()
            }
        );
        assert!(exec.payload.is_some(), "original payload retained");
    }

    #[test]
    fn exhausted_budget_reports_structured_failure() {
        let exec = run_attempts(
            &TaskFault::none(),
            &RetryPolicy::new().with_max_attempts(3),
            None,
            HANG,
            |_, _| -> u32 { panic!("always broken") },
        );
        assert!(!exec.succeeded());
        assert_eq!(exec.attempts, 3);
        assert_eq!(exec.failures.len(), 3);
        assert!(exec.payload.is_some());
        // No backoff after the final failure — nothing follows it.
        assert_eq!(exec.backoff, Duration::from_millis(300));
    }

    #[test]
    fn replay_limit_stops_retries_early() {
        let calls = AtomicU32::new(0);
        let exec = run_attempts(
            &TaskFault::none(),
            &RetryPolicy::new(),
            Some(1),
            HANG,
            |_, _| -> u32 {
                calls.fetch_add(1, Ordering::Relaxed);
                panic!("input consumed")
            },
        );
        assert!(!exec.succeeded());
        assert_eq!(calls.load(Ordering::Relaxed), 1, "no replay without input");
        assert_eq!(exec.attempts, 1);
        assert_eq!(exec.backoff, Duration::ZERO);
    }

    #[test]
    fn injected_failures_beyond_budget_exhaust_the_task() {
        let exec = run_attempts(
            &TaskFault::lost(10),
            &RetryPolicy::new().with_max_attempts(2),
            None,
            HANG,
            |_, _| 1,
        );
        assert!(!exec.succeeded());
        assert_eq!(exec.attempts, 2);
        assert_eq!(exec.failures.len(), 2);
        assert!(
            exec.payload.is_none(),
            "lost output carries no panic payload"
        );
    }
}
