//! Structured job failure: what failed, how often, and what the job had
//! done up to that point.

use skymr_common::Counters;

use crate::cluster::JobMetrics;

use super::exec::{AttemptFailure, FailureCause};
use super::plan::TaskKind;

/// A MapReduce job aborted: one task exhausted its retry budget (or could
/// not be replayed).
///
/// Carries the failed task's identity, its full attempt history, the
/// counters accumulated by every attempt that ran, and partial metrics
/// covering the work the job completed before aborting — enough for a
/// caller to report *and* for the simulated clock to stay honest about the
/// time the failed run consumed.
pub struct JobError {
    /// Name of the job that aborted.
    pub job: String,
    /// Phase of the failed task.
    pub task: TaskKind,
    /// Index of the failed task within its phase.
    pub index: usize,
    /// How many attempts were executed before giving up.
    pub attempts: u32,
    /// Every failed attempt of the failed task, in order.
    pub history: Vec<AttemptFailure>,
    /// Counters accumulated by all attempts that ran (partial).
    pub counters: Counters,
    /// Metrics of the work completed before the abort (boxed to keep the
    /// error small on the `Result` fast path).
    pub metrics: Box<JobMetrics>,
    /// Original payload of the last panic, if the task died panicking.
    pub payload: Option<Box<dyn std::any::Any + Send>>,
}

impl JobError {
    /// Cause of the final failed attempt, as text.
    pub fn last_cause(&self) -> String {
        self.history
            .last()
            .map_or_else(|| "unknown".to_owned(), |f| f.cause.to_string())
    }

    /// `true` iff the task ultimately died panicking (as opposed to losing
    /// its output).
    pub fn died_panicking(&self) -> bool {
        matches!(
            self.history.last().map(|f| &f.cause),
            Some(FailureCause::Panic { .. })
        )
    }

    /// Re-raises the original panic payload if the task died panicking;
    /// panics with the error's own message otherwise. This is the escape
    /// hatch for callers that want pre-fault-tolerance semantics (a UDF
    /// panic unwinding out of the job), preserving the exact payload.
    pub fn resume_panic(self) -> ! {
        match self.payload {
            Some(payload) => std::panic::resume_unwind(payload),
            None => panic!("{self}"),
        }
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "job `{}` aborted: {} task {} failed {} attempt(s); last: {}",
            self.job,
            self.task,
            self.index,
            self.attempts,
            self.last_cause()
        )
    }
}

impl std::fmt::Debug for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobError")
            .field("job", &self.job)
            .field("task", &self.task)
            .field("index", &self.index)
            .field("attempts", &self.attempts)
            .field("history", &self.history)
            .field("has_payload", &self.payload.is_some())
            .finish_non_exhaustive()
    }
}

impl std::error::Error for JobError {}

impl From<JobError> for skymr_common::Error {
    fn from(err: JobError) -> Self {
        skymr_common::Error::JobFailed {
            job: err.job.clone(),
            task: err.task.name().to_owned(),
            index: err.index,
            attempts: err.attempts,
            message: err.last_cause(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample(payload: Option<Box<dyn std::any::Any + Send>>) -> JobError {
        let metrics = JobMetrics::empty("wc", 2, 1);
        JobError {
            job: "wc".into(),
            task: TaskKind::Map,
            index: 1,
            attempts: 4,
            history: vec![AttemptFailure {
                attempt: 3,
                cause: FailureCause::Panic {
                    message: "bad record".into(),
                },
                duration: Duration::from_millis(1),
            }],
            counters: Counters::new(),
            metrics: Box::new(metrics),
            payload,
        }
    }

    #[test]
    fn display_names_task_and_attempts() {
        let s = sample(None).to_string();
        assert!(s.contains("`wc`"), "{s}");
        assert!(s.contains("map task 1"), "{s}");
        assert!(s.contains("4 attempt(s)"), "{s}");
        assert!(s.contains("bad record"), "{s}");
    }

    #[test]
    fn converts_to_workspace_error() {
        let err: skymr_common::Error = sample(None).into();
        match err {
            skymr_common::Error::JobFailed {
                job,
                task,
                index,
                attempts,
                message,
            } => {
                assert_eq!((job.as_str(), task.as_str()), ("wc", "map"));
                assert_eq!((index, attempts), (1, 4));
                assert!(message.contains("bad record"));
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn resume_panic_re_raises_the_original_payload() {
        let err = sample(Some(Box::new(99_u8)));
        assert!(err.died_panicking());
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| err.resume_panic()));
        let payload = outcome.expect_err("must unwind");
        assert_eq!(payload.downcast_ref::<u8>(), Some(&99));
    }

    #[test]
    fn debug_omits_the_payload_body() {
        let dbg = format!("{:?}", sample(Some(Box::new(1_u8))));
        assert!(dbg.contains("has_payload: true"), "{dbg}");
    }
}
