//! Deterministic fault tolerance: fault injection, bounded retries with
//! exponential backoff, and speculative execution.
//!
//! The paper sells MapReduce for skyline computation on "scalability and
//! fault-tolerance" (Section 1); this module is the engine's recovery
//! story. It has three deliberately separated layers:
//!
//! * **What goes wrong** — a [`FaultPlan`] describes injected faults:
//!   repeated per-attempt task failures ([`TaskFault`], either
//!   [`FaultKind::LostOutput`] or a genuine caught-per-attempt
//!   [`FaultKind::MidTaskPanic`]), straggler slowdowns, lost shuffle
//!   partitions, and failed cache broadcasts. Plans are scripted per task
//!   or derived from a single `u64` seed ([`FaultPlan::seeded`]), so any
//!   chaotic schedule is replayable.
//! * **How the engine recovers** — a [`RetryPolicy`] bounds attempts per
//!   task and charges exponential backoff to the simulated clock; the
//!   per-task loop lives in [`run_attempts`]. A task that exhausts its
//!   budget surfaces as a structured [`JobError`] from
//!   [`crate::job::run_job`], never as a panic escaping the engine.
//!   [`SpeculationPolicy`] adds Hadoop-style backup attempts for
//!   stragglers, with a deterministic winner rule.
//! * **What it costs** — every failed attempt, backoff interval, straggler
//!   slowdown, re-execution, and speculative loser is folded into
//!   [`crate::cluster::JobMetrics`] (`attempts`, `wasted_task_time`,
//!   `speculative_wins`, `backoff_time`, and the phase makespans), so
//!   recovery work is visible in `sim_runtime` exactly like the paper's
//!   overhead accounting demands.
//!
//! Because UDFs are pure (enforced by `cargo xtask analyze`), recovery
//! never changes a job's *output* — the chaos suite (`tests/chaos.rs`)
//! asserts byte-identical results between faulty and fault-free runs of
//! every algorithm.

mod error;
mod exec;
pub(crate) mod plan;
mod retry;

pub use error::JobError;
pub use exec::{run_attempts, AttemptFailure, FailureCause, Inject, TaskExecution};
pub use plan::{
    CorruptFetch, FaultKind, FaultPlan, FaultProfile, NodeLoss, NodePartition, SeededFaults,
    TaskFault, TaskKind,
};
pub use retry::{BlacklistPolicy, FaultTolerance, RetryPolicy, SpeculationPolicy};
