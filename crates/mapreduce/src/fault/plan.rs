//! The deterministic fault model: which task attempts fail, how, and how
//! slowly straggling tasks run.
//!
//! A [`FaultPlan`] is a *pure description*: the engine resolves it per task
//! with [`FaultPlan::task_fault`] and the resolution depends only on the
//! plan, the job name, the task kind, and the task index — never on wall
//! clock, thread schedule, or execution order. Seeded plans
//! ([`FaultPlan::seeded`] / [`FaultPlan::chaos`]) expand a single `u64`
//! seed through SplitMix64, so any chaotic schedule is replayable from one
//! number.

use std::collections::{BTreeMap, BTreeSet};

/// Which phase a task belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TaskKind {
    /// A map task (one per input split).
    Map,
    /// A reduce task (one per reducer).
    Reduce,
}

impl TaskKind {
    /// Lower-case name, used in diagnostics and [`skymr_common::Error`].
    pub fn name(self) -> &'static str {
        match self {
            TaskKind::Map => "map",
            TaskKind::Reduce => "reduce",
        }
    }
}

impl std::fmt::Display for TaskKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How an injected attempt failure manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultKind {
    /// The attempt runs to completion, then its output is lost (simulated
    /// node failure after the task finished) — the pre-existing behaviour
    /// of the old `FailurePlan`.
    #[default]
    LostOutput,
    /// The attempt panics halfway through its input (simulated mid-task
    /// crash). The panic is caught per-attempt in the worker pool and
    /// converted into a task failure, so sibling tasks are unaffected.
    MidTaskPanic,
}

/// The injected faults of a single task, resolved from a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskFault {
    /// How many leading attempts fail (0 = healthy task). Bounded at run
    /// time by the job's retry budget.
    pub failures: u32,
    /// How those attempts fail.
    pub kind: FaultKind,
    /// Straggler slowdown factor applied to the *modeled* duration of
    /// every regular attempt of this task (`1.0` = healthy node). A
    /// speculative backup attempt runs at full speed.
    pub slowdown: f64,
}

impl TaskFault {
    /// A healthy task: no failures, no slowdown.
    pub fn none() -> Self {
        Self {
            failures: 0,
            kind: FaultKind::LostOutput,
            slowdown: 1.0,
        }
    }

    /// `n` lost-output failures.
    pub fn lost(n: u32) -> Self {
        Self {
            failures: n,
            ..Self::none()
        }
    }

    /// `n` mid-task panics.
    pub fn panics(n: u32) -> Self {
        Self {
            failures: n,
            kind: FaultKind::MidTaskPanic,
            slowdown: 1.0,
        }
    }

    /// A straggler running `factor`× slower than a healthy node.
    pub fn straggler(factor: f64) -> Self {
        Self {
            slowdown: factor.max(1.0),
            ..Self::none()
        }
    }

    /// This fault, additionally straggling by `factor`.
    pub fn with_slowdown(mut self, factor: f64) -> Self {
        self.slowdown = factor.max(1.0);
        self
    }

    /// `true` iff the task is completely healthy.
    pub fn is_none(&self) -> bool {
        self.failures == 0 && self.slowdown <= 1.0
    }
}

impl Default for TaskFault {
    fn default() -> Self {
        Self::none()
    }
}

/// Fault rates for seeded plans, in permille (0–1000) so profiles stay
/// `Eq`-comparable and platform-independent.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultProfile {
    /// Chance a task has injected attempt failures at all.
    pub task_fault_permille: u32,
    /// Faulty tasks fail `1..=max_failures_per_task` attempts (uniform).
    pub max_failures_per_task: u32,
    /// Of the faulty tasks, the fraction that crash mid-task instead of
    /// losing their finished output.
    pub mid_task_permille: u32,
    /// Chance a task runs on a straggling node.
    pub straggler_permille: u32,
    /// Slowdown factor of straggling nodes.
    pub straggler_slowdown: f64,
    /// Chance each (map task, reducer) shuffle partition is lost after the
    /// map phase, forcing a re-execution of that map task.
    pub lost_partition_permille: u32,
    /// Chance the distributed-cache broadcast fails (and is re-charged).
    pub broadcast_fail_permille: u32,
}

impl Default for FaultProfile {
    /// A moderately hostile cluster: roughly a quarter of tasks fail once
    /// or twice, stragglers run 8× slow, and a few shuffle partitions and
    /// broadcasts are lost. Failure counts stay below the default retry
    /// budget, so jobs always recover.
    fn default() -> Self {
        Self {
            task_fault_permille: 250,
            max_failures_per_task: 2,
            mid_task_permille: 500,
            straggler_permille: 150,
            straggler_slowdown: 8.0,
            lost_partition_permille: 50,
            broadcast_fail_permille: 200,
        }
    }
}

/// Seeded (random but replayable) fault generation.
#[derive(Debug, Clone, PartialEq)]
pub struct SeededFaults {
    /// The master seed every decision derives from.
    pub seed: u64,
    /// The fault rates.
    pub profile: FaultProfile,
}

/// A deterministic fault-injection plan for one job (or a whole pipeline
/// of jobs — per-job decisions are salted with the job name).
///
/// Generalizes the old `FailurePlan` (which could only discard a task's
/// first completed attempt): scripted per-task faults with repeat counts,
/// mid-task panics, straggler slowdowns, lost shuffle partitions, failed
/// cache broadcasts, and a seeded random layer on top.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Scripted per-map-task faults (override the seeded layer).
    pub map_faults: BTreeMap<usize, TaskFault>,
    /// Scripted per-reduce-task faults (override the seeded layer).
    pub reduce_faults: BTreeMap<usize, TaskFault>,
    /// Scripted lost shuffle partitions, as `(map task, reducer)` pairs.
    pub lost_partitions: BTreeSet<(usize, usize)>,
    /// Scripted failed broadcast attempts before the cache lands.
    pub broadcast_failures: u32,
    /// Seeded random faults layered under the scripted ones.
    pub seeded: Option<SeededFaults>,
    /// Restrict the whole plan to jobs with this exact name (`None` = the
    /// plan applies to every job it is handed to).
    pub job_filter: Option<String>,
}

impl FaultPlan {
    /// A plan with no injected faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Loses the first completed attempt of the given map tasks — the old
    /// `FailurePlan::fail_maps` semantics.
    pub fn fail_maps(indices: impl IntoIterator<Item = usize>) -> Self {
        Self {
            map_faults: indices
                .into_iter()
                .map(|i| (i, TaskFault::lost(1)))
                .collect(),
            ..Self::default()
        }
    }

    /// Loses the first completed attempt of the given reduce tasks.
    pub fn fail_reduces(indices: impl IntoIterator<Item = usize>) -> Self {
        Self {
            reduce_faults: indices
                .into_iter()
                .map(|i| (i, TaskFault::lost(1)))
                .collect(),
            ..Self::default()
        }
    }

    /// A seeded random plan with the default [`FaultProfile`].
    pub fn seeded(seed: u64) -> Self {
        Self::chaos(seed, FaultProfile::default())
    }

    /// A seeded random plan with explicit rates.
    pub fn chaos(seed: u64, profile: FaultProfile) -> Self {
        Self {
            seeded: Some(SeededFaults { seed, profile }),
            ..Self::default()
        }
    }

    /// Adds a scripted fault for map task `index`.
    pub fn with_map_fault(mut self, index: usize, fault: TaskFault) -> Self {
        self.map_faults.insert(index, fault);
        self
    }

    /// Adds a scripted fault for reduce task `index`.
    pub fn with_reduce_fault(mut self, index: usize, fault: TaskFault) -> Self {
        self.reduce_faults.insert(index, fault);
        self
    }

    /// Loses the shuffle partition from map task `map_index` to reducer
    /// `reducer` after the map phase completes.
    pub fn with_lost_partition(mut self, map_index: usize, reducer: usize) -> Self {
        self.lost_partitions.insert((map_index, reducer));
        self
    }

    /// Fails the distributed-cache broadcast `n` times before it succeeds.
    pub fn with_broadcast_failures(mut self, n: u32) -> Self {
        self.broadcast_failures = n;
        self
    }

    /// Restricts the plan to jobs named `job` (pipelines run several jobs
    /// through one config; this targets a single stage).
    pub fn for_job(mut self, job: impl Into<String>) -> Self {
        self.job_filter = Some(job.into());
        self
    }

    /// `true` iff the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.map_faults.is_empty()
            && self.reduce_faults.is_empty()
            && self.lost_partitions.is_empty()
            && self.broadcast_failures == 0
            && self.seeded.is_none()
    }

    fn applies_to(&self, job: &str) -> bool {
        self.job_filter.as_deref().map_or(true, |f| f == job)
    }

    /// Resolves the fault of one task. Scripted faults win over the seeded
    /// layer; healthy tasks get [`TaskFault::none`].
    pub fn task_fault(&self, job: &str, kind: TaskKind, index: usize) -> TaskFault {
        if !self.applies_to(job) {
            return TaskFault::none();
        }
        let scripted = match kind {
            TaskKind::Map => self.map_faults.get(&index),
            TaskKind::Reduce => self.reduce_faults.get(&index),
        };
        if let Some(fault) = scripted {
            return *fault;
        }
        let Some(seeded) = &self.seeded else {
            return TaskFault::none();
        };
        derive_task_fault(seeded, job, kind, index)
    }

    /// All lost shuffle partitions of a job with `m` map and `r` reduce
    /// tasks (scripted pairs out of range are ignored).
    pub fn lost_partitions_for(&self, job: &str, m: usize, r: usize) -> Vec<(usize, usize)> {
        if !self.applies_to(job) {
            return Vec::new();
        }
        let mut lost: BTreeSet<(usize, usize)> = self
            .lost_partitions
            .iter()
            .copied()
            .filter(|&(i, j)| i < m && j < r)
            .collect();
        if let Some(seeded) = &self.seeded {
            let rate = seeded.profile.lost_partition_permille;
            for i in 0..m {
                for j in 0..r {
                    let h = decision(seeded.seed, job, 0xC4A5, i as u64, j as u64);
                    if permille(h) < rate {
                        lost.insert((i, j));
                    }
                }
            }
        }
        lost.into_iter().collect()
    }

    /// How many times the distributed-cache broadcast fails for `job`.
    pub fn broadcast_failures_for(&self, job: &str) -> u32 {
        if !self.applies_to(job) {
            return 0;
        }
        let mut n = self.broadcast_failures;
        if let Some(seeded) = &self.seeded {
            let h = decision(seeded.seed, job, 0xB04D, 0, 0);
            if permille(h) < seeded.profile.broadcast_fail_permille {
                n += 1 + (splitmix64_once(h) % 2) as u32;
            }
        }
        n
    }
}

fn derive_task_fault(seeded: &SeededFaults, job: &str, kind: TaskKind, index: usize) -> TaskFault {
    let p = &seeded.profile;
    let salt = match kind {
        TaskKind::Map => 0x5EED_0001,
        TaskKind::Reduce => 0x5EED_0002,
    };
    let h = decision(seeded.seed, job, salt, index as u64, 0);
    let (h, fail_draw) = next(h);
    let (h, count_draw) = next(h);
    let (h, kind_draw) = next(h);
    let (_, straggle_draw) = next(h);
    let failures = if permille(fail_draw) < p.task_fault_permille {
        let span = u64::from(p.max_failures_per_task.max(1));
        1 + (count_draw % span) as u32 // xtask: allow(panic-reachability) — span is clamped to >= 1 above
    } else {
        0
    };
    let kind = if permille(kind_draw) < p.mid_task_permille {
        FaultKind::MidTaskPanic
    } else {
        FaultKind::LostOutput
    };
    let slowdown = if permille(straggle_draw) < p.straggler_permille {
        p.straggler_slowdown.max(1.0)
    } else {
        1.0
    };
    TaskFault {
        failures,
        kind,
        slowdown,
    }
}

/// FNV-1a over the job name, folded with the structured coordinates, then
/// finalized with one SplitMix64 round — a pure function of its inputs,
/// identical on every platform and run.
fn decision(seed: u64, job: &str, salt: u64, a: u64, b: u64) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in job.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    for word in [seed, salt, a, b] {
        h ^= word;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    splitmix64_once(h)
}

fn next(state: u64) -> (u64, u64) {
    let out = splitmix64_once(state);
    (state.wrapping_add(0x9E37_79B9_7F4A_7C15), out)
}

fn permille(h: u64) -> u32 {
    (h % 1000) as u32
}

/// One SplitMix64 finalization round.
fn splitmix64_once(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_empty() {
        assert!(FaultPlan::none().is_empty());
        assert!(!FaultPlan::seeded(1).is_empty());
        assert!(!FaultPlan::none().with_broadcast_failures(1).is_empty());
    }

    #[test]
    fn scripted_constructors_mirror_the_old_failure_plan() {
        let p = FaultPlan::fail_maps([0, 2]);
        assert_eq!(p.task_fault("j", TaskKind::Map, 0), TaskFault::lost(1));
        assert_eq!(p.task_fault("j", TaskKind::Map, 1), TaskFault::none());
        assert_eq!(p.task_fault("j", TaskKind::Map, 2), TaskFault::lost(1));
        assert_eq!(p.task_fault("j", TaskKind::Reduce, 0), TaskFault::none());
        let p = FaultPlan::fail_reduces([1]);
        assert_eq!(p.task_fault("j", TaskKind::Reduce, 1), TaskFault::lost(1));
        assert!(!p.is_empty());
    }

    #[test]
    fn job_filter_gates_every_channel() {
        let p = FaultPlan::fail_maps([0])
            .with_lost_partition(0, 0)
            .with_broadcast_failures(2)
            .for_job("skyline");
        assert_eq!(
            p.task_fault("skyline", TaskKind::Map, 0),
            TaskFault::lost(1)
        );
        assert_eq!(
            p.task_fault("bitstring", TaskKind::Map, 0),
            TaskFault::none()
        );
        assert_eq!(p.lost_partitions_for("skyline", 2, 2), vec![(0, 0)]);
        assert!(p.lost_partitions_for("bitstring", 2, 2).is_empty());
        assert_eq!(p.broadcast_failures_for("skyline"), 2);
        assert_eq!(p.broadcast_failures_for("bitstring"), 0);
    }

    #[test]
    fn scripted_faults_override_the_seeded_layer() {
        let mut p = FaultPlan::seeded(7);
        p.map_faults.insert(3, TaskFault::panics(2));
        assert_eq!(p.task_fault("j", TaskKind::Map, 3), TaskFault::panics(2));
    }

    #[test]
    fn seeded_resolution_is_deterministic_and_seed_sensitive() {
        let a = FaultPlan::seeded(42);
        let b = FaultPlan::seeded(42);
        let c = FaultPlan::seeded(43);
        let faults = |p: &FaultPlan| -> Vec<TaskFault> {
            (0..64)
                .map(|i| p.task_fault("wc", TaskKind::Map, i))
                .collect()
        };
        assert_eq!(faults(&a), faults(&b), "same seed, same plan");
        assert_ne!(faults(&a), faults(&c), "different seeds diverge");
        assert_eq!(
            a.lost_partitions_for("wc", 8, 8),
            b.lost_partitions_for("wc", 8, 8)
        );
        assert_eq!(
            a.broadcast_failures_for("wc"),
            b.broadcast_failures_for("wc")
        );
    }

    #[test]
    fn seeded_faults_vary_across_jobs_tasks_and_kinds() {
        let p = FaultPlan::seeded(11);
        let per_job: Vec<TaskFault> = (0..64)
            .map(|i| p.task_fault("a", TaskKind::Map, i))
            .collect();
        let other_job: Vec<TaskFault> = (0..64)
            .map(|i| p.task_fault("b", TaskKind::Map, i))
            .collect();
        assert_ne!(per_job, other_job, "job name salts the decisions");
        let reduces: Vec<TaskFault> = (0..64)
            .map(|i| p.task_fault("a", TaskKind::Reduce, i))
            .collect();
        assert_ne!(per_job, reduces, "task kind salts the decisions");
    }

    #[test]
    fn seeded_rates_are_respected_in_aggregate() {
        let p = FaultPlan::seeded(5);
        let profile = FaultProfile::default();
        let mut faulty = 0usize;
        let mut over_budget = 0usize;
        for i in 0..2000 {
            let f = p.task_fault("rates", TaskKind::Map, i);
            if f.failures > 0 {
                faulty += 1;
            }
            if f.failures > profile.max_failures_per_task {
                over_budget += 1;
            }
        }
        assert_eq!(over_budget, 0, "failure counts bounded by the profile");
        // 25% ± a generous tolerance over 2000 draws.
        assert!((300..700).contains(&faulty), "faulty tasks: {faulty}");
    }

    #[test]
    fn lost_partitions_respect_bounds() {
        let p = FaultPlan::none()
            .with_lost_partition(5, 0)
            .with_lost_partition(0, 9);
        assert!(p.lost_partitions_for("j", 3, 3).is_empty());
        let p = FaultPlan::none().with_lost_partition(1, 2);
        assert_eq!(p.lost_partitions_for("j", 2, 3), vec![(1, 2)]);
    }

    #[test]
    fn straggler_builder_clamps_to_at_least_one() {
        assert_eq!(TaskFault::straggler(0.25).slowdown, 1.0);
        assert_eq!(TaskFault::straggler(4.0).slowdown, 4.0);
        assert!(TaskFault::straggler(4.0).with_slowdown(0.0).is_none());
    }
}
