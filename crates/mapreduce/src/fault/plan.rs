//! The deterministic fault model: which task attempts fail, how, and how
//! slowly straggling tasks run.
//!
//! A [`FaultPlan`] is a *pure description*: the engine resolves it per task
//! with [`FaultPlan::task_fault`] and the resolution depends only on the
//! plan, the job name, the task kind, and the task index — never on wall
//! clock, thread schedule, or execution order. Seeded plans
//! ([`FaultPlan::seeded`] / [`FaultPlan::chaos`]) expand a single `u64`
//! seed through SplitMix64, so any chaotic schedule is replayable from one
//! number.

use std::collections::{BTreeMap, BTreeSet};

/// Which phase a task belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TaskKind {
    /// A map task (one per input split).
    Map,
    /// A reduce task (one per reducer).
    Reduce,
}

impl TaskKind {
    /// Lower-case name, used in diagnostics and [`skymr_common::Error`].
    pub fn name(self) -> &'static str {
        match self {
            TaskKind::Map => "map",
            TaskKind::Reduce => "reduce",
        }
    }
}

impl std::fmt::Display for TaskKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How an injected attempt failure manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultKind {
    /// The attempt runs to completion, then its output is lost (simulated
    /// node failure after the task finished) — the pre-existing behaviour
    /// of the old `FailurePlan`.
    #[default]
    LostOutput,
    /// The attempt panics halfway through its input (simulated mid-task
    /// crash). The panic is caught per-attempt in the worker pool and
    /// converted into a task failure, so sibling tasks are unaffected.
    MidTaskPanic,
    /// The attempt stops making progress forever (a wedged JVM, a stuck
    /// NFS mount). It never runs; the progress-timeout detector kills it
    /// after [`crate::ClusterConfig::progress_timeout`] on the simulated
    /// clock, and the retry path takes over.
    Hang,
}

/// The injected faults of a single task, resolved from a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskFault {
    /// How many leading attempts fail (0 = healthy task). Bounded at run
    /// time by the job's retry budget.
    pub failures: u32,
    /// How those attempts fail.
    pub kind: FaultKind,
    /// Straggler slowdown factor applied to the *modeled* duration of
    /// every regular attempt of this task (`1.0` = healthy node). A
    /// speculative backup attempt runs at full speed.
    pub slowdown: f64,
}

impl TaskFault {
    /// A healthy task: no failures, no slowdown.
    pub fn none() -> Self {
        Self {
            failures: 0,
            kind: FaultKind::LostOutput,
            slowdown: 1.0,
        }
    }

    /// `n` lost-output failures.
    pub fn lost(n: u32) -> Self {
        Self {
            failures: n,
            ..Self::none()
        }
    }

    /// `n` mid-task panics.
    pub fn panics(n: u32) -> Self {
        Self {
            failures: n,
            kind: FaultKind::MidTaskPanic,
            slowdown: 1.0,
        }
    }

    /// `n` hung attempts (killed by the progress timeout).
    pub fn hangs(n: u32) -> Self {
        Self {
            failures: n,
            kind: FaultKind::Hang,
            slowdown: 1.0,
        }
    }

    /// A straggler running `factor`× slower than a healthy node.
    pub fn straggler(factor: f64) -> Self {
        Self {
            slowdown: factor.max(1.0),
            ..Self::none()
        }
    }

    /// This fault, additionally straggling by `factor`.
    pub fn with_slowdown(mut self, factor: f64) -> Self {
        self.slowdown = factor.max(1.0);
        self
    }

    /// `true` iff the task is completely healthy.
    pub fn is_none(&self) -> bool {
        self.failures == 0 && self.slowdown <= 1.0
    }
}

impl Default for TaskFault {
    fn default() -> Self {
        Self::none()
    }
}

/// A node dying for good at a point on the simulated clock.
///
/// `at_tick` is in model ticks (microseconds of simulated time) from the
/// start of the job's map phase. When the loss lands after the map phase
/// it is clamped to the shuffle barrier — the moment the shuffle discovers
/// the dead node's materialized map outputs are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct NodeLoss {
    /// Model tick (relative to the map phase start) at which the node's
    /// last heartbeat is sent. Ordered first so scripted losses sort by
    /// time, then node.
    pub at_tick: u64,
    /// The dying node.
    pub node: usize,
}

/// A node unreachable for a bounded window (a network partition). The
/// node's materialized outputs survive, but the shuffle stalls for the
/// window's duration while reducers wait to pull from it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct NodePartition {
    /// Model tick at which the node becomes unreachable.
    pub at_tick: u64,
    /// How long the node stays unreachable, in model ticks.
    pub for_ticks: u64,
    /// The partitioned node.
    pub node: usize,
}

/// Hash salt for seeded node-loss decisions.
const NODE_LOSS_SALT: u64 = 0x4E0D_E001;
/// Hash salt for seeded node-partition decisions.
const NODE_PART_SALT: u64 = 0x4E0D_E002;
/// Hash salt for seeded shuffle-frame corruption decisions (and the bit
/// position the flip lands on).
const CORRUPT_SALT: u64 = 0xDA7A_0001;

/// One shuffle partition whose fetched frame bytes arrive corrupted, as
/// resolved from a [`FaultPlan`].
///
/// `fetches` is how many consecutive fetch attempts deliver a corrupted
/// frame: `1` models a transient transfer error (the re-fetch succeeds);
/// `2` or more models at-rest corruption of the materialized map output —
/// the re-fetch fails too, and the engine re-executes the producing map
/// task. `bit_seed` picks the flipped bit deterministically
/// (`bit_seed % (frame_len * 8)`), so the corruption is replayable
/// bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorruptFetch {
    /// Producing map task.
    pub map: usize,
    /// Fetching reducer.
    pub reducer: usize,
    /// Consecutive fetch attempts that deliver corrupted bytes.
    pub fetches: u32,
    /// Seed for the flipped bit position within the encoded frame.
    pub bit_seed: u64,
}

/// Fault rates for seeded plans, in permille (0–1000) so profiles stay
/// `Eq`-comparable and platform-independent.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultProfile {
    /// Chance a task has injected attempt failures at all.
    pub task_fault_permille: u32,
    /// Faulty tasks fail `1..=max_failures_per_task` attempts (uniform).
    pub max_failures_per_task: u32,
    /// Of the faulty tasks, the fraction that crash mid-task instead of
    /// losing their finished output.
    pub mid_task_permille: u32,
    /// Chance a task runs on a straggling node.
    pub straggler_permille: u32,
    /// Slowdown factor of straggling nodes.
    pub straggler_slowdown: f64,
    /// Chance each (map task, reducer) shuffle partition is lost after the
    /// map phase, forcing a re-execution of that map task.
    pub lost_partition_permille: u32,
    /// Chance the distributed-cache broadcast fails (and is re-charged).
    pub broadcast_fail_permille: u32,
    /// Chance each node dies during the job (requires a
    /// [`Placement`](crate::Placement) on the cluster to have any effect).
    /// Zero in [`FaultProfile::default`], so pre-existing seeded plans
    /// replay bit-for-bit.
    pub node_loss_permille: u32,
    /// Chance each node suffers a transient network partition that stalls
    /// the shuffle. Zero in the default profile.
    pub node_partition_permille: u32,
    /// Chance each (map task, reducer) shuffle frame arrives corrupted at
    /// the fetching reducer (checksum verification catches it). Zero in
    /// the default profile, so pre-existing seeded plans replay
    /// bit-for-bit.
    pub corrupt_shuffle_permille: u32,
    /// Of the faulty tasks, the fraction whose failed attempts *hang*
    /// (no progress until the progress-timeout kill) instead of failing
    /// per their drawn kind. Zero in the default profile.
    pub hang_permille: u32,
}

impl Default for FaultProfile {
    /// A moderately hostile cluster: roughly a quarter of tasks fail once
    /// or twice, stragglers run 8× slow, and a few shuffle partitions and
    /// broadcasts are lost. Failure counts stay below the default retry
    /// budget, so jobs always recover.
    fn default() -> Self {
        Self {
            task_fault_permille: 250,
            max_failures_per_task: 2,
            mid_task_permille: 500,
            straggler_permille: 150,
            straggler_slowdown: 8.0,
            lost_partition_permille: 50,
            broadcast_fail_permille: 200,
            node_loss_permille: 0,
            node_partition_permille: 0,
            corrupt_shuffle_permille: 0,
            hang_permille: 0,
        }
    }
}

impl FaultProfile {
    /// A node-hostile cluster: machines die and partition, but task-level
    /// faults are rare — the profile behind [`FaultPlan::chaos_nodes`],
    /// aimed at exercising map-output re-execution rather than retries.
    pub fn nodes() -> Self {
        Self {
            task_fault_permille: 50,
            max_failures_per_task: 1,
            mid_task_permille: 500,
            straggler_permille: 0,
            straggler_slowdown: 1.0,
            lost_partition_permille: 0,
            broadcast_fail_permille: 0,
            node_loss_permille: 400,
            node_partition_permille: 200,
            corrupt_shuffle_permille: 0,
            hang_permille: 0,
        }
    }

    /// A data-hostile cluster: shuffle frames arrive corrupted and task
    /// attempts wedge, but machines stay up — the profile behind
    /// [`FaultPlan::chaos_data`], aimed at exercising checksum
    /// verification, re-fetch, map re-execution, and the progress-timeout
    /// kill path.
    pub fn data() -> Self {
        Self {
            task_fault_permille: 150,
            max_failures_per_task: 1,
            mid_task_permille: 500,
            straggler_permille: 0,
            straggler_slowdown: 1.0,
            lost_partition_permille: 0,
            broadcast_fail_permille: 0,
            node_loss_permille: 0,
            node_partition_permille: 0,
            corrupt_shuffle_permille: 250,
            hang_permille: 400,
        }
    }
}

/// Seeded (random but replayable) fault generation.
#[derive(Debug, Clone, PartialEq)]
pub struct SeededFaults {
    /// The master seed every decision derives from.
    pub seed: u64,
    /// The fault rates.
    pub profile: FaultProfile,
}

/// A deterministic fault-injection plan for one job (or a whole pipeline
/// of jobs — per-job decisions are salted with the job name).
///
/// Generalizes the old `FailurePlan` (which could only discard a task's
/// first completed attempt): scripted per-task faults with repeat counts,
/// mid-task panics, straggler slowdowns, lost shuffle partitions, failed
/// cache broadcasts, and a seeded random layer on top.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Scripted per-map-task faults (override the seeded layer).
    pub map_faults: BTreeMap<usize, TaskFault>,
    /// Scripted per-reduce-task faults (override the seeded layer).
    pub reduce_faults: BTreeMap<usize, TaskFault>,
    /// Scripted lost shuffle partitions, as `(map task, reducer)` pairs.
    pub lost_partitions: BTreeSet<(usize, usize)>,
    /// Scripted corrupted shuffle fetches: `(map task, reducer)` → how
    /// many consecutive fetches deliver corrupted frame bytes.
    pub corrupt_shuffle: BTreeMap<(usize, usize), u32>,
    /// Scripted poisoned input records, as `(map task, record index)`
    /// pairs: the mapper's UDF deterministically panics on that record,
    /// on every attempt. Scripted-only — a poisoned record changes the
    /// job's output under skip-bad-records, so it never rides the seeded
    /// layer.
    pub poison_records: BTreeSet<(usize, usize)>,
    /// Scripted failed broadcast attempts before the cache lands.
    pub broadcast_failures: u32,
    /// Scripted node deaths (ignored unless the cluster has a placement).
    pub node_losses: Vec<NodeLoss>,
    /// Scripted transient node partitions.
    pub node_partitions: Vec<NodePartition>,
    /// Seeded random faults layered under the scripted ones.
    pub seeded: Option<SeededFaults>,
    /// Restrict the whole plan to jobs with this exact name (`None` = the
    /// plan applies to every job it is handed to).
    pub job_filter: Option<String>,
}

impl FaultPlan {
    /// A plan with no injected faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Loses the first completed attempt of the given map tasks — the old
    /// `FailurePlan::fail_maps` semantics.
    pub fn fail_maps(indices: impl IntoIterator<Item = usize>) -> Self {
        Self {
            map_faults: indices
                .into_iter()
                .map(|i| (i, TaskFault::lost(1)))
                .collect(),
            ..Self::default()
        }
    }

    /// Loses the first completed attempt of the given reduce tasks.
    pub fn fail_reduces(indices: impl IntoIterator<Item = usize>) -> Self {
        Self {
            reduce_faults: indices
                .into_iter()
                .map(|i| (i, TaskFault::lost(1)))
                .collect(),
            ..Self::default()
        }
    }

    /// A seeded random plan with the default [`FaultProfile`].
    pub fn seeded(seed: u64) -> Self {
        Self::chaos(seed, FaultProfile::default())
    }

    /// A seeded random plan with explicit rates.
    pub fn chaos(seed: u64, profile: FaultProfile) -> Self {
        Self {
            seeded: Some(SeededFaults { seed, profile }),
            ..Self::default()
        }
    }

    /// A seeded node-hostile plan ([`FaultProfile::nodes`]): machines die
    /// and partition, forcing map-output re-execution and shuffle stalls.
    pub fn chaos_nodes(seed: u64) -> Self {
        Self::chaos(seed, FaultProfile::nodes())
    }

    /// A seeded data-hostile plan ([`FaultProfile::data`]): shuffle frames
    /// corrupt in flight and at rest, and task attempts hang until the
    /// progress timeout kills them.
    pub fn chaos_data(seed: u64) -> Self {
        Self::chaos(seed, FaultProfile::data())
    }

    /// Adds a scripted fault for map task `index`.
    pub fn with_map_fault(mut self, index: usize, fault: TaskFault) -> Self {
        self.map_faults.insert(index, fault);
        self
    }

    /// Adds a scripted fault for reduce task `index`.
    pub fn with_reduce_fault(mut self, index: usize, fault: TaskFault) -> Self {
        self.reduce_faults.insert(index, fault);
        self
    }

    /// Loses the shuffle partition from map task `map_index` to reducer
    /// `reducer` after the map phase completes.
    pub fn with_lost_partition(mut self, map_index: usize, reducer: usize) -> Self {
        self.lost_partitions.insert((map_index, reducer));
        self
    }

    /// Corrupts the shuffle frame from map task `map_index` to reducer
    /// `reducer` for `fetches` consecutive fetch attempts: `1` is a
    /// transient transfer error (the re-fetch succeeds), `2` or more is
    /// at-rest corruption (the producing map task re-executes).
    pub fn with_corrupt_shuffle(mut self, map_index: usize, reducer: usize, fetches: u32) -> Self {
        self.corrupt_shuffle.insert((map_index, reducer), fetches);
        self
    }

    /// Poisons record `record` of map task `map_index`'s split: the UDF
    /// deterministically panics there on every attempt. Without
    /// skip-bad-records the task exhausts its retry budget and the job
    /// aborts; with it, the engine narrows to the record and skips it.
    pub fn with_poison_record(mut self, map_index: usize, record: usize) -> Self {
        self.poison_records.insert((map_index, record));
        self
    }

    /// Fails the distributed-cache broadcast `n` times before it succeeds.
    pub fn with_broadcast_failures(mut self, n: u32) -> Self {
        self.broadcast_failures = n;
        self
    }

    /// Kills `node` at `at_tick` model ticks into the job's map phase.
    /// Only effective when the cluster has a [`Placement`](crate::Placement).
    pub fn with_node_loss(mut self, node: usize, at_tick: u64) -> Self {
        self.node_losses.push(NodeLoss { at_tick, node });
        self
    }

    /// Makes `node` unreachable for `for_ticks` model ticks starting at
    /// `at_tick`, stalling the shuffle by the window's duration.
    pub fn with_node_partition(mut self, node: usize, at_tick: u64, for_ticks: u64) -> Self {
        self.node_partitions.push(NodePartition {
            at_tick,
            for_ticks,
            node,
        });
        self
    }

    /// Restricts the plan to jobs named `job` (pipelines run several jobs
    /// through one config; this targets a single stage).
    pub fn for_job(mut self, job: impl Into<String>) -> Self {
        self.job_filter = Some(job.into());
        self
    }

    /// `true` iff the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.map_faults.is_empty()
            && self.reduce_faults.is_empty()
            && self.lost_partitions.is_empty()
            && self.corrupt_shuffle.is_empty()
            && self.poison_records.is_empty()
            && self.broadcast_failures == 0
            && self.node_losses.is_empty()
            && self.node_partitions.is_empty()
            && self.seeded.is_none()
    }

    fn applies_to(&self, job: &str) -> bool {
        self.job_filter.as_deref().map_or(true, |f| f == job)
    }

    /// Resolves the fault of one task. Scripted faults win over the seeded
    /// layer; healthy tasks get [`TaskFault::none`].
    pub fn task_fault(&self, job: &str, kind: TaskKind, index: usize) -> TaskFault {
        if !self.applies_to(job) {
            return TaskFault::none();
        }
        let scripted = match kind {
            TaskKind::Map => self.map_faults.get(&index),
            TaskKind::Reduce => self.reduce_faults.get(&index),
        };
        if let Some(fault) = scripted {
            return *fault;
        }
        let Some(seeded) = &self.seeded else {
            return TaskFault::none();
        };
        derive_task_fault(seeded, job, kind, index)
    }

    /// All lost shuffle partitions of a job with `m` map and `r` reduce
    /// tasks (scripted pairs out of range are ignored).
    pub fn lost_partitions_for(&self, job: &str, m: usize, r: usize) -> Vec<(usize, usize)> {
        if !self.applies_to(job) {
            return Vec::new();
        }
        let mut lost: BTreeSet<(usize, usize)> = self
            .lost_partitions
            .iter()
            .copied()
            .filter(|&(i, j)| i < m && j < r)
            .collect();
        if let Some(seeded) = &self.seeded {
            let rate = seeded.profile.lost_partition_permille;
            for i in 0..m {
                for j in 0..r {
                    let h = decision(seeded.seed, job, 0xC4A5, i as u64, j as u64);
                    if permille(h) < rate {
                        lost.insert((i, j));
                    }
                }
            }
        }
        lost.into_iter().collect()
    }

    /// All corrupted shuffle fetches of a job with `m` map and `r` reduce
    /// tasks: scripted entries (which override the seeded layer per
    /// partition) plus seeded draws, sorted by `(map, reducer)`. The bit
    /// the flip lands on is itself a pure function of the decision hash,
    /// so a corrupted frame is byte-identical across replays.
    pub fn corrupt_fetches_for(&self, job: &str, m: usize, r: usize) -> Vec<CorruptFetch> {
        if !self.applies_to(job) {
            return Vec::new();
        }
        let mut by_key: BTreeMap<(usize, usize), (u32, u64)> = BTreeMap::new();
        if let Some(seeded) = &self.seeded {
            let rate = seeded.profile.corrupt_shuffle_permille;
            if rate > 0 {
                for i in 0..m {
                    for j in 0..r {
                        let h = decision(seeded.seed, job, CORRUPT_SALT, i as u64, j as u64);
                        if permille(h) < rate {
                            let (h, count_draw) = next(h);
                            let (_, bit_draw) = next(h);
                            by_key.insert((i, j), (1 + (count_draw % 2) as u32, bit_draw));
                        }
                    }
                }
            }
        }
        for (&(i, j), &fetches) in &self.corrupt_shuffle {
            if i < m && j < r && fetches > 0 {
                // Scripted plans may have no seed; the bit position still
                // has to be deterministic, so derive it from the partition
                // coordinates alone.
                let bit_seed = decision(0xDA7A, job, CORRUPT_SALT, i as u64, j as u64);
                by_key.insert((i, j), (fetches, bit_seed));
            }
        }
        by_key
            .into_iter()
            .map(|((map, reducer), (fetches, bit_seed))| CorruptFetch {
                map,
                reducer,
                fetches,
                bit_seed,
            })
            .collect()
    }

    /// The poisoned record indices of map task `map_index`'s split, in
    /// increasing order (scripted-only; the seeded layer never poisons).
    pub fn poison_records_for(&self, job: &str, map_index: usize) -> Vec<usize> {
        if !self.applies_to(job) {
            return Vec::new();
        }
        self.poison_records
            .iter()
            .filter(|&&(i, _)| i == map_index)
            .map(|&(_, record)| record)
            .collect()
    }

    /// All node losses of a job on a cluster with `nodes` machines:
    /// scripted losses (one per node — the earliest wins) plus seeded
    /// draws, sorted by `(at_tick, node)` and truncated so at least one
    /// node always survives. Seeded losses draw an astronomically large
    /// `at_tick`, so they always land at the shuffle barrier — after every
    /// map task has completed.
    pub fn node_losses_for(&self, job: &str, nodes: usize) -> Vec<NodeLoss> {
        if !self.applies_to(job) || nodes == 0 {
            return Vec::new();
        }
        let mut by_node: BTreeMap<usize, u64> = BTreeMap::new();
        for loss in &self.node_losses {
            if loss.node < nodes {
                let at = by_node.entry(loss.node).or_insert(loss.at_tick);
                *at = (*at).min(loss.at_tick);
            }
        }
        if let Some(seeded) = &self.seeded {
            let rate = seeded.profile.node_loss_permille;
            for node in 0..nodes {
                let h = decision(seeded.seed, job, NODE_LOSS_SALT, node as u64, 0);
                if permille(h) < rate {
                    let at = (1u64 << 40) | (splitmix64_once(h) & ((1u64 << 40) - 1));
                    by_node.entry(node).or_insert(at);
                }
            }
        }
        let mut losses: Vec<NodeLoss> = by_node
            .into_iter()
            .map(|(node, at_tick)| NodeLoss { at_tick, node })
            .collect();
        losses.sort_unstable();
        losses.truncate(nodes.saturating_sub(1));
        losses
    }

    /// All transient node partitions of a job, scripted plus seeded,
    /// sorted by `(at_tick, for_ticks, node)`.
    pub fn node_partitions_for(&self, job: &str, nodes: usize) -> Vec<NodePartition> {
        if !self.applies_to(job) || nodes == 0 {
            return Vec::new();
        }
        let mut parts: Vec<NodePartition> = self
            .node_partitions
            .iter()
            .copied()
            .filter(|p| p.node < nodes)
            .collect();
        if let Some(seeded) = &self.seeded {
            let rate = seeded.profile.node_partition_permille;
            for node in 0..nodes {
                let h = decision(seeded.seed, job, NODE_PART_SALT, node as u64, 0);
                if permille(h) < rate {
                    let (h, at_draw) = next(h);
                    let (_, len_draw) = next(h);
                    parts.push(NodePartition {
                        at_tick: at_draw & ((1u64 << 40) - 1),
                        for_ticks: 500 + len_draw % 4500,
                        node,
                    });
                }
            }
        }
        parts.sort_unstable();
        parts
    }

    /// How many times the distributed-cache broadcast fails for `job`.
    pub fn broadcast_failures_for(&self, job: &str) -> u32 {
        if !self.applies_to(job) {
            return 0;
        }
        let mut n = self.broadcast_failures;
        if let Some(seeded) = &self.seeded {
            let h = decision(seeded.seed, job, 0xB04D, 0, 0);
            if permille(h) < seeded.profile.broadcast_fail_permille {
                n += 1 + (splitmix64_once(h) % 2) as u32;
            }
        }
        n
    }
}

fn derive_task_fault(seeded: &SeededFaults, job: &str, kind: TaskKind, index: usize) -> TaskFault {
    let p = &seeded.profile;
    let salt = match kind {
        TaskKind::Map => 0x5EED_0001,
        TaskKind::Reduce => 0x5EED_0002,
    };
    let h = decision(seeded.seed, job, salt, index as u64, 0);
    let (h, fail_draw) = next(h);
    let (h, count_draw) = next(h);
    let (h, kind_draw) = next(h);
    let (h, straggle_draw) = next(h);
    // The hang draw extends the chain *after* every pre-existing draw, so
    // profiles with `hang_permille: 0` replay pinned seeds bit-for-bit.
    let (_, hang_draw) = next(h);
    let failures = if permille(fail_draw) < p.task_fault_permille {
        let span = u64::from(p.max_failures_per_task.max(1));
        1 + (count_draw % span) as u32 // invariant: span is clamped to >= 1 above
    } else {
        0
    };
    let kind = if permille(hang_draw) < p.hang_permille {
        FaultKind::Hang
    } else if permille(kind_draw) < p.mid_task_permille {
        FaultKind::MidTaskPanic
    } else {
        FaultKind::LostOutput
    };
    let slowdown = if permille(straggle_draw) < p.straggler_permille {
        p.straggler_slowdown.max(1.0)
    } else {
        1.0
    };
    TaskFault {
        failures,
        kind,
        slowdown,
    }
}

/// FNV-1a over the job name, folded with the structured coordinates, then
/// finalized with one SplitMix64 round — a pure function of its inputs,
/// identical on every platform and run. Shared with the placement model
/// in `cluster.rs`, which derives task→node homes the same way.
pub(crate) fn decision(seed: u64, job: &str, salt: u64, a: u64, b: u64) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in job.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    for word in [seed, salt, a, b] {
        h ^= word;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    splitmix64_once(h)
}

fn next(state: u64) -> (u64, u64) {
    let out = splitmix64_once(state);
    (state.wrapping_add(0x9E37_79B9_7F4A_7C15), out)
}

fn permille(h: u64) -> u32 {
    (h % 1000) as u32
}

/// One SplitMix64 finalization round.
fn splitmix64_once(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_empty() {
        assert!(FaultPlan::none().is_empty());
        assert!(!FaultPlan::seeded(1).is_empty());
        assert!(!FaultPlan::none().with_broadcast_failures(1).is_empty());
    }

    #[test]
    fn scripted_constructors_mirror_the_old_failure_plan() {
        let p = FaultPlan::fail_maps([0, 2]);
        assert_eq!(p.task_fault("j", TaskKind::Map, 0), TaskFault::lost(1));
        assert_eq!(p.task_fault("j", TaskKind::Map, 1), TaskFault::none());
        assert_eq!(p.task_fault("j", TaskKind::Map, 2), TaskFault::lost(1));
        assert_eq!(p.task_fault("j", TaskKind::Reduce, 0), TaskFault::none());
        let p = FaultPlan::fail_reduces([1]);
        assert_eq!(p.task_fault("j", TaskKind::Reduce, 1), TaskFault::lost(1));
        assert!(!p.is_empty());
    }

    #[test]
    fn job_filter_gates_every_channel() {
        let p = FaultPlan::fail_maps([0])
            .with_lost_partition(0, 0)
            .with_broadcast_failures(2)
            .for_job("skyline");
        assert_eq!(
            p.task_fault("skyline", TaskKind::Map, 0),
            TaskFault::lost(1)
        );
        assert_eq!(
            p.task_fault("bitstring", TaskKind::Map, 0),
            TaskFault::none()
        );
        assert_eq!(p.lost_partitions_for("skyline", 2, 2), vec![(0, 0)]);
        assert!(p.lost_partitions_for("bitstring", 2, 2).is_empty());
        assert_eq!(p.broadcast_failures_for("skyline"), 2);
        assert_eq!(p.broadcast_failures_for("bitstring"), 0);
    }

    #[test]
    fn scripted_faults_override_the_seeded_layer() {
        let mut p = FaultPlan::seeded(7);
        p.map_faults.insert(3, TaskFault::panics(2));
        assert_eq!(p.task_fault("j", TaskKind::Map, 3), TaskFault::panics(2));
    }

    #[test]
    fn seeded_resolution_is_deterministic_and_seed_sensitive() {
        let a = FaultPlan::seeded(42);
        let b = FaultPlan::seeded(42);
        let c = FaultPlan::seeded(43);
        let faults = |p: &FaultPlan| -> Vec<TaskFault> {
            (0..64)
                .map(|i| p.task_fault("wc", TaskKind::Map, i))
                .collect()
        };
        assert_eq!(faults(&a), faults(&b), "same seed, same plan");
        assert_ne!(faults(&a), faults(&c), "different seeds diverge");
        assert_eq!(
            a.lost_partitions_for("wc", 8, 8),
            b.lost_partitions_for("wc", 8, 8)
        );
        assert_eq!(
            a.broadcast_failures_for("wc"),
            b.broadcast_failures_for("wc")
        );
    }

    #[test]
    fn seeded_faults_vary_across_jobs_tasks_and_kinds() {
        let p = FaultPlan::seeded(11);
        let per_job: Vec<TaskFault> = (0..64)
            .map(|i| p.task_fault("a", TaskKind::Map, i))
            .collect();
        let other_job: Vec<TaskFault> = (0..64)
            .map(|i| p.task_fault("b", TaskKind::Map, i))
            .collect();
        assert_ne!(per_job, other_job, "job name salts the decisions");
        let reduces: Vec<TaskFault> = (0..64)
            .map(|i| p.task_fault("a", TaskKind::Reduce, i))
            .collect();
        assert_ne!(per_job, reduces, "task kind salts the decisions");
    }

    #[test]
    fn seeded_rates_are_respected_in_aggregate() {
        let p = FaultPlan::seeded(5);
        let profile = FaultProfile::default();
        let mut faulty = 0usize;
        let mut over_budget = 0usize;
        for i in 0..2000 {
            let f = p.task_fault("rates", TaskKind::Map, i);
            if f.failures > 0 {
                faulty += 1;
            }
            if f.failures > profile.max_failures_per_task {
                over_budget += 1;
            }
        }
        assert_eq!(over_budget, 0, "failure counts bounded by the profile");
        // 25% ± a generous tolerance over 2000 draws.
        assert!((300..700).contains(&faulty), "faulty tasks: {faulty}");
    }

    #[test]
    fn lost_partitions_respect_bounds() {
        let p = FaultPlan::none()
            .with_lost_partition(5, 0)
            .with_lost_partition(0, 9);
        assert!(p.lost_partitions_for("j", 3, 3).is_empty());
        let p = FaultPlan::none().with_lost_partition(1, 2);
        assert_eq!(p.lost_partitions_for("j", 2, 3), vec![(1, 2)]);
    }

    #[test]
    fn node_losses_dedupe_sort_and_keep_a_survivor() {
        let p = FaultPlan::none()
            .with_node_loss(2, 500)
            .with_node_loss(0, 100)
            .with_node_loss(2, 50); // earlier loss of the same node wins
        let losses = p.node_losses_for("j", 4);
        assert_eq!(
            losses,
            vec![
                NodeLoss {
                    at_tick: 50,
                    node: 2
                },
                NodeLoss {
                    at_tick: 100,
                    node: 0
                },
            ]
        );
        // Out-of-range nodes are ignored; a 1-node cluster never loses it.
        assert!(p.node_losses_for("j", 1).is_empty());
        // Losing every node is truncated to leave one alive.
        let all = FaultPlan::none()
            .with_node_loss(0, 1)
            .with_node_loss(1, 2)
            .with_node_loss(2, 3);
        assert_eq!(all.node_losses_for("j", 3).len(), 2);
    }

    #[test]
    fn seeded_node_events_are_deterministic_and_late() {
        let a = FaultPlan::chaos_nodes(9);
        let b = FaultPlan::chaos_nodes(9);
        assert_eq!(a.node_losses_for("j", 8), b.node_losses_for("j", 8));
        assert_eq!(a.node_partitions_for("j", 8), b.node_partitions_for("j", 8));
        // Seeded losses always land past any realistic map phase (the
        // shuffle barrier clamps them), and the default profile stays node
        //-fault free so pinned seeds replay identically.
        for loss in a.node_losses_for("j", 8) {
            assert!(loss.at_tick >= 1 << 40);
        }
        assert!(FaultPlan::seeded(9).node_losses_for("j", 8).is_empty());
        assert!(FaultPlan::seeded(9).node_partitions_for("j", 8).is_empty());
        // Over many seeds the nodes() profile actually kills machines.
        let hits: usize = (0..32)
            .map(|s| FaultPlan::chaos_nodes(s).node_losses_for("j", 8).len())
            .sum();
        assert!(hits > 0, "chaos_nodes never killed a node over 32 seeds");
    }

    #[test]
    fn node_events_respect_the_job_filter() {
        let p = FaultPlan::none().with_node_loss(1, 5).for_job("skyline");
        assert_eq!(p.node_losses_for("skyline", 4).len(), 1);
        assert!(p.node_losses_for("bitstring", 4).is_empty());
        let p = FaultPlan::none()
            .with_node_partition(1, 5, 10)
            .for_job("skyline");
        assert_eq!(p.node_partitions_for("skyline", 4).len(), 1);
        assert!(p.node_partitions_for("bitstring", 4).is_empty());
        assert!(!p.is_empty());
    }

    #[test]
    fn corrupt_fetches_respect_bounds_filter_and_determinism() {
        let p = FaultPlan::none()
            .with_corrupt_shuffle(1, 0, 1)
            .with_corrupt_shuffle(9, 9, 2)
            .for_job("skyline");
        let hits = p.corrupt_fetches_for("skyline", 3, 3);
        assert_eq!(hits.len(), 1, "out-of-range partitions are ignored");
        assert_eq!((hits[0].map, hits[0].reducer, hits[0].fetches), (1, 0, 1));
        assert!(p.corrupt_fetches_for("bitstring", 3, 3).is_empty());
        assert_eq!(hits, p.corrupt_fetches_for("skyline", 3, 3));
        assert!(!FaultPlan::none().with_corrupt_shuffle(0, 0, 1).is_empty());
        // Zero-fetch entries are inert.
        assert!(FaultPlan::none()
            .with_corrupt_shuffle(0, 0, 0)
            .corrupt_fetches_for("j", 2, 2)
            .is_empty());
    }

    #[test]
    fn seeded_corruption_is_replayable_and_rate_bounded() {
        let a = FaultPlan::chaos_data(21);
        let b = FaultPlan::chaos_data(21);
        assert_eq!(
            a.corrupt_fetches_for("j", 8, 8),
            b.corrupt_fetches_for("j", 8, 8)
        );
        // The default profile keeps corruption off, so pinned seeds replay.
        assert!(FaultPlan::seeded(21)
            .corrupt_fetches_for("j", 8, 8)
            .is_empty());
        // ~25% of 64 partitions, generous tolerance; every draw has a
        // valid fetch count.
        let hits = a.corrupt_fetches_for("j", 8, 8);
        assert!((4..30).contains(&hits.len()), "hits: {}", hits.len());
        assert!(hits.iter().all(|c| (1..=2).contains(&c.fetches)));
        // Hang draws appear under the data profile but never under the
        // default one (replay compatibility).
        let hangs = (0..256)
            .filter(|&i| a.task_fault("j", TaskKind::Map, i).kind == FaultKind::Hang)
            .count();
        assert!(hangs > 0, "data profile never drew a hang over 256 tasks");
        assert!((0..256).all(|i| {
            FaultPlan::seeded(21).task_fault("j", TaskKind::Map, i).kind != FaultKind::Hang
        }));
    }

    #[test]
    fn poison_records_are_scripted_per_task_and_filtered() {
        let p = FaultPlan::none()
            .with_poison_record(1, 3)
            .with_poison_record(1, 0)
            .with_poison_record(2, 5)
            .for_job("skyline");
        assert_eq!(p.poison_records_for("skyline", 1), vec![0, 3]);
        assert_eq!(p.poison_records_for("skyline", 2), vec![5]);
        assert!(p.poison_records_for("skyline", 0).is_empty());
        assert!(p.poison_records_for("bitstring", 1).is_empty());
        assert!(!p.is_empty());
    }

    #[test]
    fn hang_builder_sets_the_kind() {
        let f = TaskFault::hangs(2);
        assert_eq!(f.failures, 2);
        assert_eq!(f.kind, FaultKind::Hang);
        assert!(!f.is_none());
    }

    #[test]
    fn straggler_builder_clamps_to_at_least_one() {
        assert_eq!(TaskFault::straggler(0.25).slowdown, 1.0);
        assert_eq!(TaskFault::straggler(4.0).slowdown, 4.0);
        assert!(TaskFault::straggler(4.0).with_slowdown(0.0).is_none());
    }
}
