//! Retry, backoff, and speculative-execution policies.

use std::time::Duration;

use super::plan::FaultPlan;

/// Bounded-retry policy with exponential backoff.
///
/// A task is attempted up to `max_attempts` times; each failed attempt that
/// is followed by another one charges `backoff_after(attempt)` of idle time
/// to the simulated clock (the slot waits before relaunching, as a real
/// scheduler would to avoid hammering a flaky node).
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts allowed per task (including the first). Clamped to
    /// at least 1 at resolution time.
    pub max_attempts: u32,
    /// Backoff charged after the first failed attempt.
    pub backoff_base: Duration,
    /// Multiplier applied per subsequent failure (exponential backoff).
    pub backoff_multiplier: f64,
    /// Upper bound on a single backoff interval.
    pub backoff_cap: Duration,
}

impl RetryPolicy {
    /// Hadoop's default of 4 attempts, 100 ms doubling backoff capped at
    /// 10 s.
    pub fn new() -> Self {
        Self {
            max_attempts: 4,
            backoff_base: Duration::from_millis(100),
            backoff_multiplier: 2.0,
            backoff_cap: Duration::from_secs(10),
        }
    }

    /// No retries: the first failure aborts the job.
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            ..Self::new()
        }
    }

    /// Sets the attempt budget (clamped to at least 1).
    pub fn with_max_attempts(mut self, max_attempts: u32) -> Self {
        self.max_attempts = max_attempts.max(1);
        self
    }

    /// Effective attempt budget (never 0).
    pub fn attempt_budget(&self) -> u32 {
        self.max_attempts.max(1)
    }

    /// Backoff charged after failed attempt number `attempt` (0-based),
    /// before attempt `attempt + 1` launches.
    pub fn backoff_after(&self, attempt: u32) -> Duration {
        let factor = self
            .backoff_multiplier
            .max(1.0)
            .powi(attempt.min(62) as i32);
        let backoff = self.backoff_base.mul_f64(factor);
        backoff.min(self.backoff_cap)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::new()
    }
}

/// Speculative-execution policy (Hadoop-style backup tasks).
///
/// After a phase's regular attempts finish, any task whose *modeled*
/// duration (straggler slowdown included) exceeded
/// `slowdown_threshold` × the phase median is re-run as a full-speed
/// backup attempt. The winner is chosen deterministically: the backup wins
/// iff it would have finished (launching at the median mark) before the
/// straggling original — simulated time only, so the choice is replayable.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeculationPolicy {
    /// A task is a straggler when its modeled duration exceeds this
    /// multiple of the phase median.
    pub slowdown_threshold: f64,
    /// Phases with fewer tasks than this never speculate (a median over
    /// one task is meaningless).
    pub min_phase_tasks: usize,
}

impl SpeculationPolicy {
    /// Hadoop-flavoured default: back up tasks running 3× the median, in
    /// phases of at least 2 tasks.
    pub fn new() -> Self {
        Self {
            slowdown_threshold: 3.0,
            min_phase_tasks: 2,
        }
    }

    /// Sets the straggler threshold (clamped to at least 1.0).
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.slowdown_threshold = threshold.max(1.0);
        self
    }
}

impl Default for SpeculationPolicy {
    fn default() -> Self {
        Self::new()
    }
}

/// Node blacklisting (Hadoop's per-node failure tracker).
///
/// Failed attempts are attributed to their home node via the cluster's
/// [`Placement`](crate::Placement); a node that accumulates `max_failures`
/// of them is removed from scheduling — its slots leave the pool, shrinking
/// effective parallelism for the rest of the job. No effect without a
/// placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlacklistPolicy {
    /// Failed attempts on one node before it is blacklisted.
    pub max_failures: u32,
}

impl BlacklistPolicy {
    /// Hadoop-flavoured default: three strikes.
    pub fn new() -> Self {
        Self { max_failures: 3 }
    }

    /// Sets the strike budget (clamped to at least 1).
    pub fn with_max_failures(mut self, max_failures: u32) -> Self {
        self.max_failures = max_failures.max(1);
        self
    }
}

impl Default for BlacklistPolicy {
    fn default() -> Self {
        Self::new()
    }
}

/// The full fault-tolerance configuration of a job or pipeline: what to
/// inject ([`FaultPlan`]), how to recover ([`RetryPolicy`]), and whether to
/// launch backup attempts for stragglers ([`SpeculationPolicy`]).
#[derive(Debug, Clone, Default)]
pub struct FaultTolerance {
    /// Injected faults (empty by default).
    pub plan: FaultPlan,
    /// Retry budget and backoff.
    pub retry: RetryPolicy,
    /// Speculative execution (off by default).
    pub speculation: Option<SpeculationPolicy>,
    /// Node blacklisting (off by default; needs a cluster placement).
    pub blacklist: Option<BlacklistPolicy>,
}

impl FaultTolerance {
    /// No injected faults, default retries, no speculation.
    pub fn none() -> Self {
        Self::default()
    }

    /// Injects `plan` under the default retry budget.
    pub fn with_plan(plan: FaultPlan) -> Self {
        Self {
            plan,
            ..Self::default()
        }
    }

    /// Replaces the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Enables speculative execution.
    pub fn with_speculation(mut self, speculation: SpeculationPolicy) -> Self {
        self.speculation = Some(speculation);
        self
    }

    /// Enables node blacklisting.
    pub fn with_blacklist(mut self, blacklist: BlacklistPolicy) -> Self {
        self.blacklist = Some(blacklist);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let r = RetryPolicy::new();
        assert_eq!(r.backoff_after(0), Duration::from_millis(100));
        assert_eq!(r.backoff_after(1), Duration::from_millis(200));
        assert_eq!(r.backoff_after(2), Duration::from_millis(400));
        assert_eq!(r.backoff_after(30), Duration::from_secs(10), "capped");
    }

    #[test]
    fn attempt_budget_never_zero() {
        assert_eq!(RetryPolicy::new().with_max_attempts(0).attempt_budget(), 1);
        assert_eq!(RetryPolicy::none().attempt_budget(), 1);
        assert_eq!(RetryPolicy::new().attempt_budget(), 4);
    }

    #[test]
    fn speculation_threshold_clamps() {
        assert_eq!(
            SpeculationPolicy::new()
                .with_threshold(0.5)
                .slowdown_threshold,
            1.0
        );
    }

    #[test]
    fn fault_tolerance_default_is_benign() {
        let ft = FaultTolerance::none();
        assert!(ft.plan.is_empty());
        assert_eq!(ft.retry.max_attempts, 4);
        assert!(ft.speculation.is_none());
        assert!(ft.blacklist.is_none());
    }

    #[test]
    fn blacklist_strike_budget_clamps() {
        assert_eq!(BlacklistPolicy::new().max_failures, 3);
        assert_eq!(BlacklistPolicy::new().with_max_failures(0).max_failures, 1);
        let ft = FaultTolerance::none().with_blacklist(BlacklistPolicy::new());
        assert!(ft.blacklist.is_some());
    }
}
