//! Metrics aggregation for chained jobs.
//!
//! The paper's skyline algorithms are two-job pipelines: the bitstring
//! generation job followed by the skyline computation job ("For MR-GPSRS
//! and MR-GPMRS algorithms, we include the time cost of the bitstring
//! generation in the runtime", Section 7.1). [`PipelineMetrics`] holds the
//! per-job metrics of such a chain and exposes the end-to-end simulated
//! runtime the benchmarks report.

use std::time::Duration;

use crate::cluster::JobMetrics;
use crate::fault::JobError;
use crate::job::JobOutcome;

/// Metrics of a chain of MapReduce jobs executed one after another.
#[derive(Debug, Clone, Default)]
pub struct PipelineMetrics {
    /// Per-job metrics in execution order.
    pub jobs: Vec<JobMetrics>,
}

impl PipelineMetrics {
    /// An empty pipeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a job's metrics.
    pub fn push(&mut self, metrics: JobMetrics) {
        self.jobs.push(metrics);
    }

    /// Folds one job of a chain into the pipeline and propagates failure —
    /// the chain-abort policy in one place.
    ///
    /// On success the job's metrics are recorded and the outcome handed
    /// back; on failure the *partial* metrics carried by the [`JobError`]
    /// are recorded (so the time the doomed job consumed stays visible in
    /// [`PipelineMetrics::sim_runtime`]) and the error is returned for the
    /// caller to bubble up, cleanly aborting the remaining jobs:
    ///
    /// ```ignore
    /// let first = metrics.track(run_job(...))?;   // chain stops here on failure
    /// let second = metrics.track(run_job(...))?;  // never runs after an abort
    /// ```
    pub fn track<Out>(
        &mut self,
        result: Result<JobOutcome<Out>, JobError>,
    ) -> Result<JobOutcome<Out>, JobError> {
        match &result {
            Ok(outcome) => self.push(outcome.metrics.clone()),
            Err(err) => self.push((*err.metrics).clone()),
        }
        result
    }

    /// End-to-end simulated runtime: jobs run back to back.
    pub fn sim_runtime(&self) -> Duration {
        self.jobs.iter().map(|j| j.sim_runtime).sum()
    }

    /// Total host wall-clock time actually spent executing.
    pub fn host_wall(&self) -> Duration {
        self.jobs.iter().map(|j| j.host_wall).sum()
    }

    /// Total bytes shuffled across all jobs.
    pub fn shuffle_bytes(&self) -> u64 {
        self.jobs.iter().map(|j| j.shuffle_bytes).sum()
    }

    /// Looks up a job's metrics by name.
    pub fn job(&self, name: &str) -> Option<&JobMetrics> {
        self.jobs.iter().find(|j| j.name == name)
    }

    /// Renders the per-phase breakdown of every job in the chain as an
    /// aligned text table (see [`skymr_telemetry::phase_table`]).
    pub fn phase_table(&self) -> String {
        let rows: Vec<_> = self.jobs.iter().map(JobMetrics::phase_summary).collect();
        skymr_telemetry::phase_table(&rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(name: &str, sim_ms: u64, bytes: u64) -> JobMetrics {
        let mut m = JobMetrics::empty(name, 1, 1);
        m.shuffle_bytes = bytes;
        m.per_reducer_bytes = vec![bytes];
        m.sim_runtime = Duration::from_millis(sim_ms);
        m.host_wall = Duration::from_millis(1);
        m
    }

    #[test]
    fn sums_runtimes_and_bytes() {
        let mut p = PipelineMetrics::new();
        p.push(dummy("bitstring", 10, 100));
        p.push(dummy("skyline", 25, 900));
        assert_eq!(p.sim_runtime(), Duration::from_millis(35));
        assert_eq!(p.shuffle_bytes(), 1000);
        assert_eq!(p.host_wall(), Duration::from_millis(2));
    }

    #[test]
    fn job_lookup_by_name() {
        let mut p = PipelineMetrics::new();
        p.push(dummy("bitstring", 10, 100));
        assert!(p.job("bitstring").is_some());
        assert!(p.job("missing").is_none());
    }

    #[test]
    fn empty_pipeline_is_zero() {
        let p = PipelineMetrics::new();
        assert_eq!(p.sim_runtime(), Duration::ZERO);
        assert_eq!(p.shuffle_bytes(), 0);
    }

    #[test]
    fn track_records_success_and_failure_alike() {
        use crate::fault::TaskKind;

        let mut p = PipelineMetrics::new();
        let ok: Result<JobOutcome<u32>, JobError> = Ok(JobOutcome {
            outputs: vec![vec![1]],
            metrics: dummy("first", 10, 5),
            counters: skymr_common::Counters::new(),
            registry: skymr_telemetry::MetricsRegistry::new(),
        });
        assert!(p.track(ok).is_ok());

        let mut partial = dummy("second", 25, 0);
        partial.map_retries = 3;
        let err: Result<JobOutcome<u32>, JobError> = Err(JobError {
            job: "second".into(),
            task: TaskKind::Map,
            index: 0,
            attempts: 4,
            history: Vec::new(),
            counters: skymr_common::Counters::new(),
            metrics: Box::new(partial),
            payload: None,
        });
        let propagated = p.track(err).expect_err("failure must propagate");
        assert_eq!(propagated.job, "second");
        // Both jobs' time is on the pipeline clock, abort included.
        assert_eq!(p.jobs.len(), 2);
        assert_eq!(p.sim_runtime(), Duration::from_millis(35));
        assert_eq!(p.job("second").map(|j| j.map_retries), Some(3));
    }
}
