//! Metrics aggregation and checkpoint/resume for chained jobs.
//!
//! The paper's skyline algorithms are two-job pipelines: the bitstring
//! generation job followed by the skyline computation job ("For MR-GPSRS
//! and MR-GPMRS algorithms, we include the time cost of the bitstring
//! generation in the runtime", Section 7.1). [`PipelineMetrics`] holds the
//! per-job metrics of such a chain and exposes the end-to-end simulated
//! runtime the benchmarks report.
//!
//! [`Runner`] adds Hadoop-JobControl-style durability to such chains: after
//! each job completes, its forward-flowing output is snapshotted into a
//! [`Checkpoint`] (in memory, and optionally to a JSON file). A chain
//! killed between jobs — simulated deterministically with
//! [`Runner::with_kill_after`] — can be restarted from the last completed
//! job with [`Runner::resume`]; because UDFs are pure, the resumed chain
//! produces byte-identical outputs to an uninterrupted run.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::time::Duration;

use skymr_common::{crc32c, Error, Tuple};

use crate::cluster::JobMetrics;
use crate::fault::JobError;
use crate::job::JobOutcome;
use crate::sched::{AdmissionController, Reservation};

/// Metrics of a chain of MapReduce jobs executed one after another.
#[derive(Debug, Clone, Default)]
pub struct PipelineMetrics {
    /// Per-job metrics in execution order.
    pub jobs: Vec<JobMetrics>,
}

impl PipelineMetrics {
    /// An empty pipeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a job's metrics.
    pub fn push(&mut self, metrics: JobMetrics) {
        self.jobs.push(metrics);
    }

    /// Folds one job of a chain into the pipeline and propagates failure —
    /// the chain-abort policy in one place.
    ///
    /// On success the job's metrics are recorded and the outcome handed
    /// back; on failure the *partial* metrics carried by the [`JobError`]
    /// are recorded (so the time the doomed job consumed stays visible in
    /// [`PipelineMetrics::sim_runtime`]) and the error is returned for the
    /// caller to bubble up, cleanly aborting the remaining jobs:
    ///
    /// ```ignore
    /// let first = metrics.track(run_job(...))?;   // chain stops here on failure
    /// let second = metrics.track(run_job(...))?;  // never runs after an abort
    /// ```
    pub fn track<Out>(
        &mut self,
        result: Result<JobOutcome<Out>, JobError>,
    ) -> Result<JobOutcome<Out>, JobError> {
        match &result {
            Ok(outcome) => self.push(outcome.metrics.clone()),
            Err(err) => self.push((*err.metrics).clone()),
        }
        result
    }

    /// End-to-end simulated runtime: jobs run back to back.
    pub fn sim_runtime(&self) -> Duration {
        self.jobs.iter().map(|j| j.sim_runtime).sum()
    }

    /// Total host wall-clock time actually spent executing.
    pub fn host_wall(&self) -> Duration {
        self.jobs.iter().map(|j| j.host_wall).sum()
    }

    /// Total bytes shuffled across all jobs.
    pub fn shuffle_bytes(&self) -> u64 {
        self.jobs.iter().map(|j| j.shuffle_bytes).sum()
    }

    /// Looks up a job's metrics by name.
    pub fn job(&self, name: &str) -> Option<&JobMetrics> {
        self.jobs.iter().find(|j| j.name == name)
    }

    /// Renders the per-phase breakdown of every job in the chain as an
    /// aligned text table (see [`skymr_telemetry::phase_table`]).
    pub fn phase_table(&self) -> String {
        let rows: Vec<_> = self.jobs.iter().map(JobMetrics::phase_summary).collect();
        skymr_telemetry::phase_table(&rows)
    }
}

/// A value that can cross a pipeline checkpoint: encoded to bytes after
/// its job completes, decoded when a killed chain resumes. Encodings must
/// be self-contained and deterministic (byte-identical for equal values) —
/// the chaos suite diffs checkpoint files across runs.
pub trait Snapshot {
    /// Serializes the value. Must be deterministic.
    fn encode(&self) -> Vec<u8>;
    /// Recovers a value from [`encode`](Self::encode)'s output; `None` on
    /// any structural mismatch (a corrupt or foreign payload).
    fn decode(bytes: &[u8]) -> Option<Self>
    where
        Self: Sized;
}

/// Tuples are the forward-flowing value of every skyline job, so the
/// canonical snapshot payload is a tuple list: `[count, dim]` header then
/// `id` + `dim` values per tuple, all little-endian fixed-width.
impl Snapshot for Vec<Tuple> {
    fn encode(&self) -> Vec<u8> {
        let dim = self.first().map_or(0, Tuple::dim);
        let mut out = Vec::with_capacity(16 + self.len() * (8 + dim * 8));
        out.extend_from_slice(&(self.len() as u64).to_le_bytes());
        out.extend_from_slice(&(dim as u64).to_le_bytes());
        for t in self {
            out.extend_from_slice(&t.id.to_le_bytes());
            for v in t.values.iter() {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let mut r = Reader::new(bytes);
        let count = usize::try_from(r.u64()?).ok()?;
        let dim = usize::try_from(r.u64()?).ok()?;
        let mut tuples = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            let id = r.u64()?;
            let mut values = Vec::with_capacity(dim);
            for _ in 0..dim {
                values.push(r.f64()?);
            }
            tuples.push(Tuple::new(id, values));
        }
        r.done().then_some(tuples)
    }
}

/// Little-endian cursor over a snapshot payload.
struct Reader<'a> {
    bytes: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.bytes.len() < n {
            return None;
        }
        let (head, rest) = self.bytes.split_at(n);
        self.bytes = rest;
        Some(head)
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)?.try_into().ok().map(u64::from_le_bytes)
    }

    fn f64(&mut self) -> Option<f64> {
        self.take(8)?.try_into().ok().map(f64::from_le_bytes)
    }

    fn done(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// One completed job's checkpoint entry: the encoded forward-flowing value
/// plus the simulated time the job cost (restored into the pipeline clock
/// on resume).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSnapshot {
    /// The stage name (must match the [`Runner::stage`] call on resume).
    pub name: String,
    /// The stage value, encoded via [`Snapshot::encode`].
    pub payload: Vec<u8>,
    /// The job's simulated runtime when it originally ran.
    pub sim_runtime: Duration,
}

/// The durable state of a (partially) completed pipeline: one
/// [`JobSnapshot`] per finished job, in chain order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Checkpoint {
    /// Snapshots of completed jobs, in execution order.
    pub jobs: Vec<JobSnapshot>,
}

impl Checkpoint {
    /// Renders the checkpoint as versioned JSON. Each payload is
    /// hex-encoded and accompanied by its CRC32C (the shuffle-frame
    /// checksum, [`skymr_common::crc32c`]), so bit rot at rest is caught at
    /// parse time. The format is deterministic: equal checkpoints render to
    /// equal bytes.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"version\":2,\"jobs\":[");
        for (i, job) in self.jobs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            for c in job.name.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push_str("\",\"payload\":\"");
            for b in &job.payload {
                out.push_str(&format!("{b:02x}"));
            }
            out.push_str(&format!("\",\"crc\":{}", crc32c(&job.payload)));
            out.push_str(&format!(
                ",\"sim_us\":{}}}",
                u64::try_from(job.sim_runtime.as_micros()).unwrap_or(u64::MAX)
            ));
        }
        out.push_str("]}");
        out
    }

    /// Parses and verifies a checkpoint rendered by
    /// [`to_json`](Self::to_json).
    ///
    /// Every snapshot payload is checked against its recorded CRC32C; a
    /// mismatch — a bit-rotted file — is a structured
    /// [`Error::CheckpointCorrupt`] naming the damaged job, never a silent
    /// fallback. Unreadable documents and unknown versions are reported the
    /// same way under the pseudo-job `"<document>"`.
    pub fn from_json(text: &str) -> skymr_common::Result<Self> {
        fn corrupt(job: &str, detail: impl Into<String>) -> Error {
            Error::CheckpointCorrupt {
                job: job.into(),
                detail: detail.into(),
            }
        }
        let value = skymr_telemetry::json::parse(text)
            .map_err(|_| corrupt("<document>", "not valid JSON"))?;
        let version = value
            .get("version")
            .and_then(skymr_telemetry::json::Value::as_u64)
            .ok_or_else(|| corrupt("<document>", "missing version field"))?;
        if version != 2 {
            return Err(corrupt(
                "<document>",
                format!("unsupported checkpoint version {version} (expected 2)"),
            ));
        }
        let entries = value
            .get("jobs")
            .and_then(skymr_telemetry::json::Value::as_array)
            .ok_or_else(|| corrupt("<document>", "missing jobs array"))?;
        let mut jobs = Vec::new();
        for job in entries {
            let name = job
                .get("name")
                .and_then(skymr_telemetry::json::Value::as_str)
                .ok_or_else(|| corrupt("<document>", "snapshot without a name"))?
                .to_owned();
            let hex = job
                .get("payload")
                .and_then(skymr_telemetry::json::Value::as_str)
                .ok_or_else(|| corrupt(&name, "snapshot without a payload"))?;
            if hex.len() % 2 != 0 {
                return Err(corrupt(&name, "payload hex has odd length"));
            }
            let mut payload = Vec::with_capacity(hex.len() / 2);
            for i in (0..hex.len()).step_by(2) {
                let pair = hex.get(i..i + 2).unwrap_or_default();
                payload.push(
                    u8::from_str_radix(pair, 16)
                        .map_err(|_| corrupt(&name, format!("non-hex payload byte `{pair}`")))?,
                );
            }
            let recorded = job
                .get("crc")
                .and_then(skymr_telemetry::json::Value::as_u64)
                .ok_or_else(|| corrupt(&name, "snapshot without a crc"))?;
            let actual = u64::from(crc32c(&payload));
            if actual != recorded {
                return Err(corrupt(
                    &name,
                    format!(
                        "payload CRC32C {actual:#010x} != recorded {recorded:#010x}; \
                         the snapshot bit-rotted at rest"
                    ),
                ));
            }
            let sim_us = job
                .get("sim_us")
                .and_then(skymr_telemetry::json::Value::as_u64)
                .ok_or_else(|| corrupt(&name, "snapshot without sim_us"))?;
            jobs.push(JobSnapshot {
                name,
                payload,
                sim_runtime: Duration::from_micros(sim_us),
            });
        }
        Ok(Self { jobs })
    }

    /// Loads and verifies a checkpoint file written by a [`Runner`] with
    /// [`with_checkpoint_file`](Runner::with_checkpoint_file).
    ///
    /// `Ok(None)` when the file does not exist (a fresh run is the correct
    /// fallback); [`Error::CheckpointCorrupt`] when it exists but fails
    /// verification — damage is surfaced, never silently re-run over.
    pub fn load(path: impl AsRef<std::path::Path>) -> skymr_common::Result<Option<Self>> {
        match std::fs::read_to_string(path) {
            Ok(text) => Self::from_json(&text).map(Some),
            Err(_) => Ok(None),
        }
    }
}

/// Executes a chain of jobs with per-job checkpointing, deterministic
/// kill-points for chaos tests, and resume-from-checkpoint.
///
/// Drivers wrap each job in [`stage`](Self::stage); the runner either
/// replays the stage from a restored snapshot (skipping execution) or runs
/// it and snapshots the result. See the crate's chaos suite for the
/// end-to-end kill → resume → byte-identical-output property.
#[derive(Debug, Default)]
pub struct Runner {
    /// Restored snapshots not yet consumed by stages, in chain order.
    pending: VecDeque<JobSnapshot>,
    /// Snapshots of every stage completed (restored or executed) this run.
    completed: Vec<JobSnapshot>,
    /// Deterministic chaos kill-point: entering stage `n` (0-based count of
    /// completed stages) fails with [`Error::PipelineKilled`].
    kill_after: Option<usize>,
    /// Checkpoint file rewritten after every completed stage.
    file: Option<PathBuf>,
    /// Admission gate consulted before every stage, replayed or executed;
    /// `None` leaves the chain ungated.
    admission: Option<AdmissionController>,
    /// The reservation each stage presents to the admission gate.
    reservation: Reservation,
}

impl Runner {
    /// A fresh runner: no restored state, no kill-point, no file.
    pub fn new() -> Self {
        Self::default()
    }

    /// A runner that resumes from `checkpoint`: stages matching the
    /// checkpointed names replay their snapshotted values instead of
    /// executing.
    pub fn resume(checkpoint: Checkpoint) -> Self {
        Self {
            pending: checkpoint.jobs.into(),
            ..Self::default()
        }
    }

    /// Kills the chain (with [`Error::PipelineKilled`]) when a stage is
    /// entered after `n` stages have completed — the deterministic stand-in
    /// for a driver crash between jobs.
    pub fn with_kill_after(mut self, n: usize) -> Self {
        self.kill_after = Some(n);
        self
    }

    /// Also persists the checkpoint to `path` (rewritten after every
    /// completed stage) so a later process can [`Checkpoint::load`] it.
    pub fn with_checkpoint_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.file = Some(path.into());
        self
    }

    /// Routes every stage through `admission` before it may run.
    ///
    /// Crucially, *replayed* stages are gated too: a chain resumed from a
    /// checkpoint re-enters the admission queue like any fresh submission
    /// instead of bypassing capacity checks. A stage the controller turns
    /// away surfaces the structured
    /// [`Error::AdmissionRejected`](skymr_common::Error::AdmissionRejected)
    /// and the chain aborts with its checkpoint intact, so the caller can
    /// back off and resume later.
    pub fn with_admission(mut self, admission: AdmissionController) -> Self {
        self.admission = Some(admission);
        self
    }

    /// The reservation each stage presents to the admission gate.
    /// Defaults to [`Reservation::minimal`].
    pub fn with_reservation(mut self, reservation: Reservation) -> Self {
        self.reservation = reservation;
        self
    }

    /// The admission gate's current state, when one is configured.
    pub fn admission(&self) -> Option<&AdmissionController> {
        self.admission.as_ref()
    }

    /// The checkpoint of everything completed so far.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            jobs: self.completed.clone(),
        }
    }

    /// Runs (or replays) one job of the chain.
    ///
    /// If the next restored snapshot matches `name`, its value is decoded
    /// and returned without executing `run`; a stub [`JobMetrics`] carrying
    /// the snapshotted `sim_runtime` keeps the pipeline clock truthful. (A
    /// replayed stage re-runs no tasks, so it contributes no counters.)
    /// Otherwise `run` executes, and on success its value is snapshotted
    /// (and persisted, when a checkpoint file is configured). A name
    /// mismatch or undecodable payload discards the rest of the restored
    /// state and falls back to executing — a stale checkpoint can slow a
    /// chain down but never corrupt it.
    pub fn stage<T, F>(
        &mut self,
        name: &str,
        metrics: &mut PipelineMetrics,
        run: F,
    ) -> skymr_common::Result<T>
    where
        T: Snapshot,
        F: FnOnce(&mut PipelineMetrics) -> skymr_common::Result<T>,
    {
        if self.kill_after == Some(self.completed.len()) {
            return Err(Error::PipelineKilled {
                after_jobs: self.completed.len(),
            });
        }
        // The gate sees replayed and executed stages alike: resuming from
        // a checkpoint must not bypass capacity checks.
        let reservation = self.reservation;
        if let Some(gate) = &mut self.admission {
            gate.admit(name, "pipeline", &reservation)?;
            gate.start();
        }
        if let Some(front) = self.pending.front() {
            if front.name == name {
                if let Some(value) = T::decode(&front.payload) {
                    if let Some(snap) = self.pending.pop_front() {
                        let mut stub = JobMetrics::empty(name, 0, 0);
                        stub.sim_runtime = snap.sim_runtime;
                        metrics.push(stub);
                        self.completed.push(snap);
                        self.persist();
                        if let Some(gate) = &mut self.admission {
                            gate.release(&reservation, true);
                        }
                        return Ok(value);
                    }
                }
            }
            self.pending.clear();
        }
        let value = match run(metrics) {
            Ok(value) => value,
            Err(err) => {
                if let Some(gate) = &mut self.admission {
                    gate.release(&reservation, true);
                }
                return Err(err);
            }
        };
        if let Some(gate) = &mut self.admission {
            gate.release(&reservation, true);
        }
        let sim_runtime = metrics
            .jobs
            .last()
            .map_or(Duration::ZERO, |j| j.sim_runtime);
        self.completed.push(JobSnapshot {
            name: name.to_owned(),
            payload: value.encode(),
            sim_runtime,
        });
        self.persist();
        Ok(value)
    }

    /// Best-effort checkpoint-file write; the in-memory checkpoint is the
    /// source of truth, and a resume from a missing file simply re-runs.
    fn persist(&self) {
        if let Some(path) = &self.file {
            let _ = std::fs::write(path, self.checkpoint().to_json());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(name: &str, sim_ms: u64, bytes: u64) -> JobMetrics {
        let mut m = JobMetrics::empty(name, 1, 1);
        m.shuffle_bytes = bytes;
        m.per_reducer_bytes = vec![bytes];
        m.sim_runtime = Duration::from_millis(sim_ms);
        m.host_wall = Duration::from_millis(1);
        m
    }

    #[test]
    fn sums_runtimes_and_bytes() {
        let mut p = PipelineMetrics::new();
        p.push(dummy("bitstring", 10, 100));
        p.push(dummy("skyline", 25, 900));
        assert_eq!(p.sim_runtime(), Duration::from_millis(35));
        assert_eq!(p.shuffle_bytes(), 1000);
        assert_eq!(p.host_wall(), Duration::from_millis(2));
    }

    #[test]
    fn job_lookup_by_name() {
        let mut p = PipelineMetrics::new();
        p.push(dummy("bitstring", 10, 100));
        assert!(p.job("bitstring").is_some());
        assert!(p.job("missing").is_none());
    }

    #[test]
    fn empty_pipeline_is_zero() {
        let p = PipelineMetrics::new();
        assert_eq!(p.sim_runtime(), Duration::ZERO);
        assert_eq!(p.shuffle_bytes(), 0);
    }

    #[test]
    fn track_records_success_and_failure_alike() {
        use crate::fault::TaskKind;

        let mut p = PipelineMetrics::new();
        let ok: Result<JobOutcome<u32>, JobError> = Ok(JobOutcome {
            outputs: vec![vec![1]],
            metrics: dummy("first", 10, 5),
            counters: skymr_common::Counters::new(),
            registry: skymr_telemetry::MetricsRegistry::new(),
        });
        assert!(p.track(ok).is_ok());

        let mut partial = dummy("second", 25, 0);
        partial.map_retries = 3;
        let err: Result<JobOutcome<u32>, JobError> = Err(JobError {
            job: "second".into(),
            task: TaskKind::Map,
            index: 0,
            attempts: 4,
            history: Vec::new(),
            counters: skymr_common::Counters::new(),
            metrics: Box::new(partial),
            payload: None,
        });
        let propagated = p.track(err).expect_err("failure must propagate");
        assert_eq!(propagated.job, "second");
        // Both jobs' time is on the pipeline clock, abort included.
        assert_eq!(p.jobs.len(), 2);
        assert_eq!(p.sim_runtime(), Duration::from_millis(35));
        assert_eq!(p.job("second").map(|j| j.map_retries), Some(3));
    }

    fn tuples() -> Vec<Tuple> {
        vec![
            Tuple::new(1, vec![0.25, 0.75]),
            Tuple::new(2, vec![0.5, 0.125]),
        ]
    }

    #[test]
    fn tuple_snapshot_round_trips() {
        let original = tuples();
        let bytes = original.encode();
        assert_eq!(Vec::<Tuple>::decode(&bytes).as_ref(), Some(&original));
        // Deterministic: equal values, equal bytes.
        assert_eq!(bytes, original.encode());
        // Empty list round-trips too.
        let empty: Vec<Tuple> = Vec::new();
        assert_eq!(Vec::<Tuple>::decode(&empty.encode()), Some(Vec::new()));
        // Truncated and over-long payloads are rejected, not mis-decoded.
        assert!(Vec::<Tuple>::decode(&bytes[..bytes.len() - 1]).is_none());
        let mut padded = bytes;
        padded.push(0);
        assert!(Vec::<Tuple>::decode(&padded).is_none());
    }

    #[test]
    fn checkpoint_json_round_trips() {
        let cp = Checkpoint {
            jobs: vec![
                JobSnapshot {
                    name: "bitstring".into(),
                    payload: vec![0x00, 0xff, 0x10],
                    sim_runtime: Duration::from_micros(1234),
                },
                JobSnapshot {
                    name: "gpsrs".into(),
                    payload: tuples().encode(),
                    sim_runtime: Duration::from_millis(9),
                },
            ],
        };
        let json = cp.to_json();
        assert_eq!(Checkpoint::from_json(&json).as_ref(), Ok(&cp));
        // Deterministic rendering (the chaos suite diffs checkpoint files).
        assert_eq!(json, cp.clone().to_json());
        assert!(Checkpoint::from_json("{\"version\":1,\"jobs\":[]}").is_err());
        assert!(Checkpoint::from_json("not json").is_err());
    }

    #[test]
    fn bit_rotted_checkpoint_is_rejected_with_a_structured_error() {
        let cp = Checkpoint {
            jobs: vec![JobSnapshot {
                name: "gpsrs".into(),
                payload: tuples().encode(),
                sim_runtime: Duration::from_millis(9),
            }],
        };
        let json = cp.to_json();
        // Flip one payload bit by swapping a hex digit in place — exactly
        // what at-rest corruption of the file looks like.
        let start = json.find("\"payload\":\"").expect("payload field") + 11;
        let byte = json.as_bytes()[start];
        let flipped = if byte == b'0' { '1' } else { '0' };
        let mut rotted = json.clone();
        rotted.replace_range(start..start + 1, &flipped.to_string());
        match Checkpoint::from_json(&rotted) {
            Err(Error::CheckpointCorrupt { job, detail }) => {
                assert_eq!(job, "gpsrs");
                assert!(
                    detail.contains("CRC32C"),
                    "detail names the check: {detail}"
                );
            }
            other => panic!("bit rot must be CheckpointCorrupt, got {other:?}"),
        }
        // Tampering with the recorded CRC itself is caught the same way.
        let with_bad_crc = json.replace("\"crc\":", "\"crc\":1");
        assert!(matches!(
            Checkpoint::from_json(&with_bad_crc),
            Err(Error::CheckpointCorrupt { .. })
        ));
        // A missing crc field (e.g. a hand-edited file) is also rejected.
        let cut = json.find(",\"sim_us\"").expect("sim_us field");
        let crc_start = json.find("\"crc\":").expect("crc field") - 1;
        let mut without_crc = json.clone();
        without_crc.replace_range(crc_start..cut, "");
        assert!(matches!(
            Checkpoint::from_json(&without_crc),
            Err(Error::CheckpointCorrupt { .. })
        ));
    }

    #[test]
    fn runner_checkpoints_and_replays_stages() {
        let mut metrics = PipelineMetrics::new();
        let mut runner = Runner::new();
        let mut ran = 0;
        let first = runner
            .stage("first", &mut metrics, |m| {
                ran += 1;
                m.push(dummy("first", 10, 100));
                Ok(tuples())
            })
            .expect("stage runs");
        assert_eq!((ran, first.len()), (1, 2));

        // Resume from the checkpoint: the stage replays without executing,
        // and the stub metrics restore the snapshotted clock.
        let mut metrics2 = PipelineMetrics::new();
        let mut resumed = Runner::resume(runner.checkpoint());
        let replayed = resumed
            .stage("first", &mut metrics2, |_| {
                ran += 1;
                Ok(Vec::new())
            })
            .expect("replay succeeds");
        assert_eq!(ran, 1, "replayed stage must not execute");
        assert_eq!(replayed, first);
        assert_eq!(metrics2.sim_runtime(), Duration::from_millis(10));
        // A second, never-checkpointed stage executes normally.
        let second = resumed
            .stage("second", &mut metrics2, |m| {
                ran += 1;
                m.push(dummy("second", 5, 0));
                Ok(Vec::new())
            })
            .expect("fresh stage runs");
        assert_eq!((ran, second.len()), (2, 0));
        assert_eq!(resumed.checkpoint().jobs.len(), 2);
    }

    #[test]
    fn runner_kill_point_is_deterministic() {
        let mut metrics = PipelineMetrics::new();
        let mut runner = Runner::new().with_kill_after(1);
        runner
            .stage("first", &mut metrics, |_| Ok(tuples()))
            .expect("stage before the kill-point runs");
        let err = runner
            .stage("second", &mut metrics, |_| Ok(Vec::new()))
            .expect_err("kill-point fires");
        assert_eq!(err, Error::PipelineKilled { after_jobs: 1 });
        // The checkpoint of the completed prefix survives the kill.
        assert_eq!(runner.checkpoint().jobs.len(), 1);
    }

    #[test]
    fn stale_checkpoint_falls_back_to_execution() {
        // Name mismatch: restored state is discarded, the stage runs.
        let cp = Checkpoint {
            jobs: vec![JobSnapshot {
                name: "other".into(),
                payload: tuples().encode(),
                sim_runtime: Duration::from_millis(3),
            }],
        };
        let mut metrics = PipelineMetrics::new();
        let mut runner = Runner::resume(cp);
        let mut ran = false;
        runner
            .stage("first", &mut metrics, |_| {
                ran = true;
                Ok(tuples())
            })
            .expect("mismatched stage re-runs");
        assert!(ran, "stale checkpoint must not replay");

        // Corrupt payload: likewise discarded.
        let cp = Checkpoint {
            jobs: vec![JobSnapshot {
                name: "first".into(),
                payload: vec![1, 2, 3],
                sim_runtime: Duration::ZERO,
            }],
        };
        let mut runner = Runner::resume(cp);
        let mut ran = false;
        runner
            .stage("first", &mut PipelineMetrics::new(), |_| {
                ran = true;
                Ok(tuples())
            })
            .expect("corrupt stage re-runs");
        assert!(ran, "undecodable payload must not replay");
    }

    #[test]
    fn admission_gate_covers_fresh_and_replayed_stages() {
        use crate::sched::{AdmissionConfig, AdmissionController, Reservation};

        // A zero-depth queue rejects every stage — fresh or replayed —
        // with the structured error, leaving the checkpoint intact.
        let shut = AdmissionController::new(AdmissionConfig::with_queue_depth(0));
        let mut metrics = PipelineMetrics::new();
        let mut runner = Runner::new().with_admission(shut.clone());
        let mut ran = false;
        let err = runner
            .stage("first", &mut metrics, |_| {
                ran = true;
                Ok(tuples())
            })
            .expect_err("zero-depth queue rejects");
        assert!(matches!(err, Error::AdmissionRejected { ref job, .. } if job == "first"));
        assert!(!ran, "a rejected stage must not execute");
        assert_eq!(runner.checkpoint().jobs.len(), 0);

        // With capacity, the chain runs; memory is refunded per stage so a
        // two-stage chain fits in a one-stage memory budget.
        let open = AdmissionController::new(
            AdmissionConfig::with_queue_depth(1).with_memory_capacity(100),
        );
        let mut runner = Runner::new()
            .with_admission(open)
            .with_reservation(Reservation::minimal().with_memory(80));
        runner
            .stage("first", &mut metrics, |_| Ok(tuples()))
            .expect("gated stage runs");
        runner
            .stage("second", &mut metrics, |_| Ok(tuples()))
            .expect("memory refunded between stages");
        let gate = runner.admission().expect("gate configured");
        assert_eq!((gate.queued(), gate.reserved_memory()), (0, 0));

        // A resumed chain re-enters the admission queue: replaying against
        // a closed gate is rejected, not silently skipped past the gate.
        let checkpoint = runner.checkpoint();
        let mut resumed = Runner::resume(checkpoint).with_admission(shut);
        let err = resumed
            .stage("first", &mut PipelineMetrics::new(), |_| Ok(tuples()))
            .expect_err("replay is gated too");
        assert!(matches!(err, Error::AdmissionRejected { .. }));
    }

    #[test]
    fn checkpoint_file_persists_and_loads() {
        let path =
            std::env::temp_dir().join(format!("skymr-checkpoint-test-{}.json", std::process::id()));
        let mut metrics = PipelineMetrics::new();
        let mut runner = Runner::new().with_checkpoint_file(&path);
        runner
            .stage("first", &mut metrics, |m| {
                m.push(dummy("first", 10, 100));
                Ok(tuples())
            })
            .expect("stage runs");
        let loaded = Checkpoint::load(&path)
            .expect("file verifies")
            .expect("file exists");
        assert_eq!(loaded, runner.checkpoint());
        let _ = std::fs::remove_file(&path);
        assert_eq!(
            Checkpoint::load(&path),
            Ok(None),
            "a missing file is a fresh run, not an error"
        );
    }
}
