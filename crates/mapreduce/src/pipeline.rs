//! Metrics aggregation for chained jobs.
//!
//! The paper's skyline algorithms are two-job pipelines: the bitstring
//! generation job followed by the skyline computation job ("For MR-GPSRS
//! and MR-GPMRS algorithms, we include the time cost of the bitstring
//! generation in the runtime", Section 7.1). [`PipelineMetrics`] holds the
//! per-job metrics of such a chain and exposes the end-to-end simulated
//! runtime the benchmarks report.

use std::time::Duration;

use crate::cluster::JobMetrics;

/// Metrics of a chain of MapReduce jobs executed one after another.
#[derive(Debug, Clone, Default)]
pub struct PipelineMetrics {
    /// Per-job metrics in execution order.
    pub jobs: Vec<JobMetrics>,
}

impl PipelineMetrics {
    /// An empty pipeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a job's metrics.
    pub fn push(&mut self, metrics: JobMetrics) {
        self.jobs.push(metrics);
    }

    /// End-to-end simulated runtime: jobs run back to back.
    pub fn sim_runtime(&self) -> Duration {
        self.jobs.iter().map(|j| j.sim_runtime).sum()
    }

    /// Total host wall-clock time actually spent executing.
    pub fn host_wall(&self) -> Duration {
        self.jobs.iter().map(|j| j.host_wall).sum()
    }

    /// Total bytes shuffled across all jobs.
    pub fn shuffle_bytes(&self) -> u64 {
        self.jobs.iter().map(|j| j.shuffle_bytes).sum()
    }

    /// Looks up a job's metrics by name.
    pub fn job(&self, name: &str) -> Option<&JobMetrics> {
        self.jobs.iter().find(|j| j.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(name: &str, sim_ms: u64, bytes: u64) -> JobMetrics {
        JobMetrics {
            name: name.into(),
            map_tasks: 1,
            reduce_tasks: 1,
            map_phase: Duration::ZERO,
            reduce_phase: Duration::ZERO,
            shuffle_bytes: bytes,
            per_reducer_bytes: vec![bytes],
            shuffle_time: Duration::ZERO,
            cache_bytes: 0,
            broadcast_time: Duration::ZERO,
            startup_time: Duration::ZERO,
            sim_runtime: Duration::from_millis(sim_ms),
            host_wall: Duration::from_millis(1),
            map_output_records: 0,
            reduce_input_keys: 0,
            output_records: 0,
            map_retries: 0,
            reduce_retries: 0,
            map_task_durations: vec![],
            reduce_task_durations: vec![],
        }
    }

    #[test]
    fn sums_runtimes_and_bytes() {
        let mut p = PipelineMetrics::new();
        p.push(dummy("bitstring", 10, 100));
        p.push(dummy("skyline", 25, 900));
        assert_eq!(p.sim_runtime(), Duration::from_millis(35));
        assert_eq!(p.shuffle_bytes(), 1000);
        assert_eq!(p.host_wall(), Duration::from_millis(2));
    }

    #[test]
    fn job_lookup_by_name() {
        let mut p = PipelineMetrics::new();
        p.push(dummy("bitstring", 10, 100));
        assert!(p.job("bitstring").is_some());
        assert!(p.job("missing").is_none());
    }

    #[test]
    fn empty_pipeline_is_zero() {
        let p = PipelineMetrics::new();
        assert_eq!(p.sim_runtime(), Duration::ZERO);
        assert_eq!(p.shuffle_bytes(), 0);
    }
}
