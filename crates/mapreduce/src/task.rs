//! Map and reduce task traits, factories, and output collectors.

use skymr_common::{ByteSized, Counters, Wire};

/// Marker bounds for shuffle keys.
///
/// Keys must be orderable (the engine sorts keys before the reduce phase,
/// like Hadoop's sort-merge shuffle), hashable (for the default
/// [`crate::HashPartitioner`]), byte-sized (for traffic accounting),
/// wire-encodable (map-output partitions travel as checksummed frames),
/// and debug-printable (so [`crate::analysis`] invariant diagnostics can
/// name the offending key).
pub trait JobKey:
    Clone + Send + Ord + std::hash::Hash + std::fmt::Debug + ByteSized + Wire + 'static
{
}
impl<T: Clone + Send + Ord + std::hash::Hash + std::fmt::Debug + ByteSized + Wire + 'static> JobKey
    for T
{
}

/// Marker bounds for shuffle values. Like keys, values cross the shuffle
/// inside checksummed frames, so they must be wire-encodable.
pub trait JobValue: Send + ByteSized + Wire + 'static {}
impl<T: Send + ByteSized + Wire + 'static> JobValue for T {}

/// Per-task context handed to factories: which task this is, the job shape,
/// and the job's shared counters.
#[derive(Clone, Debug)]
pub struct TaskContext {
    /// Index of this task within its phase (0-based).
    pub task_index: usize,
    /// Number of tasks in this phase.
    pub num_tasks: usize,
    /// Number of reducers in the job.
    pub num_reducers: usize,
    /// Attempt number (0 on first execution; >0 after injected failures).
    pub attempt: u32,
    /// Shared job counters (Hadoop-style).
    pub counters: Counters,
}

/// A map task: one instance per input split.
///
/// Mirrors Hadoop's `Mapper`: the factory call is `setup`, [`MapTask::map`]
/// is invoked once per record of the split, and [`MapTask::finish`] is
/// `cleanup` — the place where the paper's algorithms emit their local
/// skylines after the whole split has been consumed (Algorithms 1, 3, 8).
pub trait MapTask: Send {
    /// Input record type.
    type In: Send + Sync;
    /// Output key type.
    type K: JobKey;
    /// Output value type.
    type V: JobValue;

    /// Processes one input record.
    fn map(&mut self, input: &Self::In, out: &mut Emitter<Self::K, Self::V>);

    /// Called once after the last record of the split.
    fn finish(&mut self, _out: &mut Emitter<Self::K, Self::V>) {}
}

/// Creates a [`MapTask`] per split. Factories are shared across worker
/// threads, so they carry the job's read-only state (e.g. the global
/// bitstring distributed via the cache).
pub trait MapFactory: Sync {
    /// The task type this factory creates.
    type Task: MapTask;
    /// Creates the task for the split described by `ctx`.
    fn create(&self, ctx: &TaskContext) -> Self::Task;
}

/// A reduce task: one instance per reducer.
///
/// [`ReduceTask::reduce`] is invoked once per distinct key (keys arrive in
/// sorted order) with all values grouped under that key, matching
/// `Reduce(k2, list(v2)) → list(k3, v3)` from the paper's Section 2.1.
pub trait ReduceTask: Send {
    /// Input key type (the map output key).
    type K: JobKey;
    /// Input value type (the map output value).
    type V: JobValue;
    /// Final output record type.
    type Out: Send;

    /// Processes one key group.
    fn reduce(&mut self, key: Self::K, values: Vec<Self::V>, out: &mut OutputCollector<Self::Out>);

    /// Called once after the last key group.
    fn finish(&mut self, _out: &mut OutputCollector<Self::Out>) {}
}

/// Creates a [`ReduceTask`] per reducer.
pub trait ReduceFactory: Sync {
    /// The task type this factory creates.
    type Task: ReduceTask;
    /// Creates the task for the reducer described by `ctx`.
    fn create(&self, ctx: &TaskContext) -> Self::Task;
}

/// Collects intermediate key-value pairs from a map task and accounts their
/// wire size for the shuffle-traffic model.
#[derive(Debug)]
pub struct Emitter<K, V> {
    pairs: Vec<(K, V)>,
    bytes: u64,
}

impl<K: ByteSized, V: ByteSized> Emitter<K, V> {
    pub(crate) fn new() -> Self {
        Self {
            pairs: Vec::new(),
            bytes: 0,
        }
    }

    /// Emits one intermediate pair.
    pub fn emit(&mut self, key: K, value: V) {
        self.bytes += key.byte_size() + value.byte_size();
        self.pairs.push((key, value));
    }

    /// Number of pairs emitted so far.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// `true` iff nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    pub(crate) fn into_parts(self) -> (Vec<(K, V)>, u64) {
        (self.pairs, self.bytes)
    }

    /// Wire size of the currently buffered pairs — the value the
    /// out-of-core engine compares against the memory budget (a pure
    /// function of the emitted data, never host memory).
    pub(crate) fn buffered_bytes(&self) -> u64 {
        self.bytes
    }

    /// Takes the buffered pairs and their wire size, resetting the
    /// buffer — the spill drain. The emitter itself never touches disk
    /// (it is called from UDF bodies); the job driver spills what this
    /// returns.
    pub(crate) fn drain(&mut self) -> (Vec<(K, V)>, u64) {
        let bytes = self.bytes;
        self.bytes = 0;
        (std::mem::take(&mut self.pairs), bytes)
    }
}

/// Collects final output records from a reduce task.
#[derive(Debug)]
pub struct OutputCollector<T> {
    records: Vec<T>,
}

impl<T> OutputCollector<T> {
    pub(crate) fn new() -> Self {
        Self {
            records: Vec::new(),
        }
    }

    /// Emits one output record.
    pub fn collect(&mut self, record: T) {
        self.records.push(record); // xtask: allow(hot-path-alloc) — output size is unknown a priori; amortized doubling is the collector's contract
    }

    /// Number of records collected so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` iff nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    pub(crate) fn into_records(self) -> Vec<T> {
        self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emitter_tracks_pairs_and_bytes() {
        let mut e: Emitter<u32, u64> = Emitter::new();
        assert!(e.is_empty());
        e.emit(1, 10);
        e.emit(2, 20);
        assert_eq!(e.len(), 2);
        let (pairs, bytes) = e.into_parts();
        assert_eq!(pairs, vec![(1, 10), (2, 20)]);
        assert_eq!(bytes, 2 * (4 + 8));
    }

    #[test]
    fn output_collector_preserves_order() {
        let mut c: OutputCollector<&'static str> = OutputCollector::new();
        c.collect("a");
        c.collect("b");
        assert_eq!(c.len(), 2);
        assert_eq!(c.into_records(), vec!["a", "b"]);
    }
}
