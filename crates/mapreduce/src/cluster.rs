//! The simulated cluster: topology, placement, cost constants, and
//! per-job metrics.

use std::time::Duration;

use crate::fault::TaskKind;
use crate::storage::StorageConfig;

/// Deterministic assignment of tasks and attempts to home nodes.
///
/// Hadoop materializes map outputs on the local disk of the machine that
/// ran the task, so losing a *machine* invalidates the outputs stored
/// there. To model that, every task (and every retry attempt) gets a home
/// node derived purely from `(seed, job, kind, index[, attempt])` over the
/// list of currently-alive nodes — never from the measured LPT schedule,
/// which depends on host timing. The same seed therefore always produces
/// the same task→node map, making node-loss recovery replayable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Seed from which every assignment is derived.
    pub seed: u64,
}

/// Hash salt for task-level home assignment (distinct from the fault
/// plan's salts in `fault/plan.rs`).
const PLACE_TASK_SALT: u64 = 0x9C0D_E001;
/// Hash salt for per-attempt home assignment.
const PLACE_ATTEMPT_SALT: u64 = 0x9C0D_E002;

impl Placement {
    /// A placement derived from `seed`.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The node that hosts slot `slot`: slots map round-robin onto nodes,
    /// so removing a node from scheduling removes `slots/nodes` slots.
    pub fn node_of_slot(slot: usize, nodes: usize) -> usize {
        slot % nodes.max(1) // xtask: allow(panic-reachability) — `.max(1)` keeps the divisor nonzero
    }

    /// Home node of a task's *materialized output* — attempt-independent,
    /// so re-executions land the replacement output on the same home and
    /// the expected re-execution count is a pure function of the plan.
    pub fn task_home(&self, job: &str, kind: TaskKind, index: usize, alive: &[usize]) -> usize {
        let h = crate::fault::plan::decision(
            self.seed,
            job,
            PLACE_TASK_SALT,
            kind as u64,
            index as u64,
        );
        pick(alive, h)
    }

    /// Home node of one *attempt* of a task — used to attribute failed
    /// attempts to nodes for blacklisting.
    pub fn attempt_home(
        &self,
        job: &str,
        kind: TaskKind,
        index: usize,
        attempt: u32,
        alive: &[usize],
    ) -> usize {
        let mixed = crate::fault::plan::decision(
            self.seed,
            job,
            PLACE_ATTEMPT_SALT,
            index as u64,
            u64::from(attempt),
        );
        let h = match kind {
            TaskKind::Map => mixed,
            TaskKind::Reduce => mixed.rotate_left(17),
        };
        pick(alive, h)
    }
}

/// Picks a node from the alive list by hash; falls back to node 0 when the
/// list is empty (the engine clamps the alive set to at least one node).
fn pick(alive: &[usize], hash: u64) -> usize {
    if alive.is_empty() {
        return 0;
    }
    let i = (hash % alive.len() as u64) as usize; // invariant: guarded by the is_empty early return above
    alive[i]
}

/// Describes the (simulated) cluster a job runs on.
///
/// Defaults mirror the paper's testbed (Section 7.1): thirteen commodity
/// machines connected by a 100 Mbit/s LAN, one map slot and one reduce slot
/// per machine, Hadoop 1.1.0. Job-startup and per-task overheads give the
/// algorithms the fixed-cost floor the paper's runtime plots show at small
/// inputs; they are set to roughly one eighth of typical Hadoop-1 values
/// because the default benchmark scale runs at a comparable fraction of the
/// paper's cardinalities — a scale model that keeps the compute-to-overhead
/// *ratios*, and therefore the relative shapes of the runtime curves,
/// intact (see DESIGN.md).
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of worker machines.
    pub nodes: usize,
    /// Cluster-wide concurrent map task slots.
    pub map_slots: usize,
    /// Cluster-wide concurrent reduce task slots.
    pub reduce_slots: usize,
    /// Link bandwidth per node, bytes/second (100 Mbit/s = 12.5 MB/s).
    pub network_bytes_per_sec: f64,
    /// Fixed job launch overhead (job setup, scheduling, HDFS round trips).
    pub job_startup: Duration,
    /// Per-task launch overhead (Hadoop-1 spawns a JVM per task).
    pub task_overhead: Duration,
    /// Maximum OS threads used to execute tasks concurrently. Task *timing*
    /// is derived from per-task measured durations placed onto slots, so
    /// this only bounds host parallelism, not the simulated clock.
    pub host_threads: usize,
    /// Deterministic task→node placement. `None` (the default) keeps the
    /// pre-placement behaviour: nodes stay a pure cost-model scalar and
    /// node-scoped fault events are ignored.
    pub placement: Option<Placement>,
    /// How long the job tracker waits after a node's last heartbeat before
    /// declaring it dead. Charged to the simulated clock once per lost
    /// node, before re-execution of its map outputs begins.
    pub heartbeat_timeout: Duration,
    /// How long an attempt may go without reporting progress before the
    /// tracker kills it (Hadoop's `mapred.task.timeout`). A hung attempt
    /// occupies its slot for exactly this long on the simulated clock,
    /// then fails and retries.
    pub progress_timeout: Duration,
    /// Hadoop-style `SkipBadRecords`: when a map task exhausts its retry
    /// budget panicking on the same input record, the engine narrows to
    /// that record, skips it, and completes the job `degraded` instead of
    /// aborting. Off by default — skipping changes the job's output.
    pub skip_bad_records: bool,
    /// Out-of-core storage plane: per-task memory budget, spill
    /// directory, and the disk cost model. Inert until a budget is set
    /// (see [`StorageConfig`]).
    pub storage: StorageConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            nodes: 13,
            map_slots: 13,
            reduce_slots: 13,
            network_bytes_per_sec: 12.5e6,
            job_startup: Duration::from_secs(2),
            task_overhead: Duration::from_millis(200),
            host_threads: std::thread::available_parallelism()
                .map_or(4, std::num::NonZeroUsize::get),
            placement: None,
            heartbeat_timeout: Duration::from_secs(30),
            progress_timeout: Duration::from_secs(600),
            skip_bad_records: false,
            storage: StorageConfig::default().with_env_overrides(),
        }
    }
}

impl ClusterConfig {
    /// A small, fast configuration for unit tests: tiny fixed overheads so
    /// tests run in milliseconds while the accounting stays observable.
    pub fn test() -> Self {
        Self {
            nodes: 4,
            map_slots: 4,
            reduce_slots: 4,
            network_bytes_per_sec: 1e9,
            job_startup: Duration::from_micros(10),
            task_overhead: Duration::from_micros(1),
            host_threads: 4,
            placement: None,
            heartbeat_timeout: Duration::from_millis(2),
            progress_timeout: Duration::from_millis(5),
            skip_bad_records: false,
            storage: StorageConfig::test().with_env_overrides(),
        }
    }

    /// The same test cluster with a seeded task→node placement — the entry
    /// point for node-level chaos tests.
    pub fn test_placed(seed: u64) -> Self {
        Self {
            placement: Some(Placement::new(seed)),
            ..Self::test()
        }
    }

    /// Fraction of shuffle bytes that crosses the network. With `p`
    /// reducers spread over `nodes` machines, a map output lands on the
    /// mapper's own machine with probability `1/nodes`.
    pub fn remote_fraction(&self) -> f64 {
        if self.nodes <= 1 {
            0.0
        } else {
            (self.nodes as f64 - 1.0) / self.nodes as f64
        }
    }

    /// Time to broadcast `bytes` of distributed-cache data to every node.
    /// The source's uplink is the bottleneck: it must push one copy per
    /// other node over its single link.
    pub fn broadcast_time(&self, bytes: u64) -> Duration {
        let secs =
            bytes as f64 * (self.nodes.saturating_sub(1)) as f64 / self.network_bytes_per_sec;
        Duration::from_secs_f64(secs)
    }

    /// Time for reducers to pull their shuffle inputs. Reducers are placed
    /// round-robin on nodes; each node's downlink carries the bytes of the
    /// reducers it hosts, in parallel with other nodes.
    pub fn shuffle_time(&self, per_reducer_bytes: &[u64]) -> Duration {
        if per_reducer_bytes.is_empty() {
            return Duration::ZERO;
        }
        let node_count = self.nodes.max(1);
        let mut per_node = vec![0u64; node_count];
        for (r, &b) in per_reducer_bytes.iter().enumerate() {
            per_node[r % node_count] += b; // xtask: allow(panic-reachability) — node_count = nodes.max(1) >= 1 and r % node_count < per_node.len()
        }
        let bottleneck = per_node.into_iter().max().unwrap_or(0);
        Duration::from_secs_f64(
            bottleneck as f64 * self.remote_fraction() / self.network_bytes_per_sec,
        )
    }

    /// Shuffle time from a real [`Placement`]: `remote_per_node[n]` is the
    /// byte total that reducers homed on node `n` must pull from *other*
    /// nodes (buckets whose producing map task is homed elsewhere). The
    /// bottleneck downlink carries exactly those bytes — no
    /// [`remote_fraction`](Self::remote_fraction) estimate. The closed-form
    /// [`shuffle_time`](Self::shuffle_time) remains the documented
    /// fallback when `placement` is `None`.
    pub fn shuffle_time_placed(&self, remote_per_node: &[u64]) -> Duration {
        let bottleneck = remote_per_node.iter().copied().max().unwrap_or(0);
        Duration::from_secs_f64(bottleneck as f64 / self.network_bytes_per_sec)
    }
}

/// Places measured task durations onto `slots` machines with longest-
/// processing-time-first list scheduling and returns each slot's total
/// load. The slot occupancy the telemetry layer gauges comes from here;
/// [`makespan`] is the maximum over these loads.
pub fn slot_loads(
    durations: &[Duration],
    slots: usize,
    per_task_overhead: Duration,
) -> Vec<Duration> {
    assert!(slots > 0, "placement requires at least one slot");
    let mut sorted: Vec<Duration> = durations.iter().map(|d| *d + per_task_overhead).collect();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut loads = vec![Duration::ZERO; slots];
    for d in sorted {
        // Place on the least-loaded slot (`loads` is non-empty: slots > 0).
        if let Some(min) = loads.iter_mut().min() {
            *min += d;
        }
    }
    loads
}

/// Places measured task durations onto `slots` machines with longest-
/// processing-time-first list scheduling and returns the makespan. This is
/// the simulated duration of a task phase (a "wave" of Hadoop tasks).
pub fn makespan(durations: &[Duration], slots: usize, per_task_overhead: Duration) -> Duration {
    slot_loads(durations, slots, per_task_overhead)
        .into_iter()
        .max()
        .unwrap_or(Duration::ZERO)
}

/// Metrics for one executed MapReduce job.
#[derive(Debug, Clone)]
pub struct JobMetrics {
    /// Job name (for reports).
    pub name: String,
    /// Number of map tasks (input splits).
    pub map_tasks: usize,
    /// Number of reduce tasks.
    pub reduce_tasks: usize,
    /// Modeled map-phase duration (makespan over map slots).
    pub map_phase: Duration,
    /// Modeled reduce-phase duration (makespan over reduce slots).
    pub reduce_phase: Duration,
    /// Total intermediate bytes emitted by mappers.
    pub shuffle_bytes: u64,
    /// Per-reducer shuffle bytes.
    pub per_reducer_bytes: Vec<u64>,
    /// Modeled shuffle transfer time.
    pub shuffle_time: Duration,
    /// Distributed-cache bytes broadcast to all nodes.
    pub cache_bytes: u64,
    /// Modeled cache broadcast time.
    pub broadcast_time: Duration,
    /// Fixed job startup charge.
    pub startup_time: Duration,
    /// Simulated end-to-end job runtime.
    pub sim_runtime: Duration,
    /// Real wall-clock time spent executing the job on the host.
    pub host_wall: Duration,
    /// Records emitted by all mappers.
    pub map_output_records: u64,
    /// Distinct keys seen by all reducers.
    pub reduce_input_keys: u64,
    /// Output records produced by all reducers.
    pub output_records: u64,
    /// Map task executions that were failed and retried (failure injection).
    pub map_retries: u64,
    /// Reduce task executions that were failed and retried.
    pub reduce_retries: u64,
    /// Total task attempts executed, across both phases: regular attempts,
    /// retries, lost-partition re-executions, and speculative backups.
    pub attempts: u64,
    /// Simulated task time that produced no surviving output: failed
    /// attempts (straggler slowdown included) and losing halves of
    /// speculative task pairs.
    pub wasted_task_time: Duration,
    /// Speculative backup attempts that beat their straggling original.
    pub speculative_wins: u64,
    /// Total retry backoff charged to the simulated clock.
    pub backoff_time: Duration,
    /// Modeled per-map-task durations as placed on the cluster: measured
    /// compute, scaled by any straggler slowdown, plus lost attempts,
    /// backoff, and extra per-attempt overheads (equals the measured
    /// compute duration in a fault-free run).
    pub map_task_durations: Vec<Duration>,
    /// Modeled per-reduce-task durations (see `map_task_durations`).
    pub reduce_task_durations: Vec<Duration>,
    /// Nodes lost (declared dead) during this job.
    pub nodes_lost: u64,
    /// Completed map tasks whose materialized outputs were invalidated by
    /// a node loss and had to re-execute before the shuffle could finish.
    pub maps_reexecuted: u64,
    /// Simulated time spent detecting node losses (heartbeat timeouts) and
    /// re-executing invalidated map tasks. Folded into `map_phase`.
    pub reexecution_time: Duration,
    /// Nodes removed from scheduling by the blacklist policy.
    pub nodes_blacklisted: u64,
    /// Shuffle fetches whose frame failed checksum verification (each is
    /// either re-fetched or escalated to a map re-execution).
    pub corrupt_fetches: u64,
    /// Input records skipped by the skip-bad-records policy.
    pub records_skipped: u64,
    /// Spill segments written by map tasks (out-of-core mode).
    pub spill_files: u64,
    /// On-disk bytes written by map-side spills.
    pub spilled_bytes: u64,
    /// External-merge passes executed on the reduce side (intermediate
    /// cascade passes plus final streaming passes over disk runs).
    pub merge_passes: u64,
    /// `true` iff the job completed by skipping poisoned records — its
    /// output is the fault-free output of the input minus the skipped
    /// records, not of the full input.
    pub degraded: bool,
    /// Simulated time the job sat in the executor's admission queue before
    /// its first task was placed. Zero for jobs run outside a
    /// [`sched::ClusterExecutor`](crate::sched::ClusterExecutor) (a
    /// dedicated cluster never queues).
    pub queue_wait_time: Duration,
    /// Task attempts killed by the scheduler to make room for a
    /// higher-priority job. Each one's elapsed slot time is charged to
    /// `wasted_task_time` and the task re-enters the retry/backoff ladder.
    pub preemptions: u64,
}

impl JobMetrics {
    /// All-zero metrics for a job of the given shape — the starting point
    /// for partial metrics when a job aborts before a phase completes.
    pub fn empty(name: &str, map_tasks: usize, reduce_tasks: usize) -> Self {
        Self {
            name: name.to_owned(),
            map_tasks,
            reduce_tasks,
            map_phase: Duration::ZERO,
            reduce_phase: Duration::ZERO,
            shuffle_bytes: 0,
            per_reducer_bytes: Vec::new(),
            shuffle_time: Duration::ZERO,
            cache_bytes: 0,
            broadcast_time: Duration::ZERO,
            startup_time: Duration::ZERO,
            sim_runtime: Duration::ZERO,
            host_wall: Duration::ZERO,
            map_output_records: 0,
            reduce_input_keys: 0,
            output_records: 0,
            map_retries: 0,
            reduce_retries: 0,
            attempts: 0,
            wasted_task_time: Duration::ZERO,
            speculative_wins: 0,
            backoff_time: Duration::ZERO,
            map_task_durations: Vec::new(),
            reduce_task_durations: Vec::new(),
            nodes_lost: 0,
            maps_reexecuted: 0,
            reexecution_time: Duration::ZERO,
            nodes_blacklisted: 0,
            corrupt_fetches: 0,
            records_skipped: 0,
            spill_files: 0,
            spilled_bytes: 0,
            merge_passes: 0,
            degraded: false,
            queue_wait_time: Duration::ZERO,
            preemptions: 0,
        }
    }

    /// The busiest reducer's modeled compute duration — the bottleneck the
    /// paper attributes MR-GPSRS's degradation to.
    pub fn max_reduce_task(&self) -> Duration {
        self.reduce_task_durations
            .iter()
            .copied()
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// This job's row for the telemetry phase table
    /// ([`skymr_telemetry::phase_table`]).
    pub fn phase_summary(&self) -> skymr_telemetry::JobPhaseSummary {
        skymr_telemetry::JobPhaseSummary {
            job: self.name.clone(),
            map_tasks: self.map_tasks,
            reduce_tasks: self.reduce_tasks,
            overhead: self.startup_time + self.broadcast_time,
            map: self.map_phase,
            shuffle: self.shuffle_time,
            reduce: self.reduce_phase,
            total: self.sim_runtime,
            attempts: self.attempts,
            retries: self.map_retries + self.reduce_retries,
            speculative_wins: self.speculative_wins,
            wasted: self.wasted_task_time,
            queued: self.queue_wait_time,
            preemptions: self.preemptions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn default_mirrors_paper_testbed() {
        let c = ClusterConfig::default();
        assert_eq!(c.nodes, 13);
        assert_eq!(c.map_slots, 13);
        assert!((c.network_bytes_per_sec - 12.5e6).abs() < 1.0);
    }

    #[test]
    fn makespan_single_slot_is_sum() {
        let d = [ms(10), ms(20), ms(30)];
        assert_eq!(makespan(&d, 1, Duration::ZERO), ms(60));
    }

    #[test]
    fn makespan_many_slots_is_max() {
        let d = [ms(10), ms(20), ms(30)];
        assert_eq!(makespan(&d, 3, Duration::ZERO), ms(30));
        assert_eq!(makespan(&d, 10, Duration::ZERO), ms(30));
    }

    #[test]
    fn makespan_balances_with_lpt() {
        // LPT on 2 slots: 30 | 20+10 -> makespan 30.
        let d = [ms(10), ms(20), ms(30)];
        assert_eq!(makespan(&d, 2, Duration::ZERO), ms(30));
        // 4 tasks of 10 on 2 slots -> 20.
        let d = [ms(10); 4];
        assert_eq!(makespan(&d, 2, Duration::ZERO), ms(20));
    }

    #[test]
    fn makespan_charges_per_task_overhead() {
        let d = [ms(10), ms(10)];
        assert_eq!(makespan(&d, 1, ms(5)), ms(30));
        assert_eq!(makespan(&d, 2, ms(5)), ms(15));
    }

    #[test]
    fn makespan_empty_phase_is_zero() {
        assert_eq!(makespan(&[], 4, ms(5)), Duration::ZERO);
    }

    /// Regression test (telemetry PR): the makespan can never beat the
    /// perfectly balanced schedule — `makespan >= busy_time / slots`,
    /// where busy time is the total slot time the phase consumes
    /// (durations plus one launch overhead per task). Checked as
    /// `makespan * slots >= sum(durations) + n * overhead` to stay in
    /// integer arithmetic.
    #[test]
    fn makespan_is_at_least_busy_time_over_slots() {
        let cases: Vec<(Vec<Duration>, usize, Duration)> = vec![
            (vec![ms(10), ms(20), ms(30)], 2, ms(5)),
            (vec![ms(1); 17], 4, ms(3)),
            (vec![ms(40), ms(1), ms(1), ms(1)], 3, Duration::ZERO),
            (vec![], 3, ms(7)),
            ((1..50).map(ms).collect(), 13, ms(2)),
        ];
        for (durations, slots, overhead) in cases {
            let span = makespan(&durations, slots, overhead);
            let busy: Duration =
                durations.iter().sum::<Duration>() + overhead * durations.len() as u32;
            assert!(
                span * slots as u32 >= busy,
                "makespan {span:?} on {slots} slots under-counts busy time {busy:?}"
            );
        }
    }

    /// `makespan` is exactly the maximum of `slot_loads`, and the loads
    /// conserve total busy time.
    #[test]
    fn slot_loads_conserve_busy_time() {
        let d = [ms(10), ms(20), ms(30), ms(7), ms(3)];
        let loads = slot_loads(&d, 3, ms(5));
        assert_eq!(loads.len(), 3);
        assert_eq!(loads.iter().copied().max(), Some(makespan(&d, 3, ms(5))));
        let total: Duration = loads.iter().sum();
        assert_eq!(total, d.iter().sum::<Duration>() + ms(5) * d.len() as u32);
    }

    #[test]
    fn phase_summary_maps_metric_fields() {
        let mut m = JobMetrics::empty("wc", 3, 2);
        m.map_phase = ms(10);
        m.shuffle_time = ms(2);
        m.reduce_phase = ms(4);
        m.startup_time = ms(1);
        m.broadcast_time = ms(1);
        m.sim_runtime = ms(18);
        m.attempts = 5;
        m.map_retries = 1;
        m.reduce_retries = 1;
        let row = m.phase_summary();
        assert_eq!(row.job, "wc");
        assert_eq!(row.overhead, ms(2));
        assert_eq!(row.retries, 2);
        assert_eq!(row.total, ms(18));
    }

    #[test]
    fn broadcast_scales_with_nodes_and_bytes() {
        let mut c = ClusterConfig::test();
        c.nodes = 5;
        c.network_bytes_per_sec = 1000.0;
        // 1000 bytes to 4 other nodes over a 1000 B/s uplink = 4 s.
        assert_eq!(c.broadcast_time(1000), Duration::from_secs(4));
        c.nodes = 1;
        assert_eq!(c.broadcast_time(1000), Duration::ZERO);
    }

    #[test]
    fn shuffle_time_bottleneck_is_busiest_node() {
        let mut c = ClusterConfig::test();
        c.nodes = 2;
        c.network_bytes_per_sec = 1000.0;
        // Reducers 0 and 2 land on node 0 (2000 bytes), reducer 1 on node 1.
        let t = c.shuffle_time(&[1000, 500, 1000]);
        let expected = 2000.0 * 0.5 / 1000.0;
        assert!((t.as_secs_f64() - expected).abs() < 1e-9);
    }

    #[test]
    fn shuffle_time_zero_for_single_node() {
        let mut c = ClusterConfig::test();
        c.nodes = 1;
        assert_eq!(c.shuffle_time(&[1_000_000]), Duration::ZERO);
    }

    #[test]
    fn placement_homes_are_deterministic_and_in_range() {
        let p = Placement::new(0xFEED);
        let alive: Vec<usize> = (0..4).collect();
        for i in 0..32 {
            let home = p.task_home("wc", TaskKind::Map, i, &alive);
            assert!(home < 4);
            assert_eq!(home, p.task_home("wc", TaskKind::Map, i, &alive));
        }
        // A different seed must disagree somewhere over 32 tasks.
        let q = Placement::new(0xFEED + 1);
        assert!((0..32).any(|i| {
            p.task_home("wc", TaskKind::Map, i, &alive)
                != q.task_home("wc", TaskKind::Map, i, &alive)
        }));
    }

    #[test]
    fn placement_respects_the_alive_list() {
        let p = Placement::new(7);
        // With node 2 dead, no task may be homed there.
        let alive = [0usize, 1, 3];
        for i in 0..64 {
            assert_ne!(p.task_home("wc", TaskKind::Map, i, &alive), 2);
            assert_ne!(p.attempt_home("wc", TaskKind::Reduce, i, 1, &alive), 2);
        }
    }

    #[test]
    fn slots_map_round_robin_onto_nodes() {
        assert_eq!(Placement::node_of_slot(0, 4), 0);
        assert_eq!(Placement::node_of_slot(5, 4), 1);
        assert_eq!(Placement::node_of_slot(3, 0), 0);
    }

    #[test]
    fn placed_shuffle_charges_only_remote_bytes() {
        let mut c = ClusterConfig::test();
        c.network_bytes_per_sec = 1000.0;
        // Busiest node pulls 2000 remote bytes -> 2 s, no remote_fraction.
        let t = c.shuffle_time_placed(&[2000, 500]);
        assert!((t.as_secs_f64() - 2.0).abs() < 1e-9);
        assert_eq!(c.shuffle_time_placed(&[]), Duration::ZERO);
    }

    #[test]
    fn remote_fraction_bounds() {
        let mut c = ClusterConfig::test();
        c.nodes = 1;
        assert_eq!(c.remote_fraction(), 0.0);
        c.nodes = 13;
        assert!((c.remote_fraction() - 12.0 / 13.0).abs() < 1e-12);
    }
}
