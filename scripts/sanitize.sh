#!/usr/bin/env bash
# Runs the MapReduce engine test suite under ThreadSanitizer.
#
# TSan needs `-Zsanitizer=thread`, which is nightly-only and wants the
# standard library rebuilt with the same flag (`-Zbuild-std`). This script
# is **advisory**: the analysis workflow runs it with continue-on-error,
# and locally it exits 0 with an explanation when no nightly toolchain is
# installed (the default offline dev container has only stable).
#
# Usage: ./scripts/sanitize.sh [extra cargo test args...]
set -euo pipefail
cd "$(dirname "$0")/.."

if ! rustup toolchain list 2>/dev/null | grep -q nightly; then
    echo "sanitize.sh: no nightly toolchain installed; skipping TSan run." >&2
    echo "sanitize.sh: install one with 'rustup toolchain install nightly \
--component rust-src' to enable this check." >&2
    exit 0
fi

# -Zbuild-std needs the standard library sources.
if ! rustup component list --toolchain nightly 2>/dev/null \
        | grep -q '^rust-src.*(installed)'; then
    echo "sanitize.sh: nightly is missing rust-src (needed by -Zbuild-std); \
skipping TSan run." >&2
    echo "sanitize.sh: enable with 'rustup component add rust-src \
--toolchain nightly'." >&2
    exit 0
fi

host="$(rustc -vV | sed -n 's/^host: //p')"

# The engine crate is where all the threading lives (pool, shuffle,
# counters); shaking it under TSan covers the schedule-shaker's blind
# spots (actual data races rather than output divergence).
RUSTFLAGS="-Zsanitizer=thread" \
RUSTDOCFLAGS="-Zsanitizer=thread" \
    cargo +nightly test -q \
    -Zbuild-std \
    --target "$host" \
    -p skymr-mapreduce -p skymr-common \
    "$@"
