//! Larger-scale smoke tests, ignored by default (`cargo test -- --ignored`
//! runs them). They exercise the pipelines at bench-like scale, where the
//! O(n²) BNL oracle would dominate the runtime — so agreement between
//! independent implementations stands in for the oracle.

use skymr::{mr_gpmrs, mr_gpsrs, PpdPolicy, SkylineConfig};
use skymr_baselines::{sky_mr, SkyMrConfig};
use skymr_common::bytes::Wire;
use skymr_datagen::{generate, Distribution};
use skymr_mapreduce::telemetry::export::chrome_trace;
use skymr_mapreduce::Collector;

#[test]
#[ignore = "bench-scale; run with cargo test -- --ignored"]
fn three_independent_implementations_agree_at_scale() {
    let data = generate(Distribution::Anticorrelated, 8, 100_000, 601);
    let config = SkylineConfig {
        ppd: PpdPolicy::auto(),
        ..SkylineConfig::default()
    };
    let gpmrs = mr_gpmrs(&data, &config).expect("gpmrs runs");
    let gpsrs = mr_gpsrs(&data, &config).expect("gpsrs runs");
    let skymr_run = sky_mr(&data, &SkyMrConfig::default()).expect("sky-mr runs");
    assert_eq!(gpmrs.skyline_ids(), gpsrs.skyline_ids());
    assert_eq!(gpmrs.skyline_ids(), skymr_run.skyline_ids());
    assert!(
        gpmrs.skyline.len() > data.len() / 2,
        "8-d anti-correlated skyline should be huge"
    );
}

#[test]
#[ignore = "bench-scale; run with cargo test -- --ignored"]
fn out_of_core_run_at_ten_times_fig7_cardinality() {
    // Figure 7's low-cardinality setting is 1×10⁵ tuples; run MR-GPSRS at
    // 10× that under a per-slot budget far below the dataset's serialized
    // size. The storage plane has to carry the job — nonzero spill/merge
    // metrics, spill/merge spans in the trace — and the skyline must equal
    // the in-memory run's exactly.
    let data = generate(Distribution::Independent, 3, 1_000_000, 603);
    let mut wire = Vec::new();
    for t in data.tuples() {
        t.wire_encode(&mut wire);
    }
    let budget = 4u64 << 20;
    assert!(
        budget < wire.len() as u64,
        "the budget ({budget} B) must be smaller than the serialized dataset ({} B)",
        wire.len()
    );
    drop(wire);

    let collector = Collector::new();
    let config = SkylineConfig::test()
        .with_memory_budget(Some(budget))
        .with_telemetry(Some(collector.clone()));
    let spilled = mr_gpsrs(&data, &config).expect("the spilled run completes");
    let in_memory = mr_gpsrs(&data, &SkylineConfig::test()).expect("the in-memory run completes");
    assert_eq!(spilled.skyline, in_memory.skyline);

    let spilled_bytes: u64 = spilled.metrics.jobs.iter().map(|j| j.spilled_bytes).sum();
    let merge_passes: u64 = spilled.metrics.jobs.iter().map(|j| j.merge_passes).sum();
    assert!(spilled_bytes > 0, "the run must actually go out of core");
    assert!(merge_passes > 0, "spilled runs must externally merge");

    let trace = chrome_trace(&collector.finish());
    assert!(trace.contains("\"spill[0]\""), "spill spans must be traced");
    assert!(trace.contains("\"merge\""), "merge spans must be traced");
}

#[test]
#[ignore = "bench-scale; run with cargo test -- --ignored"]
fn high_dimensional_wide_grid_stays_exact() {
    // d=12 at PPD 2: 4096 partitions, deep ADR lattices.
    let data = generate(Distribution::Independent, 12, 20_000, 602);
    let config = SkylineConfig::test().with_ppd(2);
    let a = mr_gpsrs(&data, &config).expect("gpsrs runs");
    let b = mr_gpmrs(&data, &config).expect("gpmrs runs");
    assert_eq!(a.skyline_ids(), b.skyline_ids());
}
