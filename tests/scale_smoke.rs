//! Larger-scale smoke tests, ignored by default (`cargo test -- --ignored`
//! runs them). They exercise the pipelines at bench-like scale, where the
//! O(n²) BNL oracle would dominate the runtime — so agreement between
//! independent implementations stands in for the oracle.

use skymr::{mr_gpmrs, mr_gpsrs, PpdPolicy, SkylineConfig};
use skymr_baselines::{sky_mr, SkyMrConfig};
use skymr_datagen::{generate, Distribution};

#[test]
#[ignore = "bench-scale; run with cargo test -- --ignored"]
fn three_independent_implementations_agree_at_scale() {
    let data = generate(Distribution::Anticorrelated, 8, 100_000, 601);
    let config = SkylineConfig {
        ppd: PpdPolicy::auto(),
        ..SkylineConfig::default()
    };
    let gpmrs = mr_gpmrs(&data, &config).expect("gpmrs runs");
    let gpsrs = mr_gpsrs(&data, &config).expect("gpsrs runs");
    let skymr_run = sky_mr(&data, &SkyMrConfig::default()).expect("sky-mr runs");
    assert_eq!(gpmrs.skyline_ids(), gpsrs.skyline_ids());
    assert_eq!(gpmrs.skyline_ids(), skymr_run.skyline_ids());
    assert!(
        gpmrs.skyline.len() > data.len() / 2,
        "8-d anti-correlated skyline should be huge"
    );
}

#[test]
#[ignore = "bench-scale; run with cargo test -- --ignored"]
fn high_dimensional_wide_grid_stays_exact() {
    // d=12 at PPD 2: 4096 partitions, deep ADR lattices.
    let data = generate(Distribution::Independent, 12, 20_000, 602);
    let config = SkylineConfig::test().with_ppd(2);
    let a = mr_gpsrs(&data, &config).expect("gpsrs runs");
    let b = mr_gpmrs(&data, &config).expect("gpmrs runs");
    assert_eq!(a.skyline_ids(), b.skyline_ids());
}
