//! Shared helpers for the cross-crate integration tests.

use skymr::{mr_gpmrs, mr_gpsrs, mr_hybrid, SkylineConfig};
use skymr_baselines::{bnl_skyline, mr_angle, mr_bnl, mr_sfs, sky_mr, BaselineConfig, SkyMrConfig};
use skymr_common::Dataset;
use skymr_datagen::{generate, Distribution};

/// All distributions exercised by the cross-algorithm tests.
pub const ALL_DISTRIBUTIONS: [Distribution; 4] = [
    Distribution::Independent,
    Distribution::Correlated,
    Distribution::Anticorrelated,
    Distribution::Clustered { clusters: 3 },
];

/// A deterministic dataset for a scenario.
pub fn scenario(dist: Distribution, dim: usize, card: usize, seed: u64) -> Dataset {
    generate(dist, dim, card, seed)
}

/// The skyline ids every algorithm must produce, from the centralized BNL
/// oracle.
pub fn oracle_ids(data: &Dataset) -> Vec<u64> {
    bnl_skyline(data.tuples()).iter().map(|t| t.id).collect()
}

/// Runs every MapReduce algorithm in the workspace on `data` and returns
/// `(name, skyline ids)` pairs.
pub fn all_algorithm_ids(
    data: &Dataset,
    config: &SkylineConfig,
    bconfig: &BaselineConfig,
) -> Vec<(&'static str, Vec<u64>)> {
    vec![
        (
            "MR-GPSRS",
            mr_gpsrs(data, config).expect("gpsrs runs").skyline_ids(),
        ),
        (
            "MR-GPMRS",
            mr_gpmrs(data, config).expect("gpmrs runs").skyline_ids(),
        ),
        (
            "hybrid",
            mr_hybrid(data, config).expect("hybrid runs").skyline_ids(),
        ),
        (
            "MR-BNL",
            mr_bnl(data, bconfig).expect("mr-bnl runs").skyline_ids(),
        ),
        (
            "MR-SFS",
            mr_sfs(data, bconfig).expect("mr-sfs runs").skyline_ids(),
        ),
        (
            "MR-Angle",
            mr_angle(data, bconfig)
                .expect("mr-angle runs")
                .skyline_ids(),
        ),
        (
            "SKY-MR",
            sky_mr(data, &SkyMrConfig::test())
                .expect("sky-mr runs")
                .skyline_ids(),
        ),
    ]
}

/// Asserts that every algorithm agrees with the oracle on `data`.
pub fn assert_all_agree(data: &Dataset, config: &SkylineConfig, label: &str) {
    let oracle = oracle_ids(data);
    for (name, ids) in all_algorithm_ids(data, config, &BaselineConfig::test()) {
        assert_eq!(ids, oracle, "{name} disagrees with BNL oracle on {label}");
    }
}
