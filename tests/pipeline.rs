//! End-to-end pipeline tests: job chaining, metrics plausibility, and the
//! simulated-cost accounting across crates.

use std::time::Duration;

use skymr::{mr_gpmrs, mr_gpsrs, PpdPolicy, SkylineConfig};
use skymr_baselines::{mr_bnl, BaselineConfig};
use skymr_datagen::Distribution;
use skymr_integration_tests::scenario;
use skymr_mapreduce::ClusterConfig;

#[test]
fn skyline_pipelines_run_two_jobs_in_order() {
    let data = scenario(Distribution::Independent, 3, 600, 201);
    let run = mr_gpsrs(&data, &SkylineConfig::test()).unwrap();
    let names: Vec<&str> = run.metrics.jobs.iter().map(|j| j.name.as_str()).collect();
    assert_eq!(names, vec!["bitstring", "gpsrs"]);
    let run = mr_gpmrs(&data, &SkylineConfig::test()).unwrap();
    let names: Vec<&str> = run.metrics.jobs.iter().map(|j| j.name.as_str()).collect();
    assert_eq!(names, vec!["bitstring", "gpmrs"]);
}

#[test]
fn auto_ppd_renames_the_pre_job() {
    let data = scenario(Distribution::Independent, 3, 600, 202);
    let mut config = SkylineConfig::test();
    config.ppd = PpdPolicy::auto();
    let run = mr_gpsrs(&data, &config).unwrap();
    assert_eq!(run.metrics.jobs[0].name, "bitstring-ppd");
}

#[test]
fn sim_runtime_is_sum_of_jobs() {
    let data = scenario(Distribution::Anticorrelated, 3, 500, 203);
    let run = mr_gpmrs(&data, &SkylineConfig::test()).unwrap();
    let total: Duration = run.metrics.jobs.iter().map(|j| j.sim_runtime).sum();
    assert_eq!(run.metrics.sim_runtime(), total);
    assert!(total > Duration::ZERO);
}

#[test]
fn startup_overheads_flow_into_runtime() {
    // With the paper-default cluster, each job carries a fixed startup: a
    // two-job pipeline can never be faster than twice that charge.
    let data = scenario(Distribution::Independent, 2, 200, 204);
    let config = SkylineConfig {
        cluster: ClusterConfig::default(),
        ..SkylineConfig::test()
    };
    let floor = config.cluster.job_startup * 2;
    let run = mr_gpsrs(&data, &config).unwrap();
    assert!(run.metrics.sim_runtime() >= floor);
}

#[test]
fn bitstring_pruning_reduces_shuffle_traffic() {
    // When the dominating tuples are NOT on every mapper, mapper-local
    // false-positive elimination cannot drop dominated partitions by
    // itself — only the bitstring can. One origin tuple (landing on mapper
    // 0 under round-robin splitting) dominates a large mass: with pruning
    // the other mappers ship nothing from the mass, without it they ship
    // their local skylines of it.
    let mut tuples = vec![skymr_common::Tuple::new(0, vec![0.01, 0.01])];
    for i in 1..3_000u64 {
        let a = 0.6 + ((i * 13) % 89) as f64 / 300.0;
        let b = 0.6 + ((i * 29) % 97) as f64 / 300.0;
        tuples.push(skymr_common::Tuple::new(i, vec![a, b]));
    }
    let data = skymr_common::Dataset::new(2, tuples).unwrap();
    let base = SkylineConfig::test().with_ppd(5);
    let mut unpruned_cfg = base.clone();
    unpruned_cfg.prune_bitstring = false;
    let pruned = mr_gpsrs(&data, &base).unwrap();
    let unpruned = mr_gpsrs(&data, &unpruned_cfg).unwrap();
    assert_eq!(
        pruned.skyline_ids(),
        unpruned.skyline_ids(),
        "pruning must not change results"
    );
    assert!(
        pruned.metrics.jobs[1].shuffle_bytes < unpruned.metrics.jobs[1].shuffle_bytes,
        "pruning should reduce shuffle bytes: {} vs {}",
        pruned.metrics.jobs[1].shuffle_bytes,
        unpruned.metrics.jobs[1].shuffle_bytes
    );
    assert!(pruned.info.surviving_partitions < pruned.info.non_empty_partitions);
}

#[test]
fn gpmrs_spreads_reduce_work_across_buckets() {
    // Each bucket's partition set is a proper subset of the surviving
    // partitions (the first seed belongs only to its own group), so the
    // busiest reducer performs at most — and typically fewer — tuple
    // comparisons than the single reducer doing everything. (Wall-clock
    // gains additionally need the per-partition work to dwarf the
    // replication overhead, which requires paper-scale inputs; counters
    // are the scale-free part of the claim.)
    let data = scenario(Distribution::Anticorrelated, 5, 4_000, 206);
    let one = mr_gpmrs(&data, &SkylineConfig::test().with_reducers(1)).unwrap();
    let many = mr_gpmrs(&data, &SkylineConfig::test().with_reducers(4)).unwrap();
    assert_eq!(one.skyline_ids(), many.skyline_ids());
    assert!(
        many.info.buckets > 1,
        "scenario must actually produce multiple buckets"
    );
    let one_max = one.counters["gpmrs.reduce.tuple_cmps.max"];
    let many_max = many.counters["gpmrs.reduce.tuple_cmps.max"];
    assert!(
        many_max <= one_max,
        "busiest of 4 reducers did more tuple comparisons than the single reducer: \
         {many_max} vs {one_max}"
    );
    // The shuffle really fans out to several reducers.
    let active = many.metrics.jobs[1]
        .per_reducer_bytes
        .iter()
        .filter(|&&b| b > 0)
        .count();
    assert!(active > 1, "shuffle bytes all landed on one reducer");
}

#[test]
fn counters_report_mapper_and_reducer_work() {
    let data = scenario(Distribution::Anticorrelated, 3, 800, 207);
    let run = mr_gpmrs(&data, &SkylineConfig::test()).unwrap();
    let total_map = run.counters["gpmrs.map.partition_cmps"];
    let max_map = run.counters["gpmrs.map.partition_cmps.max"];
    assert!(max_map <= total_map);
    assert!(run.counters["gpmrs.map.tuple_cmps"] > 0);
}

#[test]
fn baselines_share_the_same_cluster_accounting() {
    let data = scenario(Distribution::Independent, 3, 500, 208);
    let run = mr_bnl(&data, &BaselineConfig::test()).unwrap();
    assert_eq!(run.metrics.jobs.len(), 2, "MR-BNL is a two-phase pipeline");
    for job in &run.metrics.jobs {
        assert_eq!(
            job.sim_runtime,
            job.startup_time
                + job.broadcast_time
                + job.map_phase
                + job.shuffle_time
                + job.reduce_phase
        );
    }
}

#[test]
fn mappers_prefilter_dominated_partitions() {
    // Tuples in pruned partitions never reach the local skylines: with a
    // single dominating tuple at the origin, the mappers' emitted records
    // shrink dramatically versus no pruning.
    let mut tuples = vec![skymr_common::Tuple::new(0, vec![0.01, 0.01, 0.01])];
    for i in 1..2_000u64 {
        let f = 0.5 + ((i * 13) % 97) as f64 / 400.0;
        tuples.push(skymr_common::Tuple::new(i, vec![f, f, f]));
    }
    let data = skymr_common::Dataset::new(3, tuples).unwrap();
    let pruned = mr_gpsrs(&data, &SkylineConfig::test().with_ppd(4)).unwrap();
    let mut cfg = SkylineConfig::test().with_ppd(4);
    cfg.prune_bitstring = false;
    let unpruned = mr_gpsrs(&data, &cfg).unwrap();
    assert_eq!(pruned.skyline_ids(), vec![0]);
    assert!(
        pruned.counters["gpsrs.map.tuple_cmps"] < unpruned.counters["gpsrs.map.tuple_cmps"],
        "bitstring pruning should cut mapper tuple comparisons"
    );
}
