//! Property-based cross-algorithm tests: random datasets, random job
//! shapes — every algorithm must agree with the BNL oracle, and core
//! invariants must hold.

use proptest::prelude::*;

use skymr::{mr_gpmrs, mr_gpsrs, PpdPolicy, SkylineConfig};
use skymr_baselines::{
    bnl_skyline, bnl_skyline_windowed, mr_angle, mr_bnl, sfs_skyline, BaselineConfig, SfsOrder,
};
use skymr_common::dominance::dominates;
use skymr_common::{Dataset, Tuple};

fn arb_dataset(max_dim: usize, max_card: usize) -> impl Strategy<Value = Dataset> {
    (1..=max_dim, 0..=max_card).prop_flat_map(|(dim, card)| {
        proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, dim), card).prop_map(
            move |rows| {
                let tuples = rows
                    .into_iter()
                    .enumerate()
                    .map(|(i, vals)| Tuple::new(i as u64, vals))
                    .collect();
                Dataset::new_unchecked(dim, tuples)
            },
        )
    })
}

/// The skyline definition, verified directly: output = exactly the
/// non-dominated input tuples.
fn assert_is_skyline(data: &Dataset, skyline: &[Tuple]) {
    let in_skyline: std::collections::BTreeSet<u64> = skyline.iter().map(|t| t.id).collect();
    for t in data.tuples() {
        let dominated = data.tuples().iter().any(|o| dominates(o, t));
        assert_eq!(
            !dominated,
            in_skyline.contains(&t.id),
            "tuple {} misclassified (dominated={dominated})",
            t.id
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gpsrs_is_a_correct_skyline(data in arb_dataset(4, 120), ppd in 1usize..6, mappers in 1usize..5) {
        let config = SkylineConfig::test().with_ppd(ppd).with_mappers(mappers);
        let run = mr_gpsrs(&data, &config).unwrap();
        assert_is_skyline(&data, &run.skyline);
    }

    #[test]
    fn gpmrs_is_a_correct_skyline(
        data in arb_dataset(4, 120),
        ppd in 1usize..6,
        mappers in 1usize..5,
        reducers in 1usize..6,
    ) {
        let config = SkylineConfig::test().with_ppd(ppd).with_mappers(mappers).with_reducers(reducers);
        let run = mr_gpmrs(&data, &config).unwrap();
        assert_is_skyline(&data, &run.skyline);
    }

    #[test]
    fn gpmrs_with_auto_ppd_matches_oracle(data in arb_dataset(3, 150)) {
        let mut config = SkylineConfig::test();
        config.ppd = PpdPolicy::auto();
        let run = mr_gpmrs(&data, &config).unwrap();
        prop_assert_eq!(run.skyline, bnl_skyline(data.tuples()));
    }

    #[test]
    fn baselines_match_oracle(data in arb_dataset(4, 100), mappers in 1usize..4) {
        let config = BaselineConfig::test().with_mappers(mappers);
        let oracle = bnl_skyline(data.tuples());
        prop_assert_eq!(mr_bnl(&data, &config).unwrap().skyline, oracle.clone());
        prop_assert_eq!(mr_angle(&data, &config).unwrap().skyline, oracle);
    }

    #[test]
    fn windowed_bnl_matches_unbounded(data in arb_dataset(3, 80), cap in 1usize..20) {
        prop_assert_eq!(
            bnl_skyline_windowed(data.tuples(), cap),
            bnl_skyline(data.tuples())
        );
    }

    #[test]
    fn sfs_matches_bnl(data in arb_dataset(4, 100)) {
        prop_assert_eq!(sfs_skyline(data.tuples(), SfsOrder::Entropy), bnl_skyline(data.tuples()));
        prop_assert_eq!(sfs_skyline(data.tuples(), SfsOrder::Sum), bnl_skyline(data.tuples()));
    }

    #[test]
    fn skyline_is_antichain(data in arb_dataset(4, 100)) {
        // No skyline tuple dominates another.
        let sky = bnl_skyline(data.tuples());
        for a in &sky {
            for b in &sky {
                // Dominance is irreflexive, so no pair — including a == b —
                // may be related.
                prop_assert!(!dominates(a, b), "skyline contains dominated tuple");
            }
        }
    }

    #[test]
    fn skyline_shrinks_under_dataset_extension_only_by_domination(
        data in arb_dataset(3, 60),
        extra in proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, 3), 1..20),
    ) {
        // Monotonicity: adding tuples can only remove existing skyline
        // members if a new tuple dominates them.
        if data.dim() != 3 { return Ok(()); }
        let before: std::collections::BTreeSet<u64> =
            bnl_skyline(data.tuples()).iter().map(|t| t.id).collect();
        let mut tuples = data.tuples().to_vec();
        let base = tuples.len() as u64;
        for (i, vals) in extra.iter().enumerate() {
            tuples.push(Tuple::new(base + i as u64, vals.clone()));
        }
        let extended = Dataset::new_unchecked(3, tuples);
        let after: std::collections::BTreeSet<u64> =
            bnl_skyline(extended.tuples()).iter().map(|t| t.id).collect();
        for id in &before {
            if !after.contains(id) {
                let t = &data.tuples()[*id as usize];
                let dominated_by_new = extended.tuples()[data.len()..]
                    .iter()
                    .any(|n| dominates(n, t));
                prop_assert!(dominated_by_new, "tuple {id} vanished without a new dominator");
            }
        }
    }
}
