//! End-to-end invariants of the independent-group machinery driving
//! MR-GPMRS, validated on real pipeline runs rather than synthetic
//! bitstrings.

use std::collections::BTreeSet;

use skymr::bitstring::job::generate_bitstring;
use skymr::groups::{generate_independent_groups, plan_groups, MergePolicy};
use skymr::{mr_gpmrs, SkylineConfig};
use skymr_baselines::bnl_skyline;
use skymr_datagen::Distribution;
use skymr_integration_tests::scenario;

fn real_bitstring(
    dist: Distribution,
    dim: usize,
    card: usize,
    seed: u64,
    config: &SkylineConfig,
) -> (skymr::Bitstring, usize) {
    let data = scenario(dist, dim, card, seed);
    let splits = data.split(config.mappers);
    let (bs, info, _) = generate_bitstring(&splits, dim, data.len(), config).unwrap();
    (bs, info.non_empty)
}

#[test]
fn groups_cover_and_are_closed_on_real_data() {
    for dist in [Distribution::Independent, Distribution::Anticorrelated] {
        let config = SkylineConfig::test().with_ppd(5);
        let (bs, _) = real_bitstring(dist, 3, 2_000, 401, &config);
        let groups = generate_independent_groups(&bs);
        let surviving: BTreeSet<u32> = bs.iter_set().map(|p| p as u32).collect();
        let covered: BTreeSet<u32> = groups
            .iter()
            .flat_map(|g| g.partitions.iter().copied())
            .collect();
        assert_eq!(
            covered, surviving,
            "groups must cover all surviving partitions ({dist:?})"
        );
        // ADR-closure of every group (Definition 5 over surviving partitions).
        let grid = bs.grid();
        for g in &groups {
            let members: BTreeSet<u32> = g.partitions.iter().copied().collect();
            for &p in &g.partitions {
                for q in grid.adr(p as usize).filter(|&q| bs.is_set(q)) {
                    assert!(
                        members.contains(&(q as u32)),
                        "group not ADR-closed ({dist:?})"
                    );
                }
            }
        }
    }
}

#[test]
fn lemma2_group_skylines_are_global_skyline_parts() {
    // Compute each independent group's skyline from the raw tuples and
    // check every tuple of it is in the global skyline (Lemma 2).
    let data = scenario(Distribution::Anticorrelated, 2, 1_500, 402);
    let config = SkylineConfig::test().with_ppd(6);
    let splits = data.split(config.mappers);
    let (bs, _, _) = generate_bitstring(&splits, data.dim(), data.len(), &config).unwrap();
    let groups = generate_independent_groups(&bs);
    let global: BTreeSet<u64> = bnl_skyline(data.tuples()).iter().map(|t| t.id).collect();
    let grid = bs.grid();
    for g in &groups {
        let members: BTreeSet<u32> = g.partitions.iter().copied().collect();
        let tuples: Vec<skymr_common::Tuple> = data
            .tuples()
            .iter()
            .filter(|t| members.contains(&(grid.partition_of(t) as u32)))
            .cloned()
            .collect();
        for t in bnl_skyline(&tuples) {
            assert!(
                global.contains(&t.id),
                "Lemma 2 violated: tuple {} in group {} skyline but not global",
                t.id,
                g.seed
            );
        }
    }
}

#[test]
fn designated_outputs_partition_the_skyline() {
    // Union of designated partitions over buckets = all surviving
    // partitions; intersection pairwise empty (exactly-once output).
    let config = SkylineConfig::test().with_ppd(5).with_reducers(3);
    let (bs, _) = real_bitstring(Distribution::Anticorrelated, 3, 2_000, 403, &config);
    for policy in [MergePolicy::ComputationCost, MergePolicy::CommunicationCost] {
        let plan = plan_groups(&bs, 3, policy);
        let mut seen: BTreeSet<u32> = BTreeSet::new();
        for (&p, &b) in &plan.designated {
            assert!(b < plan.num_buckets());
            assert!(seen.insert(p), "partition {p} designated twice");
        }
        let surviving: BTreeSet<u32> = bs.iter_set().map(|p| p as u32).collect();
        assert_eq!(seen, surviving);
    }
}

#[test]
fn bucket_count_matches_run_info() {
    let data = scenario(Distribution::Anticorrelated, 3, 1_000, 404);
    for r in [1usize, 2, 4, 8] {
        let run = mr_gpmrs(&data, &SkylineConfig::test().with_reducers(r)).unwrap();
        assert!(run.info.buckets <= r);
        assert!(run.info.buckets <= run.info.independent_groups.max(1));
        // The skyline job really ran with that many reducers.
        assert_eq!(run.metrics.jobs[1].reduce_tasks, run.info.buckets);
    }
}

#[test]
fn replication_grows_with_bucket_count() {
    // More buckets -> more groups kept separate -> at least as many
    // replicated partition copies shipped.
    let config = SkylineConfig::test().with_ppd(6);
    let (bs, _) = real_bitstring(Distribution::Anticorrelated, 3, 3_000, 405, &config);
    let copies = |r: usize| -> usize {
        plan_groups(&bs, r, MergePolicy::ComputationCost)
            .buckets
            .iter()
            .map(|b| b.partitions.len())
            .sum()
    };
    assert!(copies(4) >= copies(1), "4 buckets ship fewer copies than 1");
}
