//! Property tests for the extension queries: k-skyband and top-k
//! dominating must agree with exhaustive references under random data,
//! random `k`, and random job shapes.

use proptest::prelude::*;

use skymr::skyband::{band_insert, skyband_reference};
use skymr::topk::top_k_dominating_reference;
use skymr::{mr_skyband, mr_skyband_multi, mr_top_k_dominating, SkylineConfig};
use skymr_common::dominance::dominates;
use skymr_common::{Dataset, Tuple};

fn arb_dataset(max_dim: usize, max_card: usize) -> impl Strategy<Value = Dataset> {
    (1..=max_dim, 0..=max_card).prop_flat_map(|(dim, card)| {
        proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, dim), card).prop_map(
            move |rows| {
                let tuples = rows
                    .into_iter()
                    .enumerate()
                    .map(|(i, vals)| Tuple::new(i as u64, vals))
                    .collect();
                Dataset::new_unchecked(dim, tuples)
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn skyband_matches_reference(
        data in arb_dataset(3, 120),
        k in 1u32..6,
        ppd in 1usize..5,
        mappers in 1usize..4,
    ) {
        let config = SkylineConfig::test().with_ppd(ppd).with_mappers(mappers);
        let run = mr_skyband(&data, k, &config).unwrap();
        prop_assert_eq!(run.skyline, skyband_reference(data.tuples(), k));
    }

    #[test]
    fn multi_reducer_skyband_matches_reference(
        data in arb_dataset(3, 120),
        k in 1u32..5,
        reducers in 1usize..5,
    ) {
        let config = SkylineConfig::test().with_reducers(reducers);
        let run = mr_skyband_multi(&data, k, &config).unwrap();
        prop_assert_eq!(run.skyline, skyband_reference(data.tuples(), k));
    }

    #[test]
    fn bands_are_monotone_in_k(data in arb_dataset(3, 100)) {
        let config = SkylineConfig::test();
        let mut previous: Option<std::collections::BTreeSet<u64>> = None;
        for k in [1u32, 2, 4] {
            let band: std::collections::BTreeSet<u64> =
                mr_skyband(&data, k, &config).unwrap().skyline_ids().into_iter().collect();
            if let Some(prev) = &previous {
                prop_assert!(prev.is_subset(&band), "band shrank from k to k+");
            }
            previous = Some(band);
        }
    }

    #[test]
    fn band_membership_definition_holds(data in arb_dataset(2, 90), k in 1u32..5) {
        let band: std::collections::BTreeSet<u64> = mr_skyband(&data, k, &SkylineConfig::test())
            .unwrap()
            .skyline_ids()
            .into_iter()
            .collect();
        for t in data.tuples() {
            let dominators = data.tuples().iter().filter(|o| dominates(o, t)).count() as u32;
            prop_assert_eq!(
                dominators < k,
                band.contains(&t.id),
                "tuple {} misclassified (dominators={}, k={})", t.id, dominators, k
            );
        }
    }

    #[test]
    fn band_insert_never_discards_true_band_members(
        rows in proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, 2), 0..80),
        k in 1u32..4,
    ) {
        // The witness theorem's premise: the BNL-k window is a superset of
        // the true k-skyband of the processed tuples.
        let tuples: Vec<Tuple> =
            rows.into_iter().enumerate().map(|(i, v)| Tuple::new(i as u64, v)).collect();
        let mut window = Vec::new();
        for t in &tuples {
            band_insert(&mut window, t.clone(), k);
        }
        let kept: std::collections::BTreeSet<u64> = window.iter().map(|(t, _)| t.id).collect();
        for t in &tuples {
            let dominators = tuples.iter().filter(|o| dominates(o, t)).count() as u32;
            if dominators < k {
                prop_assert!(kept.contains(&t.id), "true band member {} discarded", t.id);
            }
        }
    }

    #[test]
    fn topk_matches_reference(
        data in arb_dataset(3, 100),
        k in 1usize..12,
        ppd in 1usize..5,
    ) {
        let config = SkylineConfig::test().with_ppd(ppd);
        let run = mr_top_k_dominating(&data, k, &config).unwrap();
        prop_assert_eq!(run.ranked, top_k_dominating_reference(data.tuples(), k));
    }

    #[test]
    fn topk_scores_are_sorted_and_exact(data in arb_dataset(2, 80)) {
        let run = mr_top_k_dominating(&data, 5, &SkylineConfig::test()).unwrap();
        for w in run.ranked.windows(2) {
            prop_assert!(w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0.id < w[1].0.id));
        }
        for (t, score) in &run.ranked {
            let truth = data.tuples().iter().filter(|x| dominates(t, x)).count() as u64;
            prop_assert_eq!(*score, truth, "score of tuple {} wrong", t.id);
        }
    }
}
