//! Determinism and fault-tolerance tests: the MapReduce contract says a
//! failed task is simply re-executed, which is only sound because every
//! task in this workspace is deterministic. These tests run the full
//! pipelines repeatedly, with and without injected failures, and demand
//! bit-identical skylines.

use skymr::{mr_gpmrs, mr_gpsrs, SkylineConfig};
use skymr_baselines::{mr_angle, mr_bnl, BaselineConfig};
use skymr_datagen::Distribution;
use skymr_integration_tests::scenario;
use skymr_mapreduce::{FaultPlan, FaultTolerance, TaskFault};

#[test]
fn repeated_runs_are_identical() {
    let data = scenario(Distribution::Anticorrelated, 4, 600, 301);
    let config = SkylineConfig::test();
    let first = mr_gpmrs(&data, &config).unwrap();
    for _ in 0..3 {
        let again = mr_gpmrs(&data, &config).unwrap();
        assert_eq!(again.skyline, first.skyline);
        assert_eq!(again.info.independent_groups, first.info.independent_groups);
    }
}

#[test]
fn gpsrs_identical_under_every_single_map_failure() {
    let data = scenario(Distribution::Independent, 3, 400, 302);
    let clean = mr_gpsrs(&data, &SkylineConfig::test()).unwrap();
    for failed_task in 0..4 {
        let mut config = SkylineConfig::test();
        config.fault_tolerance = FaultTolerance::with_plan(FaultPlan::fail_maps([failed_task]));
        let run = mr_gpsrs(&data, &config).unwrap();
        assert_eq!(
            run.skyline, clean.skyline,
            "map task {failed_task} retry changed the result"
        );
        assert_eq!(run.metrics.jobs[1].map_retries, 1);
    }
}

#[test]
fn gpmrs_identical_under_reduce_failures() {
    let data = scenario(Distribution::Anticorrelated, 3, 500, 303);
    let clean = mr_gpmrs(&data, &SkylineConfig::test()).unwrap();
    for failed in 0..clean.info.buckets {
        let mut config = SkylineConfig::test();
        config.fault_tolerance = FaultTolerance::with_plan(FaultPlan::fail_reduces([failed]));
        let run = mr_gpmrs(&data, &config).unwrap();
        assert_eq!(
            run.skyline, clean.skyline,
            "reduce task {failed} retry changed the result"
        );
        assert_eq!(run.metrics.jobs[1].reduce_retries, 1);
    }
}

#[test]
fn gpmrs_identical_under_combined_failures() {
    let data = scenario(Distribution::Anticorrelated, 4, 500, 304);
    let clean = mr_gpmrs(&data, &SkylineConfig::test()).unwrap();
    let mut config = SkylineConfig::test();
    config.fault_tolerance = FaultTolerance::with_plan(
        FaultPlan::fail_maps([0, 1, 2, 3])
            .with_reduce_fault(0, TaskFault::lost(1))
            .for_job("gpmrs"),
    );
    let run = mr_gpmrs(&data, &config).unwrap();
    assert_eq!(run.skyline, clean.skyline);
    assert_eq!(run.metrics.jobs[1].map_retries, 4);
}

#[test]
fn baselines_identical_under_failures() {
    let data = scenario(Distribution::Independent, 3, 300, 305);
    let mut config = BaselineConfig::test();
    config.fault_tolerance = FaultTolerance::with_plan(FaultPlan::fail_maps([0, 2]));
    assert_eq!(
        mr_bnl(&data, &config).unwrap().skyline_ids(),
        mr_bnl(&data, &BaselineConfig::test())
            .unwrap()
            .skyline_ids()
    );
    assert_eq!(
        mr_angle(&data, &config).unwrap().skyline_ids(),
        mr_angle(&data, &BaselineConfig::test())
            .unwrap()
            .skyline_ids()
    );
}

#[test]
fn split_count_does_not_affect_any_algorithm() {
    let data = scenario(Distribution::Clustered { clusters: 4 }, 3, 450, 306);
    let reference = mr_gpmrs(&data, &SkylineConfig::test().with_mappers(1)).unwrap();
    for mappers in [2usize, 3, 7, 16] {
        let run = mr_gpmrs(&data, &SkylineConfig::test().with_mappers(mappers)).unwrap();
        assert_eq!(
            run.skyline, reference.skyline,
            "{mappers} mappers changed the skyline"
        );
    }
}

#[test]
fn spilling_is_invisible_in_every_algorithm_output() {
    // Forcing the out-of-core storage plane on (a 512-byte budget makes
    // everything spill) must not change a single output tuple for any
    // algorithm, while the metrics prove the spill/merge path really ran.
    // A budget comfortably above the dataset's serialized size must also
    // leave the output untouched.
    let data = scenario(Distribution::Anticorrelated, 3, 400, 308);
    let mem_gpsrs = mr_gpsrs(&data, &SkylineConfig::test()).unwrap();
    let mem_gpmrs = mr_gpmrs(&data, &SkylineConfig::test()).unwrap();
    let mem_bnl = mr_bnl(&data, &BaselineConfig::test()).unwrap();
    let mem_angle = mr_angle(&data, &BaselineConfig::test()).unwrap();

    for budget in [512u64, 8 << 20] {
        let config = SkylineConfig::test().with_memory_budget(Some(budget));
        let bconfig = BaselineConfig::test().with_memory_budget(Some(budget));
        let gpsrs = mr_gpsrs(&data, &config).unwrap();
        let gpmrs = mr_gpmrs(&data, &config).unwrap();
        let bnl = mr_bnl(&data, &bconfig).unwrap();
        let angle = mr_angle(&data, &bconfig).unwrap();
        assert_eq!(gpsrs.skyline, mem_gpsrs.skyline, "budget {budget}");
        assert_eq!(gpmrs.skyline, mem_gpmrs.skyline, "budget {budget}");
        assert_eq!(bnl.skyline, mem_bnl.skyline, "budget {budget}");
        assert_eq!(angle.skyline, mem_angle.skyline, "budget {budget}");

        // Every job that spilled must also have merged, and the tight
        // budget must actually exercise the path in every pipeline.
        for run_jobs in [
            &gpsrs.metrics.jobs,
            &gpmrs.metrics.jobs,
            &bnl.metrics.jobs,
            &angle.metrics.jobs,
        ] {
            for job in run_jobs {
                if job.spill_files > 0 {
                    assert!(
                        job.merge_passes >= 1,
                        "job `{}` spilled without merging",
                        job.name
                    );
                    assert!(job.spilled_bytes > 0, "job `{}`", job.name);
                }
            }
            if budget == 512 {
                assert!(
                    run_jobs.iter().map(|j| j.spill_files).sum::<u64>() > 0,
                    "a 512-byte budget must force spills"
                );
            }
        }
    }
}

#[test]
fn spilled_runs_are_identical_under_failures() {
    // Spilling composed with task retries: a re-executed map rebuilds its
    // spill segments from scratch, and the output must not move.
    let data = scenario(Distribution::Independent, 3, 400, 309);
    let clean = mr_gpsrs(&data, &SkylineConfig::test()).unwrap();
    let mut config = SkylineConfig::test().with_memory_budget(Some(512));
    config.fault_tolerance = FaultTolerance::with_plan(FaultPlan::fail_maps([0, 2]));
    let run = mr_gpsrs(&data, &config).unwrap();
    assert_eq!(run.skyline, clean.skyline);
    assert_eq!(run.metrics.jobs[1].map_retries, 2);
    assert!(run.metrics.jobs[1].spill_files > 0);
}

#[test]
fn comparison_counters_are_deterministic() {
    // The cost-model validation (Figure 11) relies on reproducible counts.
    let data = scenario(Distribution::Independent, 4, 500, 307);
    let config = SkylineConfig::test();
    let a = mr_gpmrs(&data, &config).unwrap();
    let b = mr_gpmrs(&data, &config).unwrap();
    assert_eq!(
        a.counters["gpmrs.map.partition_cmps"],
        b.counters["gpmrs.map.partition_cmps"]
    );
    assert_eq!(
        a.counters["gpmrs.reduce.partition_cmps.max"],
        b.counters["gpmrs.reduce.partition_cmps.max"]
    );
}
