//! Telemetry export determinism: the traced MR-GPMRS pipeline must emit
//! byte-identical Chrome-trace JSON and JSONL exports regardless of host
//! thread count or schedule shaking, and the trace must actually contain
//! the spans and pruning counters the evaluation story depends on.

use skymr::{mr_gpmrs, SkylineConfig};
use skymr_datagen::Distribution;
use skymr_integration_tests::scenario;
use skymr_mapreduce::telemetry::export::{chrome_trace, jsonl};
use skymr_mapreduce::telemetry::json;
use skymr_mapreduce::{Collector, FaultPlan, FaultTolerance, TaskFault};

/// Shape of one traced run, for cross-run comparison.
struct TracedRun {
    chrome: String,
    jsonl: String,
    map_tasks: usize,
    reduce_tasks: usize,
}

/// Runs a seeded MR-GPMRS pipeline with scripted faults (no speculation —
/// the one documented byte-identity exception) under `host_threads`.
fn traced_gpmrs(host_threads: usize) -> TracedRun {
    let data = scenario(Distribution::Anticorrelated, 4, 700, 401);
    let collector = Collector::new();
    let mut config = SkylineConfig::default()
        .with_mappers(4)
        .with_reducers(5)
        .with_fault_tolerance(FaultTolerance::with_plan(
            FaultPlan::fail_maps([1])
                .with_reduce_fault(0, TaskFault::lost(1))
                .for_job("gpmrs"),
        ))
        .with_telemetry(Some(collector.clone()));
    config.cluster.host_threads = host_threads;
    let run = mr_gpmrs(&data, &config).expect("traced run succeeds");
    let doc = collector.finish();
    TracedRun {
        chrome: chrome_trace(&doc),
        jsonl: jsonl(&doc),
        map_tasks: run.metrics.jobs[1].map_tasks,
        reduce_tasks: run.metrics.jobs[1].reduce_tasks,
    }
}

#[test]
fn exports_are_byte_identical_across_host_thread_counts() {
    let single = traced_gpmrs(1);
    let parallel = traced_gpmrs(4);
    assert_eq!(
        single.chrome, parallel.chrome,
        "Chrome trace depends on host thread count"
    );
    assert_eq!(
        single.jsonl, parallel.jsonl,
        "JSONL export depends on host thread count"
    );
    // And re-running the same configuration is also byte-stable.
    let again = traced_gpmrs(4);
    assert_eq!(parallel.chrome, again.chrome);
    assert_eq!(parallel.jsonl, again.jsonl);
}

#[test]
fn trace_contains_spans_for_every_task_and_the_pruning_counters() {
    let run = traced_gpmrs(2);
    assert!(run.map_tasks >= 4 && run.reduce_tasks >= 2);
    let doc = json::parse(&run.chrome).expect("chrome export is valid JSON");
    let names: Vec<&str> = doc
        .get("traceEvents")
        .and_then(json::Value::as_array)
        .expect("traceEvents array")
        .iter()
        .filter_map(|e| e.get("name").and_then(json::Value::as_str))
        .collect();
    // Map, shuffle, reduce, and attempt spans for every task of the
    // skyline job (the bitstring job emits its own; name collisions
    // across jobs don't matter for presence checks).
    for i in 0..run.map_tasks {
        let name = format!("map[{i}]");
        assert!(names.contains(&name.as_str()), "missing {name}");
    }
    for j in 0..run.reduce_tasks {
        let reduce = format!("reduce[{j}]");
        let shuffle = format!("shuffle→reduce[{j}]");
        assert!(names.contains(&reduce.as_str()), "missing {reduce}");
        assert!(names.contains(&shuffle.as_str()), "missing {shuffle}");
    }
    let attempts = names.iter().filter(|n| n.starts_with("attempt ")).count();
    assert!(
        attempts >= run.map_tasks + run.reduce_tasks,
        "every task should have at least a winning attempt span \
         ({attempts} attempt spans for {} tasks)",
        run.map_tasks + run.reduce_tasks
    );
    // The scripted faults show up as instant markers.
    assert!(names.contains(&"fault:panic") || names.contains(&"fault:lost_output"));

    // Per-partition pruning counters ride along in the registries: the
    // bitstring job exposes DR partition pruning, the skyline job exposes
    // the mappers' DR/ADR tuple pruning and per-bucket comparison counts.
    let registries = doc
        .get("registries")
        .and_then(json::Value::as_array)
        .expect("registries array");
    let counters_of = |job: &str| -> Vec<String> {
        registries
            .iter()
            .find(|r| r.get("job").and_then(json::Value::as_str) == Some(job))
            .and_then(|r| r.get("counters"))
            .and_then(json::Value::as_object)
            .map(|members| members.iter().map(|(k, _)| k.clone()).collect())
            .unwrap_or_default()
    };
    // SkylineConfig::default() auto-selects the PPD, so the pre-job is the
    // multi-candidate selection job.
    let bitstring = counters_of("bitstring-ppd");
    for needle in [
        "user.reduce.dr_pruned_partitions",
        "user.map.local_partitions_set",
    ] {
        assert!(
            bitstring.contains(&needle.to_owned()),
            "bitstring-ppd registry lacks {needle}: {bitstring:?}"
        );
    }
    let gpmrs = counters_of("gpmrs");
    for needle in [
        "user.map.dr_pruned_tuples",
        "user.map.adr_removed_tuples",
        "user.reduce.bucket.0.partition_cmps",
    ] {
        assert!(
            gpmrs.contains(&needle.to_owned()),
            "gpmrs registry lacks {needle}: {gpmrs:?}"
        );
    }
}

#[test]
fn jsonl_round_trips_through_the_parser() {
    let run = traced_gpmrs(2);
    let mut events = 0usize;
    let mut registries = 0usize;
    for line in run.jsonl.lines() {
        let v = json::parse(line).expect("every JSONL line parses");
        match v.get("type").and_then(json::Value::as_str) {
            Some("event") => events += 1,
            Some("registry") => registries += 1,
            other => panic!("unexpected record type {other:?}"),
        }
    }
    assert!(events > 0);
    assert_eq!(registries, 2, "one registry per pipeline job");
}
