//! Schedule-shaker integration tests: MR-GPSRS and MR-GPMRS must produce
//! byte-identical sorted skylines no matter how the engine schedules the
//! work — host thread counts, slot counts, mapper/reducer fan-out, and
//! input arrival order are all shaken under seeded configurations.

use skymr::{mr_gpmrs, mr_gpsrs, SkylineConfig, SkylineRun};
use skymr_common::{Dataset, Result};
use skymr_datagen::Distribution;
use skymr_integration_tests::scenario;
use skymr_mapreduce::analysis::{assert_schedule_independent, ShakeCase};

/// Serializes the run's logical output — the id-sorted skyline tuples —
/// to a canonical byte string. Metrics and timings are deliberately
/// excluded: they legitimately vary with the schedule.
fn skyline_bytes(run: &SkylineRun) -> Vec<u8> {
    let mut bytes = Vec::new();
    for t in &run.skyline {
        bytes.extend_from_slice(&t.id.to_le_bytes());
        for v in &t.values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
    }
    bytes
}

/// Runs `algo` on a case-permuted copy of `data` under the case's cluster
/// shape, with mapper/reducer fan-out also derived from the case.
fn run_shaken<F>(data: &Dataset, case: &ShakeCase, algo: F) -> Vec<u8>
where
    F: Fn(&Dataset, &SkylineConfig) -> Result<SkylineRun>,
{
    let mut tuples = data.tuples().to_vec();
    case.permute(&mut tuples);
    let shuffled = Dataset::new(data.dim(), tuples).expect("permutation preserves validity");

    let mut config = SkylineConfig::test()
        .with_mappers(1 + case.map_slots)
        .with_reducers(case.reduce_slots);
    config.cluster = case.cluster(&config.cluster);

    let run = algo(&shuffled, &config).expect("shaken run must succeed");
    skyline_bytes(&run)
}

#[test]
fn gpsrs_output_is_schedule_independent() {
    let data = scenario(Distribution::Anticorrelated, 3, 500, 601);
    let report =
        assert_schedule_independent(8, 0xB17_57A7E, |case| run_shaken(&data, case, mr_gpsrs));
    assert_eq!(report.cases.len(), 8);
    assert!(report.output_len > 0, "anticorrelated data has a skyline");
}

#[test]
fn gpmrs_output_is_schedule_independent() {
    let data = scenario(Distribution::Anticorrelated, 3, 500, 601);
    let report =
        assert_schedule_independent(8, 0x6B_D155, |case| run_shaken(&data, case, mr_gpmrs));
    assert_eq!(report.cases.len(), 8);
    assert!(report.output_len > 0);
}

#[test]
fn both_algorithms_agree_under_every_shaken_schedule() {
    // Stronger than per-algorithm stability: GPSRS and GPMRS must agree
    // with each other in every configuration, so one shake covers both
    // determinism and cross-algorithm equivalence.
    let data = scenario(Distribution::Clustered { clusters: 3 }, 4, 400, 602);
    assert_schedule_independent(8, 0xCAFE, |case| {
        let a = run_shaken(&data, case, mr_gpsrs);
        let b = run_shaken(&data, case, mr_gpmrs);
        assert_eq!(a, b, "GPSRS and GPMRS diverged in case {}", case.index);
        a
    });
}

mod raw_engine {
    //! Regression lock for the PR-2 nondeterminism audit of
    //! `crates/mapreduce/src/failure.rs` and `partitioner.rs`: the
    //! failure plan stores task ids in `BTreeSet`s and the partitioners
    //! hash single keys (no hash-container iteration ever reaches
    //! emitted output). This test pins the consequence — a raw engine
    //! job routed through `HashPartitioner` *with failure injection
    //! active* stays byte-identical across shaken schedules — so any
    //! future `HashMap`-iteration regression in either file trips here
    //! as well as in the `udf-determinism` static pass.

    use skymr_mapreduce::{
        run_job, ClusterConfig, Emitter, FaultPlan, HashPartitioner, JobConfig, MapFactory,
        MapTask, OutputCollector, ReduceFactory, ReduceTask, ShakeCase, TaskContext, TaskFault,
    };

    struct WcMap;
    struct WcMapTask;
    impl MapTask for WcMapTask {
        type In = String;
        type K = String;
        type V = u64;
        fn map(&mut self, input: &String, out: &mut Emitter<String, u64>) {
            for word in input.split_whitespace() {
                out.emit(word.to_owned(), 1);
            }
        }
    }
    impl MapFactory for WcMap {
        type Task = WcMapTask;
        fn create(&self, _ctx: &TaskContext) -> WcMapTask {
            WcMapTask
        }
    }

    struct WcReduce;
    struct WcReduceTask;
    impl ReduceTask for WcReduceTask {
        type K = String;
        type V = u64;
        type Out = (String, u64);
        fn reduce(
            &mut self,
            key: String,
            values: Vec<u64>,
            out: &mut OutputCollector<(String, u64)>,
        ) {
            out.collect((key, values.iter().sum()));
        }
    }
    impl ReduceFactory for WcReduce {
        type Task = WcReduceTask;
        fn create(&self, _ctx: &TaskContext) -> WcReduceTask {
            WcReduceTask
        }
    }

    fn run_case(case: &ShakeCase) -> Vec<u8> {
        // Three map tasks and two reduce tasks; every one of them fails
        // once, so each retry path replays under each shaken schedule.
        let mut splits = vec![
            vec!["a b a".to_owned(), "c d".to_owned()],
            vec!["b b e".to_owned()],
            vec!["a c e f".to_owned()],
        ];
        case.permute(&mut splits);
        let cluster = case.cluster(&ClusterConfig::test());
        let config = JobConfig::new("wc-shake", 2).with_faults(
            FaultPlan::fail_maps([0, 1, 2])
                .with_reduce_fault(0, TaskFault::lost(1))
                .with_reduce_fault(1, TaskFault::lost(1)),
        );
        let outcome = run_job(
            &cluster,
            &config,
            &splits,
            &WcMap,
            &WcReduce,
            &HashPartitioner,
        )
        .expect("retries recover every injected failure");
        let mut pairs = outcome.into_flat_output();
        pairs.sort();
        let mut bytes = Vec::new();
        for (word, count) in pairs {
            bytes.extend_from_slice(word.as_bytes());
            bytes.push(b'=');
            bytes.extend_from_slice(&count.to_le_bytes());
        }
        bytes
    }

    #[test]
    fn failure_replay_with_hash_partitioning_is_schedule_independent() {
        let report = skymr_mapreduce::assert_schedule_independent(8, 0xF417_0B5E, run_case);
        assert_eq!(report.cases.len(), 8);
        assert!(report.output_len > 0);
    }
}

#[test]
fn shaker_handles_degenerate_inputs() {
    let empty = Dataset::new(2, vec![]).expect("empty dataset is valid");
    let report = assert_schedule_independent(8, 7, |case| run_shaken(&empty, case, mr_gpsrs));
    assert_eq!(report.output_len, 0);
}
