//! Integration tests for the beyond-the-paper extensions: k-skyband,
//! top-k dominating, SKY-MR, MR-Bitmap, the normalizer, and subspace
//! projection — exercised together across crates.

use skymr::skyband::skyband_reference;
use skymr::topk::top_k_dominating_reference;
use skymr::{mr_gpmrs, mr_skyband, mr_skyband_multi, mr_top_k_dominating, SkylineConfig};
use skymr_baselines::{bnl_skyline, discretize, mr_bitmap, sky_mr, BaselineConfig, SkyMrConfig};
use skymr_common::Dataset;
use skymr_datagen::{generate, Direction, Distribution, Normalizer};
use skymr_integration_tests::scenario;

#[test]
fn skyline_is_contained_in_every_band() {
    let data = scenario(Distribution::Anticorrelated, 3, 600, 501);
    let config = SkylineConfig::test();
    let skyline: std::collections::BTreeSet<u64> = mr_gpmrs(&data, &config)
        .unwrap()
        .skyline_ids()
        .into_iter()
        .collect();
    for k in [1u32, 2, 5] {
        let band: std::collections::BTreeSet<u64> = mr_skyband(&data, k, &config)
            .unwrap()
            .skyline_ids()
            .into_iter()
            .collect();
        assert!(
            skyline.is_subset(&band),
            "skyline must be inside the {k}-skyband"
        );
    }
}

#[test]
fn band_topologies_agree_under_shape_changes() {
    let data = scenario(Distribution::Clustered { clusters: 4 }, 4, 500, 502);
    for k in [1u32, 3] {
        let oracle = skyband_reference(data.tuples(), k);
        for reducers in [1usize, 3, 6] {
            let config = SkylineConfig::test().with_reducers(reducers);
            assert_eq!(mr_skyband(&data, k, &config).unwrap().skyline, oracle);
            assert_eq!(mr_skyband_multi(&data, k, &config).unwrap().skyline, oracle);
        }
    }
}

#[test]
fn top_scorer_is_always_a_skyline_tuple() {
    // If s dominates t, s also dominates everything t does plus t itself,
    // so score(s) > score(t): the best scorer is never dominated.
    for dist in [Distribution::Independent, Distribution::Anticorrelated] {
        let data = scenario(dist, 3, 400, 503);
        let run = mr_top_k_dominating(&data, 1, &SkylineConfig::test()).unwrap();
        let skyline = bnl_skyline(data.tuples());
        let top = run.ranked.first().expect("non-empty data has a top scorer");
        assert!(
            skyline.iter().any(|t| t.id == top.0.id),
            "top dominating tuple {} is not in the skyline ({dist:?})",
            top.0.id
        );
    }
}

#[test]
fn topk_matches_reference_with_auto_ppd() {
    let data = scenario(Distribution::Anticorrelated, 4, 400, 504);
    let mut config = SkylineConfig::test();
    config.ppd = skymr::PpdPolicy::auto();
    let run = mr_top_k_dominating(&data, 7, &config).unwrap();
    assert_eq!(run.ranked, top_k_dominating_reference(data.tuples(), 7));
}

#[test]
fn normalizer_pipeline_end_to_end() {
    // Raw rows with mixed directions -> canonical dataset -> skyline ->
    // map back and check Pareto-optimality in raw terms.
    let rows: Vec<Vec<f64>> = (0..300)
        .map(|i| {
            let f = i as f64;
            vec![100.0 + (f * 37.0) % 400.0, 1.0 + (f * 13.0) % 4.0]
        })
        .collect();
    let norm = Normalizer::fit(
        &[
            ("price", Direction::Minimize),
            ("rating", Direction::Maximize),
        ],
        &rows,
    )
    .unwrap();
    let data = norm.to_dataset(&rows).unwrap();
    let run = mr_gpmrs(&data, &SkylineConfig::test()).unwrap();
    assert!(!run.skyline.is_empty());
    for t in &run.skyline {
        let (price, rating) = {
            let raw = norm.to_raw_row(t);
            (raw[0], raw[1])
        };
        let beaten = rows.iter().enumerate().any(|(i, row)| {
            i as u64 != t.id
                && row[0] <= price
                && row[1] >= rating
                && (row[0] < price || row[1] > rating)
        });
        assert!(
            !beaten,
            "skyline row {} is Pareto-dominated in raw units",
            t.id
        );
    }
}

#[test]
fn subspace_skyline_contains_fullspace_projected_winners() {
    // A tuple undominated in a subspace projection may still be dominated
    // in the full space; the converse containment does not hold either —
    // but running any algorithm on a projection must equal the oracle on
    // that projection.
    let data = scenario(Distribution::Anticorrelated, 5, 500, 505);
    let sub = data.project(&[0, 3]).unwrap();
    let run = mr_gpmrs(&sub, &SkylineConfig::test()).unwrap();
    assert_eq!(run.skyline, bnl_skyline(sub.tuples()));
}

#[test]
fn sky_mr_and_gpmrs_agree_everywhere() {
    for dist in [Distribution::Independent, Distribution::Anticorrelated] {
        for dim in [2usize, 4, 6] {
            let data = scenario(dist, dim, 500, 506);
            let a = mr_gpmrs(&data, &SkylineConfig::test()).unwrap();
            let b = sky_mr(&data, &SkyMrConfig::test()).unwrap();
            assert_eq!(a.skyline_ids(), b.skyline_ids(), "{dist:?} d={dim}");
        }
    }
}

#[test]
fn bitmap_on_discretized_equals_grid_algorithms_on_discretized() {
    let raw = scenario(Distribution::Independent, 3, 400, 507);
    let data = discretize(&raw, 6);
    let bitmap = mr_bitmap(&data, &BaselineConfig::test()).unwrap();
    let grid = mr_gpmrs(&data, &SkylineConfig::test()).unwrap();
    assert_eq!(bitmap.skyline_ids(), grid.skyline_ids());
}

#[test]
fn extensions_tolerate_degenerate_inputs() {
    let empty = Dataset::new(3, vec![]).unwrap();
    let config = SkylineConfig::test();
    assert!(mr_skyband(&empty, 2, &config).unwrap().skyline.is_empty());
    assert!(mr_top_k_dominating(&empty, 3, &config)
        .unwrap()
        .ranked
        .is_empty());
    let one = generate(Distribution::Independent, 2, 1, 508);
    assert_eq!(mr_skyband_multi(&one, 5, &config).unwrap().skyline.len(), 1);
    let run = mr_top_k_dominating(&one, 5, &config).unwrap();
    assert_eq!(run.ranked.len(), 1);
    assert_eq!(run.ranked[0].1, 0, "a lone tuple dominates nothing");
}
