//! Chaos harness for the fault-tolerance layer: every pipeline must
//! produce byte-identical output under seeded random fault plans —
//! repeated per-attempt failures, mid-task panics, lost shuffle
//! partitions, failed broadcasts, stragglers — and a task that can never
//! succeed must surface as a structured [`skymr_common::Error::JobFailed`],
//! not a panic. Covers MR-GPSRS, MR-GPMRS, MR-BNL, and MR-Angle.

use proptest::prelude::*;

use skymr::{mr_gpmrs, mr_gpsrs, SkylineConfig, SkylineRun};
use skymr_baselines::{mr_angle, mr_bnl, BaselineConfig, BaselineRun};
use skymr_common::{Dataset, Error, Tuple};
use skymr_datagen::Distribution;
use skymr_integration_tests::scenario;
use skymr_mapreduce::analysis::{assert_schedule_independent, ShakeCase};
use skymr_mapreduce::telemetry::export::chrome_trace;
use skymr_mapreduce::{
    run_job, ClusterConfig, Collector, Emitter, FaultPlan, FaultProfile, FaultTolerance,
    HashPartitioner, JobConfig, JobMetrics, MapFactory, MapTask, OutputCollector, Placement,
    ReduceFactory, ReduceTask, RetryPolicy, SpeculationPolicy, TaskContext, TaskFault, TaskKind,
};

/// Fixed seeds locked as a regression suite. Each one exercised a distinct
/// mix of fault kinds when the suite was written; keeping them pinned means
/// a future engine change replays the exact same fault schedules.
const REGRESSION_SEEDS: [u64; 4] = [0xC0FFEE, 0x5EED_0001, 42, 0xDEAD_BEEF];

fn chaos_data() -> Dataset {
    scenario(Distribution::Anticorrelated, 3, 400, 701)
}

/// Serializes the id-sorted skyline to a canonical byte string so the
/// "byte-identical" claim is literal, not just `Vec<u64>` id equality.
fn tuple_bytes(tuples: &[Tuple]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for t in tuples {
        bytes.extend_from_slice(&t.id.to_le_bytes());
        for v in &t.values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
    }
    bytes
}

/// Every per-job retry/attempt invariant the chaos runs must respect:
/// retries stay within the per-task budget, and the attempt ledger never
/// undercounts the tasks that ran.
fn assert_retry_bounds(jobs: &[JobMetrics], budget: u64) {
    for job in jobs {
        let tasks = (job.map_tasks + job.reduce_tasks) as u64;
        assert!(
            job.map_retries <= job.map_tasks as u64 * budget,
            "job `{}`: {} map retries exceed the budget for {} tasks",
            job.name,
            job.map_retries,
            job.map_tasks
        );
        assert!(
            job.reduce_retries <= job.reduce_tasks as u64 * budget,
            "job `{}`: {} reduce retries exceed the budget for {} tasks",
            job.name,
            job.reduce_retries,
            job.reduce_tasks
        );
        assert!(
            job.attempts >= tasks,
            "job `{}`: {} attempts cannot cover {} tasks",
            job.name,
            job.attempts,
            tasks
        );
        if job.map_retries + job.reduce_retries > 0 {
            assert!(
                job.attempts > tasks,
                "job `{}`: retries happened but attempts == tasks",
                job.name
            );
        }
    }
}

fn run_core<F>(data: &Dataset, ft: FaultTolerance, algo: F) -> SkylineRun
where
    F: Fn(&Dataset, &SkylineConfig) -> skymr_common::Result<SkylineRun>,
{
    let config = SkylineConfig::test().with_fault_tolerance(ft);
    algo(data, &config).expect("chaos faults are always recoverable within the retry budget")
}

fn run_baseline<F>(data: &Dataset, ft: FaultTolerance, algo: F) -> BaselineRun
where
    F: Fn(&Dataset, &BaselineConfig) -> skymr_common::Result<BaselineRun>,
{
    let config = BaselineConfig::test().with_fault_tolerance(ft);
    algo(data, &config).expect("chaos faults are always recoverable within the retry budget")
}

/// Runs all four pipelines under `ft` and asserts each one reproduces its
/// fault-free output byte for byte, with retry bounds respected.
fn assert_chaos_preserves_output(data: &Dataset, ft: &FaultTolerance, label: &str) {
    let budget = RetryPolicy::new().max_attempts as u64;
    let clean_gpsrs = run_core(data, FaultTolerance::none(), mr_gpsrs);
    let clean_gpmrs = run_core(data, FaultTolerance::none(), mr_gpmrs);
    let clean_bnl = run_baseline(data, FaultTolerance::none(), mr_bnl);
    let clean_angle = run_baseline(data, FaultTolerance::none(), mr_angle);

    let gpsrs = run_core(data, ft.clone(), mr_gpsrs);
    let gpmrs = run_core(data, ft.clone(), mr_gpmrs);
    let bnl = run_baseline(data, ft.clone(), mr_bnl);
    let angle = run_baseline(data, ft.clone(), mr_angle);

    assert_eq!(
        tuple_bytes(&gpsrs.skyline),
        tuple_bytes(&clean_gpsrs.skyline),
        "MR-GPSRS diverged under {label}"
    );
    assert_eq!(
        tuple_bytes(&gpmrs.skyline),
        tuple_bytes(&clean_gpmrs.skyline),
        "MR-GPMRS diverged under {label}"
    );
    assert_eq!(
        tuple_bytes(&bnl.skyline),
        tuple_bytes(&clean_bnl.skyline),
        "MR-BNL diverged under {label}"
    );
    assert_eq!(
        tuple_bytes(&angle.skyline),
        tuple_bytes(&clean_angle.skyline),
        "MR-Angle diverged under {label}"
    );

    assert_retry_bounds(&gpsrs.metrics.jobs, budget);
    assert_retry_bounds(&gpmrs.metrics.jobs, budget);
    assert_retry_bounds(&bnl.metrics.jobs, budget);
    assert_retry_bounds(&angle.metrics.jobs, budget);
}

#[test]
fn fixed_seed_chaos_preserves_every_algorithm_output() {
    let data = chaos_data();
    for seed in REGRESSION_SEEDS {
        let ft = FaultTolerance::with_plan(FaultPlan::seeded(seed));
        assert_chaos_preserves_output(&data, &ft, &format!("seed {seed:#x}"));
    }
}

#[test]
fn chaos_with_speculation_preserves_every_algorithm_output() {
    // Speculative backups race the original attempt; the deterministic
    // winner rule must keep the output stable, and stragglers in the
    // profile give speculation real work to do.
    let data = chaos_data();
    let profile = FaultProfile::default();
    for seed in [0xBACC_0FF5u64, 7] {
        let ft = FaultTolerance::with_plan(FaultPlan::chaos(seed, profile.clone()))
            .with_speculation(SpeculationPolicy::new());
        assert_chaos_preserves_output(&data, &ft, &format!("speculative chaos seed {seed:#x}"));
    }
}

#[test]
fn chaos_metrics_record_recovery_work() {
    // At least one of the pinned seeds must actually injure the pipeline;
    // a chaos suite whose plans never fire tests nothing.
    let data = chaos_data();
    let mut total_retries = 0u64;
    for seed in REGRESSION_SEEDS {
        let ft = FaultTolerance::with_plan(FaultPlan::seeded(seed));
        let run = run_core(&data, ft, mr_gpmrs);
        for job in &run.metrics.jobs {
            total_retries += job.map_retries + job.reduce_retries;
            if job.map_retries + job.reduce_retries > 0 {
                assert!(
                    job.wasted_task_time > std::time::Duration::ZERO,
                    "job `{}` retried but recorded no wasted task time",
                    job.name
                );
            }
        }
    }
    assert!(
        total_retries > 0,
        "no regression seed injected a single recoverable fault"
    );
}

#[test]
fn chaos_output_is_schedule_independent() {
    // A fixed fault plan replayed under shaken schedules (thread counts,
    // slot counts, input permutations) must not leak scheduling order
    // into the output.
    let data = scenario(Distribution::Clustered { clusters: 3 }, 3, 300, 702);
    let run_case = |case: &ShakeCase| -> Vec<u8> {
        let mut tuples = data.tuples().to_vec();
        case.permute(&mut tuples);
        let shuffled = Dataset::new(data.dim(), tuples).expect("permutation preserves validity");
        let mut config = SkylineConfig::test()
            .with_mappers(1 + case.map_slots)
            .with_reducers(case.reduce_slots)
            .with_fault_tolerance(FaultTolerance::with_plan(FaultPlan::seeded(0xC0FFEE)));
        config.cluster = case.cluster(&config.cluster);
        let run = mr_gpmrs(&shuffled, &config).expect("chaos faults are recoverable");
        tuple_bytes(&run.skyline)
    };
    let report = assert_schedule_independent(6, 0xC4A0_5EED, run_case);
    assert_eq!(report.cases.len(), 6);
    assert!(report.output_len > 0);
}

// ---------------------------------------------------------------------------
// Node-level failure domains: node loss, re-execution, checkpoint/resume.
// ---------------------------------------------------------------------------

#[test]
fn node_loss_reexecutes_maps_and_preserves_the_skyline() {
    // Kill the node hosting map task 0's output after the map phase
    // finishes: the completed output is invalidated, the map re-executes,
    // and the skyline still comes out byte-identical to the fault-free run
    // — with the loss and the re-execution visible in the exported trace.
    let data = chaos_data();
    let clean = run_core(&data, FaultTolerance::none(), mr_gpsrs);

    let seed = 0xD00D_u64;
    let cluster = ClusterConfig::test_placed(seed);
    let alive: Vec<usize> = (0..cluster.nodes).collect();
    let victim = Placement::new(seed).task_home("gpsrs", TaskKind::Map, 0, &alive);
    let plan = FaultPlan::none()
        .with_node_loss(victim, u64::MAX / 2)
        .for_job("gpsrs");

    let collector = Collector::new();
    let mut config = SkylineConfig::test()
        .with_fault_tolerance(FaultTolerance::with_plan(plan))
        .with_telemetry(Some(collector.clone()));
    config.cluster = cluster;
    let run = mr_gpsrs(&data, &config).expect("a node loss is recoverable");

    assert_eq!(
        tuple_bytes(&run.skyline),
        tuple_bytes(&clean.skyline),
        "MR-GPSRS diverged under a node loss"
    );
    let job = &run.metrics.jobs[1];
    assert_eq!(job.nodes_lost, 1);
    assert!(job.maps_reexecuted > 0, "the lost output must re-execute");
    assert!(
        job.reexecution_time >= config.cluster.heartbeat_timeout,
        "re-execution time must include the loss-detection timeout"
    );
    assert_eq!(run.metrics.jobs[0].nodes_lost, 0, "plan is job-scoped");

    let trace = chrome_trace(&collector.finish());
    assert!(
        trace.contains("node-loss"),
        "the trace must carry the node-loss instant"
    );
    assert!(
        trace.contains("(re-exec)"),
        "the trace must carry the re-execution spans"
    );
}

#[test]
fn crash_between_jobs_then_resume_matches_the_fresh_run() {
    // A driver killed after the bitstring job resumes from its checkpoint
    // file, replays the bitstring stage without re-running it, survives a
    // node loss in the skyline job, and produces the same bytes a fresh
    // fault-free run does.
    let data = chaos_data();
    let fresh = run_core(&data, FaultTolerance::none(), mr_gpsrs);

    let path = std::env::temp_dir().join(format!("skymr-chaos-resume-{}.json", std::process::id()));
    let err = mr_gpsrs(
        &data,
        &SkylineConfig::test()
            .with_checkpoint_file(&path)
            .with_kill_after(1),
    )
    .expect_err("the kill-point fires between the two jobs");
    assert!(matches!(err, Error::PipelineKilled { after_jobs: 1 }));

    let seed = 0xBEEF_u64;
    let alive: Vec<usize> = (0..ClusterConfig::test().nodes).collect();
    let victim = Placement::new(seed).task_home("gpsrs", TaskKind::Map, 1, &alive);
    let mut config = SkylineConfig::test()
        .with_checkpoint_file(&path)
        .with_resume(true)
        .with_fault_tolerance(FaultTolerance::with_plan(
            FaultPlan::none()
                .with_node_loss(victim, u64::MAX / 2)
                .for_job("gpsrs"),
        ));
    config.cluster = ClusterConfig::test_placed(seed);
    let resumed = mr_gpsrs(&data, &config).expect("resume + node loss is recoverable");
    std::fs::remove_file(&path).ok();

    assert_eq!(
        tuple_bytes(&resumed.skyline),
        tuple_bytes(&fresh.skyline),
        "crash-and-resume diverged from the fresh run"
    );
    assert_eq!(resumed.metrics.jobs.len(), 2);
    assert_eq!(
        resumed.metrics.jobs[0].map_tasks, 0,
        "the bitstring stage must replay from the checkpoint, not re-run"
    );
    assert_eq!(resumed.metrics.jobs[1].nodes_lost, 1);
    assert!(resumed.metrics.jobs[1].maps_reexecuted > 0);
}

#[test]
fn seeded_node_chaos_preserves_core_algorithm_output() {
    // Seeded node-hostile plans (losses + partitions + occasional task
    // faults) across a seed sweep: both grid algorithms must reproduce
    // their fault-free bytes, and at least one seed must actually kill a
    // node so the sweep tests what it claims to.
    let data = chaos_data();
    let clean_gpsrs = run_core(&data, FaultTolerance::none(), mr_gpsrs);
    let clean_gpmrs = run_core(&data, FaultTolerance::none(), mr_gpmrs);
    let mut nodes_lost = 0u64;
    for seed in 0..8u64 {
        let mut config = SkylineConfig::test()
            .with_fault_tolerance(FaultTolerance::with_plan(FaultPlan::chaos_nodes(seed)));
        config.cluster = ClusterConfig::test_placed(seed);
        let gpsrs = mr_gpsrs(&data, &config).expect("node chaos is recoverable");
        let gpmrs = mr_gpmrs(&data, &config).expect("node chaos is recoverable");
        assert_eq!(
            tuple_bytes(&gpsrs.skyline),
            tuple_bytes(&clean_gpsrs.skyline),
            "MR-GPSRS diverged under node chaos seed {seed}"
        );
        assert_eq!(
            tuple_bytes(&gpmrs.skyline),
            tuple_bytes(&clean_gpmrs.skyline),
            "MR-GPMRS diverged under node chaos seed {seed}"
        );
        nodes_lost += gpsrs
            .metrics
            .jobs
            .iter()
            .chain(&gpmrs.metrics.jobs)
            .map(|j| j.nodes_lost)
            .sum::<u64>();
    }
    assert!(nodes_lost > 0, "no chaos seed lost a single node");
}

// ---------------------------------------------------------------------------
// Data-plane failure domains: shuffle corruption, hangs, poison records.
// ---------------------------------------------------------------------------

#[test]
fn seeded_data_chaos_preserves_every_algorithm_output() {
    // Seeded data-plane plans (shuffle-frame corruption + hung attempts)
    // across all four pipelines: the CRC re-fetch/re-execute ladder and the
    // progress timeout must keep every skyline byte-identical.
    let data = chaos_data();
    for seed in [0u64, 1, 2, 0xDA7A] {
        let ft = FaultTolerance::with_plan(FaultPlan::chaos_data(seed));
        assert_chaos_preserves_output(&data, &ft, &format!("data chaos seed {seed:#x}"));
    }
}

#[test]
fn data_chaos_metrics_record_corruption_and_hang_recovery() {
    // The sweep must actually injure the data plane: corrupt fetches and
    // killed attempts have to show up in the ledger, and none of it may
    // degrade the output.
    let data = chaos_data();
    let mut corrupt_fetches = 0u64;
    let mut retries = 0u64;
    for seed in 0..8u64 {
        let ft = FaultTolerance::with_plan(FaultPlan::chaos_data(seed));
        let run = run_core(&data, ft, mr_gpmrs);
        for job in &run.metrics.jobs {
            corrupt_fetches += job.corrupt_fetches;
            retries += job.map_retries + job.reduce_retries;
            assert!(!job.degraded, "data chaos must never degrade the output");
            assert_eq!(job.records_skipped, 0, "nothing was poisoned");
        }
    }
    assert!(
        corrupt_fetches > 0,
        "no data-chaos seed corrupted a single shuffle fetch"
    );
    assert!(
        retries > 0,
        "no data-chaos seed forced a retry (hangs and at-rest corruption both should)"
    );
}

#[test]
fn data_plane_faults_are_visible_in_trace_and_metrics() {
    // One scripted plan exercising the whole recovery ladder: a transient
    // corrupt fetch (re-fetched), an at-rest one (producer re-executed), a
    // hung attempt (killed by the progress timeout), and a poisoned record
    // (narrowed to and skipped). Every event must surface as its pinned
    // trace instant and in JobMetrics.
    let data = chaos_data();
    let collector = Collector::new();
    let plan = FaultPlan::none()
        .with_corrupt_shuffle(0, 0, 1)
        .with_corrupt_shuffle(1, 0, 2)
        .with_map_fault(2, TaskFault::hangs(1))
        .with_poison_record(3, 0)
        .for_job("gpsrs");
    let config = SkylineConfig::test()
        .with_fault_tolerance(FaultTolerance::with_plan(plan))
        .with_skip_bad_records(true)
        .with_telemetry(Some(collector.clone()));
    let run = mr_gpsrs(&data, &config).expect("the whole ladder is recoverable");

    let job = run.metrics.job("gpsrs").expect("skyline job ran");
    assert_eq!(job.corrupt_fetches, 3, "1 transient + 2 at-rest fetches");
    assert_eq!(job.records_skipped, 1);
    assert!(job.degraded, "a skipped record degrades the job");
    assert!(
        job.map_retries >= 2,
        "the hang and the re-execution both retry"
    );
    let bitstring = run.metrics.job("bitstring").expect("pre-job ran");
    assert!(!bitstring.degraded, "the plan is scoped to the skyline job");

    let trace = chrome_trace(&collector.finish());
    for instant in ["fault:corrupt", "hang-kill", "skip-record"] {
        assert!(
            trace.contains(instant),
            "the trace must carry the {instant} instant"
        );
    }
}

#[test]
fn poison_with_skip_matches_the_fault_free_run_minus_the_poisoned_record() {
    // Hadoop's SkipBadRecords semantics, end to end: the degraded output is
    // exactly the fault-free output of the dataset with the poisoned record
    // removed — for both grid algorithms.
    let data = chaos_data();
    let mappers = SkylineConfig::test().mappers;
    let poisoned_id = data.split(mappers)[1][5].id;
    let reduced = Dataset::new(
        data.dim(),
        data.tuples()
            .iter()
            .filter(|t| t.id != poisoned_id)
            .cloned()
            .collect(),
    )
    .expect("removing one tuple keeps the dataset valid");

    let ft = FaultTolerance::with_plan(FaultPlan::none().with_poison_record(1, 5));
    for algo in [mr_gpsrs, mr_gpmrs] {
        let expected = run_core(&reduced, FaultTolerance::none(), algo);
        let config = SkylineConfig::test()
            .with_fault_tolerance(ft.clone())
            .with_skip_bad_records(true);
        let run = algo(&data, &config).expect("skip-bad-records completes the job");
        assert_eq!(
            tuple_bytes(&run.skyline),
            tuple_bytes(&expected.skyline),
            "degraded output must equal the fault-free run minus the poisoned record"
        );
        for job in &run.metrics.jobs {
            assert!(job.degraded, "job `{}` must be marked degraded", job.name);
            assert_eq!(
                job.records_skipped, 1,
                "job `{}` skips exactly the poisoned record",
                job.name
            );
        }
    }
}

#[test]
fn poison_without_skip_policy_aborts_with_a_structured_error() {
    let data = chaos_data();
    let ft = FaultTolerance::with_plan(FaultPlan::none().with_poison_record(0, 0));
    let config = SkylineConfig::test().with_fault_tolerance(ft);
    let err = mr_gpsrs(&data, &config).expect_err("a poisoned record with no skip policy is fatal");
    match err {
        Error::JobFailed { task, message, .. } => {
            assert_eq!(task, "map");
            assert!(
                message.contains("poisoned at record 0"),
                "the cause must name the record: {message}"
            );
        }
        other => panic!("expected Error::JobFailed, got {other:?}"),
    }
}

#[test]
fn skip_bad_records_is_schedule_independent() {
    // The poisoned (map, record) coordinate must name the same tuple in
    // every case, so the input and mapper count stay fixed while slot and
    // thread counts shake — the skipped set, and therefore the output,
    // cannot depend on scheduling.
    let data = scenario(Distribution::Clustered { clusters: 3 }, 3, 300, 705);
    let run_case = |case: &ShakeCase| -> Vec<u8> {
        let mut config = SkylineConfig::test()
            .with_reducers(case.reduce_slots)
            .with_fault_tolerance(FaultTolerance::with_plan(
                FaultPlan::none().with_poison_record(0, 3),
            ))
            .with_skip_bad_records(true);
        config.cluster = case.cluster(&config.cluster);
        let run = mr_gpmrs(&data, &config).expect("skip-bad-records completes the job");
        assert!(run
            .metrics
            .jobs
            .iter()
            .all(|j| j.records_skipped == 1 && j.degraded));
        tuple_bytes(&run.skyline)
    };
    let report = assert_schedule_independent(8, 0xDA7A_5EED, run_case);
    assert_eq!(report.cases.len(), 8);
    assert!(report.output_len > 0);
}

#[test]
fn data_chaos_output_is_schedule_independent() {
    // A fixed data-plane fault plan replayed under shaken schedules: seeded
    // corruption and hangs must not leak scheduling order into the output.
    let data = scenario(Distribution::Clustered { clusters: 3 }, 3, 300, 706);
    let run_case = |case: &ShakeCase| -> Vec<u8> {
        let mut tuples = data.tuples().to_vec();
        case.permute(&mut tuples);
        let shuffled = Dataset::new(data.dim(), tuples).expect("permutation preserves validity");
        let mut config = SkylineConfig::test()
            .with_mappers(1 + case.map_slots)
            .with_reducers(case.reduce_slots)
            .with_fault_tolerance(FaultTolerance::with_plan(FaultPlan::chaos_data(0xDA7A)));
        config.cluster = case.cluster(&config.cluster);
        let run = mr_gpmrs(&shuffled, &config).expect("data chaos is recoverable");
        tuple_bytes(&run.skyline)
    };
    let report = assert_schedule_independent(8, 0xDA7A_C4A0, run_case);
    assert_eq!(report.cases.len(), 8);
    assert!(report.output_len > 0);
}

// ---------------------------------------------------------------------------
// Out-of-core storage plane: spilled runs under the same chaos.
// ---------------------------------------------------------------------------

/// A per-slot budget small enough that every scenario in this file spills:
/// the serialized shuffle output of even one map task exceeds 1 KiB.
const SPILL_BUDGET: u64 = 1024;

#[test]
fn spilled_chaos_preserves_every_algorithm_output() {
    // Seeded fault plans replayed with the storage plane forced on: the
    // spilled runs must reproduce the *in-memory* fault-free bytes, so
    // spilling composes with the whole recovery ladder instead of adding a
    // second source of nondeterminism.
    let data = chaos_data();
    let clean_gpsrs = run_core(&data, FaultTolerance::none(), mr_gpsrs);
    let clean_gpmrs = run_core(&data, FaultTolerance::none(), mr_gpmrs);
    let clean_bnl = run_baseline(&data, FaultTolerance::none(), mr_bnl);
    let clean_angle = run_baseline(&data, FaultTolerance::none(), mr_angle);

    let mut spill_files = 0u64;
    for seed in REGRESSION_SEEDS {
        let ft = FaultTolerance::with_plan(FaultPlan::seeded(seed));
        let config = SkylineConfig::test()
            .with_fault_tolerance(ft.clone())
            .with_memory_budget(Some(SPILL_BUDGET));
        let bconfig = BaselineConfig::test()
            .with_fault_tolerance(ft)
            .with_memory_budget(Some(SPILL_BUDGET));
        let gpsrs = mr_gpsrs(&data, &config).expect("spilled chaos is recoverable");
        let gpmrs = mr_gpmrs(&data, &config).expect("spilled chaos is recoverable");
        let bnl = mr_bnl(&data, &bconfig).expect("spilled chaos is recoverable");
        let angle = mr_angle(&data, &bconfig).expect("spilled chaos is recoverable");

        assert_eq!(
            tuple_bytes(&gpsrs.skyline),
            tuple_bytes(&clean_gpsrs.skyline),
            "spilled MR-GPSRS diverged under seed {seed:#x}"
        );
        assert_eq!(
            tuple_bytes(&gpmrs.skyline),
            tuple_bytes(&clean_gpmrs.skyline),
            "spilled MR-GPMRS diverged under seed {seed:#x}"
        );
        assert_eq!(
            tuple_bytes(&bnl.skyline),
            tuple_bytes(&clean_bnl.skyline),
            "spilled MR-BNL diverged under seed {seed:#x}"
        );
        assert_eq!(
            tuple_bytes(&angle.skyline),
            tuple_bytes(&clean_angle.skyline),
            "spilled MR-Angle diverged under seed {seed:#x}"
        );
        spill_files += gpsrs
            .metrics
            .jobs
            .iter()
            .chain(&gpmrs.metrics.jobs)
            .map(|j| j.spill_files)
            .sum::<u64>();
    }
    assert!(
        spill_files > 0,
        "the budget never forced a spill — the sweep tested nothing"
    );
}

#[test]
fn corrupt_spilled_segments_route_into_the_recovery_ladder() {
    // With the storage plane on, reducer input lives in on-disk spill
    // segments, and the corruption plan flips bytes in those files. A
    // transient hit must heal via a clean re-fetch; an at-rest hit must
    // escalate to re-executing the producing map — and the skyline must
    // still come out byte-identical to the fault-free in-memory run.
    let data = chaos_data();
    let clean = run_core(&data, FaultTolerance::none(), mr_gpsrs);

    let collector = Collector::new();
    let plan = FaultPlan::none()
        .with_corrupt_shuffle(0, 0, 1) // transient: the second fetch is clean
        .with_corrupt_shuffle(1, 0, 2) // at-rest: both fetches fail, map re-runs
        .for_job("gpsrs");
    let config = SkylineConfig::test()
        .with_fault_tolerance(FaultTolerance::with_plan(plan))
        .with_memory_budget(Some(SPILL_BUDGET))
        .with_telemetry(Some(collector.clone()));
    let run = mr_gpsrs(&data, &config).expect("segment corruption is recoverable");

    assert_eq!(
        tuple_bytes(&run.skyline),
        tuple_bytes(&clean.skyline),
        "MR-GPSRS diverged under spilled-segment corruption"
    );
    let job = run.metrics.job("gpsrs").expect("skyline job ran");
    assert!(job.spill_files > 0, "the budget must actually force spills");
    assert!(job.merge_passes >= 1, "spilled runs must externally merge");
    assert_eq!(job.corrupt_fetches, 3, "1 transient + 2 at-rest fetches");
    assert!(
        job.map_retries >= 1,
        "the at-rest corruption must re-execute its producer"
    );

    let trace = chrome_trace(&collector.finish());
    for needle in ["\"spill[0]\"", "\"merge\"", "fault:corrupt"] {
        assert!(trace.contains(needle), "the trace must carry {needle}");
    }
}

#[test]
fn spilled_chaos_output_is_schedule_independent() {
    // The fixed fault plan from `chaos_output_is_schedule_independent`,
    // replayed with every schedule shaken *and* the storage plane on:
    // spill-file boundaries and merge order must not leak scheduling
    // order into the output.
    let data = scenario(Distribution::Clustered { clusters: 3 }, 3, 300, 707);
    let run_case = |case: &ShakeCase| -> Vec<u8> {
        let mut tuples = data.tuples().to_vec();
        case.permute(&mut tuples);
        let shuffled = Dataset::new(data.dim(), tuples).expect("permutation preserves validity");
        let mut config = SkylineConfig::test()
            .with_mappers(1 + case.map_slots)
            .with_reducers(case.reduce_slots)
            .with_fault_tolerance(FaultTolerance::with_plan(FaultPlan::seeded(0xC0FFEE)));
        config.cluster = case.cluster(&config.cluster);
        config.cluster.storage.memory_budget = Some(SPILL_BUDGET);
        let run = mr_gpmrs(&shuffled, &config).expect("spilled chaos is recoverable");
        assert!(
            run.metrics.jobs.iter().map(|j| j.spill_files).sum::<u64>() > 0,
            "every shaken case must spill"
        );
        tuple_bytes(&run.skyline)
    };
    let report = assert_schedule_independent(6, 0x5B11_5EED, run_case);
    assert_eq!(report.cases.len(), 6);
    assert!(report.output_len > 0);
}

// ---------------------------------------------------------------------------
// Exhausted retries: structured errors, never panics.
// ---------------------------------------------------------------------------

struct SumMap;
struct SumMapTask;
impl MapTask for SumMapTask {
    type In = (u16, u32);
    type K = u16;
    type V = u64;
    fn map(&mut self, input: &(u16, u32), out: &mut Emitter<u16, u64>) {
        out.emit(input.0, input.1 as u64);
    }
}
impl MapFactory for SumMap {
    type Task = SumMapTask;
    fn create(&self, _: &TaskContext) -> SumMapTask {
        SumMapTask
    }
}

struct SumReduce;
struct SumReduceTask;
impl ReduceTask for SumReduceTask {
    type K = u16;
    type V = u64;
    type Out = (u16, u64);
    fn reduce(&mut self, key: u16, values: Vec<u64>, out: &mut OutputCollector<(u16, u64)>) {
        out.collect((key, values.into_iter().sum()));
    }
}
impl ReduceFactory for SumReduce {
    type Task = SumReduceTask;
    fn create(&self, _: &TaskContext) -> SumReduceTask {
        SumReduceTask
    }
}

fn doomed_splits() -> Vec<Vec<(u16, u32)>> {
    vec![vec![(1, 10), (2, 20)], vec![(1, 5)]]
}

#[test]
fn exhausted_lost_output_retries_yield_a_structured_job_error() {
    let config = JobConfig::new("doomed", 1)
        .with_faults(FaultPlan::none().with_map_fault(0, TaskFault::lost(10)));
    let err = run_job(
        &ClusterConfig::test(),
        &config,
        &doomed_splits(),
        &SumMap,
        &SumReduce,
        &HashPartitioner,
    )
    .expect_err("a task that always loses its output must abort the job");
    let budget = RetryPolicy::new().max_attempts;
    assert_eq!(err.job, "doomed");
    assert_eq!(err.task, TaskKind::Map);
    assert_eq!(err.index, 0);
    assert_eq!(err.attempts, budget);
    assert_eq!(
        err.history.len(),
        budget as usize,
        "every failed attempt must be recorded in order"
    );
    for (i, failure) in err.history.iter().enumerate() {
        assert_eq!(failure.attempt, i as u32);
    }
    assert!(err.payload.is_none(), "output loss is not a panic");
    assert_eq!(err.metrics.map_tasks, 2);
}

#[test]
fn exhausted_mid_task_panics_are_caught_not_propagated() {
    // The panic boundary is per attempt: even when every attempt panics,
    // run_job returns Err — it never unwinds into the caller.
    let config = JobConfig::new("doomed-panic", 1)
        .with_faults(FaultPlan::none().with_map_fault(1, TaskFault::panics(10)));
    let err = run_job(
        &ClusterConfig::test(),
        &config,
        &doomed_splits(),
        &SumMap,
        &SumReduce,
        &HashPartitioner,
    )
    .expect_err("a task that always panics must abort the job, not unwind");
    assert_eq!(err.task, TaskKind::Map);
    assert_eq!(err.index, 1);
    assert_eq!(err.attempts, RetryPolicy::new().max_attempts);
    assert!(
        err.payload.is_some(),
        "the last panic payload must be preserved for diagnostics"
    );
    assert!(!err.last_cause().is_empty());
}

#[test]
fn pipeline_abort_surfaces_as_job_failed_error() {
    // Satellite (c): at the pipeline level, the engine's JobError arrives
    // as the crate-level Error::JobFailed with the task coordinates intact,
    // and the pipeline chain aborts instead of running later jobs on
    // garbage input.
    let data = chaos_data();
    let ft = FaultTolerance::with_plan(
        FaultPlan::none()
            .with_map_fault(0, TaskFault::lost(10))
            .for_job("gpsrs"),
    );
    let config = SkylineConfig::test().with_fault_tolerance(ft);
    let err = mr_gpsrs(&data, &config).expect_err("the skyline job cannot finish");
    match err {
        Error::JobFailed {
            job,
            task,
            index,
            attempts,
            ..
        } => {
            assert_eq!(job, "gpsrs");
            assert_eq!(task, "map");
            assert_eq!(index, 0);
            assert_eq!(attempts, RetryPolicy::new().max_attempts);
        }
        other => panic!("expected Error::JobFailed, got {other:?}"),
    }

    let bft = FaultTolerance::with_plan(
        FaultPlan::none()
            .with_reduce_fault(0, TaskFault::panics(10))
            .for_job("mr-bnl-merge"),
    );
    let bconfig = BaselineConfig::test().with_fault_tolerance(bft);
    let err = mr_bnl(&data, &bconfig).expect_err("the merge job cannot finish");
    assert!(
        matches!(err, Error::JobFailed { ref task, .. } if task == "reduce"),
        "expected a reduce-phase JobFailed, got {err:?}"
    );
}

#[test]
fn tight_retry_budget_fails_what_a_default_budget_recovers() {
    // Three losses are recoverable under the default four-attempt budget
    // but fatal under a two-attempt budget — the bound is real, not
    // decorative.
    let data = chaos_data();
    let plan = FaultPlan::none()
        .with_map_fault(0, TaskFault::lost(3))
        .for_job("gpsrs");
    let lenient =
        SkylineConfig::test().with_fault_tolerance(FaultTolerance::with_plan(plan.clone()));
    let strict = SkylineConfig::test().with_fault_tolerance(
        FaultTolerance::with_plan(plan).with_retry(RetryPolicy::new().with_max_attempts(2)),
    );
    let ok = mr_gpsrs(&data, &lenient).expect("three losses fit in four attempts");
    assert!(!ok.skyline.is_empty());
    let err = mr_gpsrs(&data, &strict).expect_err("three losses exceed two attempts");
    assert!(matches!(err, Error::JobFailed { attempts: 2, .. }));
}

// ---------------------------------------------------------------------------
// Seeded property sweep.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn random_fault_plans_never_change_the_skyline(seed in any::<u64>()) {
        let data = scenario(Distribution::Independent, 3, 250, 703);
        let clean = match mr_gpmrs(&data, &SkylineConfig::test()) {
            Ok(run) => run,
            Err(err) => return Err(format!("fault-free run aborted: {err}")),
        };
        let ft = FaultTolerance::with_plan(FaultPlan::seeded(seed));
        let config = SkylineConfig::test().with_fault_tolerance(ft.clone());
        let chaotic = match mr_gpmrs(&data, &config) {
            Ok(run) => run,
            Err(err) => return Err(format!("seeded faults must stay recoverable: {err}")),
        };
        prop_assert_eq!(tuple_bytes(&chaotic.skyline), tuple_bytes(&clean.skyline));

        let bclean = match mr_bnl(&data, &BaselineConfig::test()) {
            Ok(run) => run,
            Err(err) => return Err(format!("fault-free run aborted: {err}")),
        };
        let bconfig = BaselineConfig::test().with_fault_tolerance(ft);
        let bchaotic = match mr_bnl(&data, &bconfig) {
            Ok(run) => run,
            Err(err) => return Err(format!("seeded faults must stay recoverable: {err}")),
        };
        prop_assert_eq!(tuple_bytes(&bchaotic.skyline), tuple_bytes(&bclean.skyline));

        let budget = RetryPolicy::new().max_attempts as u64;
        assert_retry_bounds(&chaotic.metrics.jobs, budget);
        assert_retry_bounds(&bchaotic.metrics.jobs, budget);
    }

    #[test]
    fn node_losses_reexecute_exactly_the_lost_completed_maps(seed in any::<u64>()) {
        // Seeded node losses fire after the map phase completes, so the
        // exact re-execution bill has a closed form: every map task whose
        // home node is on the job's loss list runs again, no more and no
        // less. The detection timeout also makes lossy runs strictly
        // slower on the simulated clock than the fault-free run.
        let data = scenario(Distribution::Independent, 3, 250, 704);
        let clean = match mr_gpmrs(&data, &SkylineConfig::test()) {
            Ok(run) => run,
            Err(err) => return Err(format!("fault-free run aborted: {err}")),
        };
        let plan = FaultPlan::chaos_nodes(seed);
        let mut config = SkylineConfig::test()
            .with_fault_tolerance(FaultTolerance::with_plan(plan.clone()));
        config.cluster = ClusterConfig::test_placed(seed);
        let nodes = config.cluster.nodes;
        let placement = Placement::new(seed);
        let alive: Vec<usize> = (0..nodes).collect();
        let chaotic = match mr_gpmrs(&data, &config) {
            Ok(run) => run,
            Err(err) => return Err(format!("node chaos must stay recoverable: {err}")),
        };
        prop_assert_eq!(tuple_bytes(&chaotic.skyline), tuple_bytes(&clean.skyline));

        let mut total_losses = 0u64;
        for job in &chaotic.metrics.jobs {
            let losses = plan.node_losses_for(&job.name, nodes);
            let expected = (0..job.map_tasks)
                .filter(|&i| {
                    let home = placement.task_home(&job.name, TaskKind::Map, i, &alive);
                    losses.iter().any(|l| l.node == home)
                })
                .count() as u64;
            prop_assert_eq!(job.nodes_lost, losses.len() as u64, "job {}", job.name);
            prop_assert_eq!(job.maps_reexecuted, expected, "job {}", job.name);
            total_losses += losses.len() as u64;
        }
        if total_losses > 0 {
            prop_assert!(
                chaotic.metrics.sim_runtime() >= clean.metrics.sim_runtime(),
                "losing nodes must never make the simulated run faster"
            );
        }
    }
}
