//! Multi-tenant executor suite: concurrent pipelines on one shared
//! cluster must behave exactly like their standalone runs (scheduling
//! decides *when*, never *what*), fair-share must not starve any tenant,
//! the slot-tick ledger must conserve, and a sustained ≥100-job load must
//! be byte-identical — outputs *and* `sched.*` counters — no matter what
//! order the jobs were submitted in.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use skymr::{mr_gpmrs, mr_gpsrs, SkylineConfig};
use skymr_baselines::{mr_angle, mr_bnl, BaselineConfig};
use skymr_common::{Error, Tuple};
use skymr_datagen::{stream, Distribution};
use skymr_integration_tests::scenario;
use skymr_mapreduce::{
    assert_schedule_independent, run_job, run_job_from, AdmissionConfig, ClusterConfig,
    ClusterExecutor, Emitter, FairShareScheduler, FaultPlan, FaultTolerance, FnSplits,
    HashPartitioner, JobCompletion, JobConfig, JobHandle, JobMetrics, JobSpec, MapFactory, MapTask,
    OutputCollector, ReduceFactory, ReduceTask, TaskContext,
};

/// Serializes the id-sorted skyline to a canonical byte string so the
/// "byte-identical" claim is literal (same idiom as the chaos suite).
fn tuple_bytes(tuples: &[Tuple]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for t in tuples {
        bytes.extend_from_slice(&t.id.to_le_bytes());
        for v in &t.values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
    }
    bytes
}

fn core_config(cluster: &ClusterConfig, seed: u64) -> SkylineConfig {
    let mut config = SkylineConfig::test()
        .with_fault_tolerance(FaultTolerance::with_plan(FaultPlan::seeded(seed)));
    config.cluster = cluster.clone();
    config
}

fn baseline_config(cluster: &ClusterConfig, seed: u64) -> BaselineConfig {
    let mut config = BaselineConfig::test()
        .with_fault_tolerance(FaultTolerance::with_plan(FaultPlan::seeded(seed)));
    config.cluster = cluster.clone();
    config
}

/// A data-plane-free job: one map-only MapReduce job whose modeled task
/// durations are handed in directly. Lets the scheduling tests run
/// hundreds of jobs without paying for real skyline computation.
fn synthetic_plane(
    value: u64,
    map_ms: Vec<u64>,
) -> impl FnOnce(&ClusterConfig) -> Result<(u64, Vec<JobMetrics>), Error> {
    move |_| {
        let mut m = JobMetrics::empty("p", map_ms.len(), 0);
        m.map_task_durations = map_ms.iter().map(|&v| Duration::from_millis(v)).collect();
        Ok((value, vec![m]))
    }
}

/// A boxed data plane returning canonical skyline bytes.
type BytesPlane =
    Box<dyn FnOnce(&ClusterConfig) -> Result<(Vec<u8>, Vec<JobMetrics>), Error> + Send>;

/// All four pipelines — MR-GPSRS, MR-GPMRS, MR-BNL, MR-Angle — run
/// *concurrently* on one executor, each under its own seeded fault plan,
/// and every one must reproduce its standalone run byte for byte.
#[test]
fn four_concurrent_pipelines_match_their_standalone_runs() {
    let data = Arc::new(scenario(Distribution::Anticorrelated, 3, 400, 701));
    let cluster = ClusterConfig::test();
    let seeds = [0xC0FFEEu64, 0x5EED_0001, 42, 0xDEAD_BEEF];

    let expected = [
        tuple_bytes(
            &mr_gpsrs(&data, &core_config(&cluster, seeds[0]))
                .expect("gpsrs")
                .skyline,
        ),
        tuple_bytes(
            &mr_gpmrs(&data, &core_config(&cluster, seeds[1]))
                .expect("gpmrs")
                .skyline,
        ),
        tuple_bytes(
            &mr_bnl(&data, &baseline_config(&cluster, seeds[2]))
                .expect("bnl")
                .skyline,
        ),
        tuple_bytes(
            &mr_angle(&data, &baseline_config(&cluster, seeds[3]))
                .expect("angle")
                .skyline,
        ),
    ];

    let mut exec = ClusterExecutor::new(cluster);
    let mut handles = Vec::new();
    let submit = |exec: &mut ClusterExecutor,
                  name: &str,
                  tenant: &str,
                  arrival_ms: u64,
                  plane: BytesPlane| {
        let spec = JobSpec::new(name, tenant).arriving_at(Duration::from_millis(arrival_ms));
        exec.submit(spec, plane).expect("statically feasible")
    };
    {
        let data = Arc::clone(&data);
        handles.push(submit(
            &mut exec,
            "gpsrs",
            "core",
            0,
            Box::new(move |cl| {
                let run = mr_gpsrs(&data, &core_config(cl, seeds[0]))?;
                Ok((tuple_bytes(&run.skyline), run.metrics.jobs.clone()))
            }),
        ));
    }
    {
        let data = Arc::clone(&data);
        handles.push(submit(
            &mut exec,
            "gpmrs",
            "core",
            1,
            Box::new(move |cl| {
                let run = mr_gpmrs(&data, &core_config(cl, seeds[1]))?;
                Ok((tuple_bytes(&run.skyline), run.metrics.jobs.clone()))
            }),
        ));
    }
    {
        let data = Arc::clone(&data);
        handles.push(submit(
            &mut exec,
            "bnl",
            "baselines",
            2,
            Box::new(move |cl| {
                let run = mr_bnl(&data, &baseline_config(cl, seeds[2]))?;
                Ok((tuple_bytes(&run.skyline), run.metrics.jobs.clone()))
            }),
        ));
    }
    {
        let data = Arc::clone(&data);
        handles.push(submit(
            &mut exec,
            "angle",
            "baselines",
            3,
            Box::new(move |cl| {
                let run = mr_angle(&data, &baseline_config(cl, seeds[3]))?;
                Ok((tuple_bytes(&run.skyline), run.metrics.jobs.clone()))
            }),
        ));
    }

    let report = exec.run();
    assert_eq!(
        report.completed,
        4,
        "all four pipelines must finish:\n{}",
        report.render()
    );
    for (handle, expected) in handles.into_iter().zip(expected) {
        let outcome = exec.take(handle).unwrap();
        assert_eq!(
            outcome.output, expected,
            "a pipeline diverged from its standalone run under contention"
        );
    }
}

/// The ISSUE's fairness acceptance: under equal weights and equal demand,
/// the max/min per-tenant slot-tick share stays within 2×.
#[test]
fn fair_share_keeps_tenant_slot_ticks_within_two_x() {
    let mut cluster = ClusterConfig::test();
    cluster.map_slots = 2;
    cluster.reduce_slots = 1;
    let mut exec = ClusterExecutor::new(cluster).with_scheduler(FairShareScheduler);
    for tenant in ["a", "b", "c"] {
        for i in 0..4 {
            let spec = JobSpec::new(format!("{tenant}-{i}"), tenant);
            exec.submit(spec, synthetic_plane(0, vec![10, 10]))
                .expect("feasible");
        }
    }
    let report = exec.run();
    assert_eq!(report.completed, 12);
    let ticks: Vec<u64> = report.tenants.values().map(|t| t.slot_ticks).collect();
    let min = ticks.iter().copied().min().expect("three tenants ran");
    let max = ticks.iter().copied().max().expect("three tenants ran");
    assert!(min > 0, "every tenant must get slot time");
    assert!(
        max as f64 / min as f64 <= 2.0,
        "fair share drifted past 2x: tenant slot-ticks {ticks:?}"
    );
}

/// Streaming satellite: a job fed by seeded stream chunks through
/// [`FnSplits`] must equal the same job fed by fully materialized splits.
#[test]
fn streamed_splits_match_in_memory_splits() {
    struct Grid;
    struct GridTask;
    impl MapTask for GridTask {
        type In = Tuple;
        type K = u64;
        type V = u64;
        fn map(&mut self, t: &Tuple, out: &mut Emitter<u64, u64>) {
            let mut cell = 0u64;
            for v in t.values.iter() {
                cell = cell * 4 + (((v * 4.0) as u64).min(3));
            }
            out.emit(cell, 1);
        }
    }
    impl MapFactory for Grid {
        type Task = GridTask;
        fn create(&self, _: &TaskContext) -> GridTask {
            GridTask
        }
    }
    struct Sum;
    struct SumTask;
    impl ReduceTask for SumTask {
        type K = u64;
        type V = u64;
        type Out = (u64, u64);
        fn reduce(&mut self, cell: u64, counts: Vec<u64>, out: &mut OutputCollector<(u64, u64)>) {
            out.collect((cell, counts.iter().sum()));
        }
    }
    impl ReduceFactory for Sum {
        type Task = SumTask;
        fn create(&self, _: &TaskContext) -> SumTask {
            SumTask
        }
    }

    let (card, chunk, seed) = (1000usize, 250usize, 99u64);
    let cluster = ClusterConfig::test();
    let config = JobConfig::new("grid", 3);

    let splits: Vec<Vec<Tuple>> = stream(Distribution::Independent, 3, card, seed)
        .chunks(chunk)
        .collect();
    let lens: Vec<usize> = splits.iter().map(Vec::len).collect();
    let materialized = run_job(&cluster, &config, &splits, &Grid, &Sum, &HashPartitioner)
        .expect("materialized run");

    let source = FnSplits::new(lens, move |s| {
        stream(Distribution::Independent, 3, card, seed)
            .chunks(chunk)
            .nth(s)
            .expect("split index within the declared shape")
    });
    let streamed = run_job_from(&cluster, &config, &source, &Grid, &Sum, &HashPartitioner)
        .expect("streamed run");

    let mut a = materialized.into_flat_output();
    let mut b = streamed.into_flat_output();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "streamed splits changed the job output");
}

/// A sustained 120-job load — bursty arrivals, three tenants, a bounded
/// admission queue, scattered deadlines — must produce byte-identical
/// results (terminal states, outputs, scheduling stats, and the full
/// `sched.*` counter registry) regardless of submission order.
#[test]
fn sustained_load_is_submission_order_independent() {
    const JOBS: usize = 120;
    let mut base = ClusterConfig::test();
    base.map_slots = 3;
    base.reduce_slots = 2;
    // The simulated slot shape is held fixed across cases: the pinned
    // sched.* metrics are themselves a function of the cluster shape, so
    // only submission order (and host threads) may vary.
    assert_schedule_independent(4, 0xA11CE, |case| {
        let mut order: Vec<usize> = (0..JOBS).collect();
        case.permute(&mut order);
        let mut exec = ClusterExecutor::new(base.clone())
            .with_admission(AdmissionConfig::with_queue_depth(12))
            .with_scheduler(FairShareScheduler);
        let mut handles: Vec<Option<JobHandle<u64>>> = (0..JOBS).map(|_| None).collect();
        for &i in &order {
            let tenant = ["a", "b", "c"][i % 3];
            let mut spec = JobSpec::new(format!("job-{i:03}"), tenant)
                .arriving_at(Duration::from_millis((i as u64 / 6) * 5));
            if i % 7 == 0 {
                spec = spec.with_deadline(Duration::from_millis((i as u64 / 6) * 5 + 40));
            }
            let plane = synthetic_plane(i as u64, vec![4 + (i % 5) as u64, 3]);
            handles[i] = Some(exec.submit(spec, plane).expect("statically feasible"));
        }
        let report = exec.run();
        let mut bytes = report.render().into_bytes();
        for (name, value) in report.registry.counters() {
            bytes.extend_from_slice(name.as_bytes());
            bytes.extend_from_slice(&value.to_le_bytes());
        }
        for handle in handles
            .into_iter()
            .map(|h| h.expect("every index submitted"))
        {
            match exec.take(handle) {
                JobCompletion::Finished(outcome) => {
                    bytes.push(b'F');
                    bytes.extend_from_slice(&outcome.output.to_le_bytes());
                    bytes.extend_from_slice(format!("{:?}", outcome.stats).as_bytes());
                }
                JobCompletion::Rejected(e) => {
                    bytes.push(b'R');
                    bytes.extend_from_slice(e.to_string().as_bytes());
                }
                JobCompletion::Cancelled(e) => {
                    bytes.push(b'C');
                    bytes.extend_from_slice(e.to_string().as_bytes());
                }
                JobCompletion::Failed(e) => {
                    bytes.push(b'X');
                    bytes.extend_from_slice(e.to_string().as_bytes());
                }
            }
        }
        bytes
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fair-share never starves: with no deadlines and feasible
    /// reservations, every submitted job completes, no matter the mix of
    /// tenants, arrivals, and durations — and the slot-tick ledger
    /// conserves exactly (per-job sum == per-tenant sum == the pinned
    /// `sched.slot_ticks` counter).
    #[test]
    fn fair_share_never_starves_and_slot_ticks_conserve(
        jobs in proptest::collection::vec(
            (0usize..3, 0u64..20, 1u64..12, 1usize..4),
            1..12,
        ),
    ) {
        let mut cluster = ClusterConfig::test();
        cluster.map_slots = 2;
        cluster.reduce_slots = 1;
        let mut exec = ClusterExecutor::new(cluster).with_scheduler(FairShareScheduler);
        let mut handles = Vec::new();
        for (i, &(tenant, arrival_ms, task_ms, tasks)) in jobs.iter().enumerate() {
            let spec = JobSpec::new(
                format!("j{i}"),
                ["a", "b", "c"][tenant],
            )
            .arriving_at(Duration::from_millis(arrival_ms));
            let plane = synthetic_plane(i as u64, vec![task_ms; tasks]);
            handles.push(exec.submit(spec, plane).expect("statically feasible"));
        }
        let report = exec.run();
        prop_assert_eq!(
            report.completed as usize, jobs.len(),
            "fair share starved a job: {}", report.render()
        );
        let mut per_job = 0u64;
        for handle in handles {
            per_job += exec.take(handle).unwrap().stats.slot_ticks;
        }
        let per_tenant: u64 = report.tenants.values().map(|t| t.slot_ticks).sum();
        prop_assert_eq!(per_job, per_tenant);
        prop_assert_eq!(per_job, report.registry.counter("sched.slot_ticks"));
    }
}
