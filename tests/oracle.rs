//! Cross-crate oracle tests: every MapReduce skyline algorithm in the
//! workspace must return exactly the centralized BNL skyline, across
//! distributions, dimensionalities, and degenerate inputs.

use skymr::SkylineConfig;
use skymr_common::{Dataset, Tuple};
use skymr_integration_tests::{assert_all_agree, scenario, ALL_DISTRIBUTIONS};

#[test]
fn all_algorithms_agree_across_distributions() {
    for dist in ALL_DISTRIBUTIONS {
        let data = scenario(dist, 3, 500, 101);
        assert_all_agree(&data, &SkylineConfig::test(), &format!("{dist:?} d=3"));
    }
}

#[test]
fn all_algorithms_agree_across_dimensionalities() {
    for dim in [1usize, 2, 4, 6, 8] {
        let data = scenario(skymr_datagen::Distribution::Anticorrelated, dim, 300, 102);
        assert_all_agree(
            &data,
            &SkylineConfig::test(),
            &format!("anticorrelated d={dim}"),
        );
    }
}

#[test]
fn all_algorithms_agree_on_small_cardinalities() {
    for card in [1usize, 2, 3, 10, 50] {
        let data = scenario(skymr_datagen::Distribution::Independent, 3, card, 103);
        assert_all_agree(
            &data,
            &SkylineConfig::test(),
            &format!("independent c={card}"),
        );
    }
}

#[test]
fn all_algorithms_agree_with_auto_ppd() {
    let mut config = SkylineConfig::test();
    config.ppd = skymr::PpdPolicy::auto();
    let data = scenario(skymr_datagen::Distribution::Anticorrelated, 4, 700, 104);
    assert_all_agree(&data, &config, "auto PPD");
}

#[test]
fn all_algorithms_handle_identical_tuples() {
    // Every tuple equal: all are skyline (no strict dominance anywhere).
    let tuples: Vec<Tuple> = (0..40).map(|i| Tuple::new(i, vec![0.25, 0.75])).collect();
    let data = Dataset::new(2, tuples).unwrap();
    assert_all_agree(&data, &SkylineConfig::test(), "identical tuples");
}

#[test]
fn all_algorithms_handle_single_dominator() {
    // One tuple dominates everything else.
    let mut tuples = vec![Tuple::new(0, vec![0.001, 0.001, 0.001])];
    for i in 1..200u64 {
        let f = 0.2 + (i as f64 % 61.0) / 100.0;
        tuples.push(Tuple::new(i, vec![f, 0.9 - f / 2.0, 0.5]));
    }
    let data = Dataset::new(3, tuples).unwrap();
    assert_all_agree(&data, &SkylineConfig::test(), "single dominator");
}

#[test]
fn mr_bitmap_matches_oracle_on_its_own_domain() {
    // MR-Bitmap answers for limited-distinct-value data; compare on the
    // discretized dataset (its own domain), across distributions.
    use skymr_baselines::{bnl_skyline, discretize, mr_bitmap, BaselineConfig};
    for dist in ALL_DISTRIBUTIONS {
        let data = discretize(&scenario(dist, 3, 400, 105), 8);
        let run = mr_bitmap(&data, &BaselineConfig::test()).unwrap();
        let oracle: Vec<u64> = bnl_skyline(data.tuples()).iter().map(|t| t.id).collect();
        assert_eq!(run.skyline_ids(), oracle, "MR-Bitmap disagrees on {dist:?}");
    }
}

#[test]
fn all_algorithms_handle_boundary_values() {
    // Values at 0.0 and just below 1.0, plus cell-boundary values that
    // exercise the half-open grid cells.
    let tuples = vec![
        Tuple::new(0, vec![0.0, 1.0 - 1e-9]),
        Tuple::new(1, vec![1.0 - 1e-9, 0.0]),
        Tuple::new(2, vec![1.0 / 3.0, 1.0 / 3.0]),
        Tuple::new(3, vec![2.0 / 3.0, 2.0 / 3.0]),
        Tuple::new(4, vec![0.0, 0.0]),
        Tuple::new(5, vec![0.5, 0.5]),
    ];
    let data = Dataset::new(2, tuples).unwrap();
    assert_all_agree(&data, &SkylineConfig::test(), "boundary values");
}
