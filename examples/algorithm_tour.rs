//! Algorithm tour: watch every moving part of the paper on a tiny input.
//!
//! ```text
//! cargo run -p skymr-examples --release --bin algorithm_tour
//! ```
//!
//! Walks a small 2-D dataset through the whole machinery — grid
//! partitioning, bitstring generation and pruning, independent-group
//! formation — printing each intermediate structure, then runs all five
//! MapReduce algorithms plus the two centralized baselines and checks they
//! agree.

use skymr::bitstring::Bitstring;
use skymr::groups::{plan_groups, MergePolicy};
use skymr::{mr_gpmrs, mr_gpsrs, Grid, SkylineConfig};
use skymr_baselines::{
    bnl_skyline, mr_angle, mr_bnl, mr_sfs, sfs_skyline, BaselineConfig, SfsOrder,
};
use skymr_datagen::{generate, Distribution};

fn render(bs: &Bitstring) -> String {
    (0..bs.grid().num_partitions())
        .map(|i| if bs.is_set(i) { '1' } else { '0' })
        .collect()
}

fn grid_picture(bs: &Bitstring) -> String {
    // Rows printed top-down with dimension 1 increasing upward, like the
    // paper's Figure 2.
    let n = bs.grid().ppd();
    let mut out = String::new();
    for row in (0..n).rev() {
        out.push_str("    ");
        for col in 0..n {
            let idx = bs.grid().index_of(&[col, row]);
            out.push(if bs.is_set(idx) { 'x' } else { '.' });
            out.push(' ');
        }
        out.push('\n');
    }
    out
}

fn main() {
    let data = generate(Distribution::Anticorrelated, 2, 400, 11);
    println!(
        "dataset: {} tuples, {} dims, anti-correlated\n",
        data.len(),
        data.dim()
    );

    // --- Grid partitioning & bitstring (paper Section 3) ---------------
    let grid = Grid::new(2, 5).expect("valid grid");
    println!(
        "grid: {} PPD -> {} partitions, column-major indexing",
        grid.ppd(),
        grid.num_partitions()
    );
    let mut bs = Bitstring::from_tuples(grid, data.tuples());
    println!("bitstring (Equation 1, 1 = non-empty): {}", render(&bs));
    println!("{}", grid_picture(&bs));
    bs.prune_dominated();
    println!(
        "after partition-dominance pruning (Equation 2): {}",
        render(&bs)
    );
    println!("{}", grid_picture(&bs));

    // --- Independent groups (paper Section 5) --------------------------
    let plan = plan_groups(&bs, 4, MergePolicy::ComputationCost);
    println!("independent partition groups (Algorithm 7):");
    for (i, g) in plan.groups.iter().enumerate() {
        println!(
            "  IG{} seeded at p{} (coords {:?}): partitions {:?}, cost {}",
            i + 1,
            g.seed,
            grid.coords_of(g.seed as usize),
            g.partitions,
            g.cost()
        );
    }
    println!("merged into {} reducer buckets:", plan.buckets.len());
    for (i, b) in plan.buckets.iter().enumerate() {
        println!(
            "  bucket {i}: partitions {:?}, cost {}",
            b.partitions, b.cost
        );
    }
    println!(
        "designations (partition -> responsible bucket): {:?}\n",
        plan.designated
    );

    // --- All algorithms agree ------------------------------------------
    let config = SkylineConfig::test().with_ppd(5);
    let bconfig = BaselineConfig::test();
    let oracle = bnl_skyline(data.tuples());
    println!("skyline size: {}", oracle.len());

    let gpsrs = mr_gpsrs(&data, &config).expect("valid configuration");
    let gpmrs = mr_gpmrs(&data, &config).expect("valid configuration");
    let bnl = mr_bnl(&data, &bconfig).expect("fault-free run");
    let sfs = mr_sfs(&data, &bconfig).expect("fault-free run");
    let angle = mr_angle(&data, &bconfig).expect("fault-free run");
    let sfs_central = sfs_skyline(data.tuples(), SfsOrder::Entropy);

    let oracle_ids: Vec<u64> = oracle.iter().map(|t| t.id).collect();
    for (name, ids) in [
        ("MR-GPSRS", gpsrs.skyline_ids()),
        ("MR-GPMRS", gpmrs.skyline_ids()),
        ("MR-BNL", bnl.skyline_ids()),
        ("MR-SFS", sfs.skyline_ids()),
        ("MR-Angle", angle.skyline_ids()),
        (
            "SFS (centralized)",
            sfs_central.iter().map(|t| t.id).collect(),
        ),
    ] {
        assert_eq!(ids, oracle_ids, "{name} disagrees with the BNL oracle");
        println!("  {name:<18} ✓ matches the BNL oracle");
    }

    println!("\nsimulated runtimes on the test cluster:");
    println!("  MR-GPSRS {:>9.3?}", gpsrs.metrics.sim_runtime());
    println!("  MR-GPMRS {:>9.3?}", gpmrs.metrics.sim_runtime());
    println!("  MR-BNL   {:>9.3?}", bnl.metrics.sim_runtime());
    println!("  MR-SFS   {:>9.3?}", sfs.metrics.sim_runtime());
    println!("  MR-Angle {:>9.3?}", angle.metrics.sim_runtime());
}
