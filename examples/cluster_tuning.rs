//! Cluster tuning: when do multiple reducers pay off?
//!
//! ```text
//! cargo run -p skymr-examples --release --bin cluster_tuning
//! ```
//!
//! The paper's headline finding is that MR-GPMRS wins when a large
//! fraction of tuples is in the skyline, while MR-GPSRS wins when the
//! fraction is small — and its future-work section asks for an automatic
//! switch. This example sweeps the reducer count on two contrasting
//! workloads (like the paper's Figure 10), prints the runtime curves, and
//! shows what the [`skymr::hybrid`] planner would have picked from the
//! bitstring statistics alone.

use std::sync::Arc;
use std::time::Duration;

use skymr::bitstring::job::generate_bitstring;
use skymr::hybrid::{choose, HybridChoice, DEFAULT_SURVIVAL_THRESHOLD};
use skymr::{mr_gpmrs, mr_gpsrs, SkylineConfig};
use skymr_common::Dataset;
use skymr_datagen::{generate, Distribution};
use skymr_mapreduce::{
    AdmissionConfig, BlacklistPolicy, ClusterConfig, ClusterExecutor, FaultPlan, FaultProfile,
    FaultTolerance, JobCompletion, JobSpec, PipelineMetrics, Placement, PriorityScheduler,
    SpeculationPolicy,
};

fn sweep(name: &str, data: &Dataset) {
    println!("--- {name}: {} tuples, {} dims ---", data.len(), data.dim());
    let mut best: Option<(usize, f64)> = None;
    for reducers in [1usize, 2, 5, 9, 13, 17] {
        let config = SkylineConfig::default().with_reducers(reducers);
        let run = if reducers == 1 {
            mr_gpsrs(data, &config).expect("valid configuration")
        } else {
            mr_gpmrs(data, &config).expect("valid configuration")
        };
        let secs = run.metrics.sim_runtime().as_secs_f64();
        let algo = if reducers == 1 {
            "MR-GPSRS"
        } else {
            "MR-GPMRS"
        };
        println!(
            "  {algo:<9} reducers={reducers:>2}  runtime {secs:>7.2}s  skyline {}",
            run.skyline.len()
        );
        if best.map_or(true, |(_, b)| secs < b) {
            best = Some((reducers, secs));
        }
    }
    let (best_r, best_s) = best.expect("at least one configuration ran");
    println!("  -> best observed: {best_r} reducer(s) at {best_s:.2}s");

    // What would the hybrid planner have chosen, from the bitstring alone?
    let config = SkylineConfig::default();
    let splits = data.split(config.mappers);
    let (bitstring, info, _) =
        generate_bitstring(&splits, data.dim(), data.len(), &config).expect("valid configuration");
    let choice = choose(
        &bitstring,
        info.non_empty,
        &config,
        DEFAULT_SURVIVAL_THRESHOLD,
    );
    let survival = info.surviving as f64 / info.non_empty.max(1) as f64;
    let survival_pct = survival * 100.0;
    match choice {
        HybridChoice::SingleReducer => {
            println!("  -> hybrid planner: single reducer (partition survival {survival_pct:.0}%)");
        }
        HybridChoice::MultiReducer { reducers } => println!(
            "  -> hybrid planner: {reducers} reducers (partition survival {survival_pct:.0}%)"
        ),
    }
    println!();
}

/// How does an unreliable cluster change the picture? Replay the same
/// workload under a seeded fault plan (task failures, mid-task panics,
/// stragglers) with speculative execution on, and show what recovery cost.
fn fault_sweep(name: &str, data: &Dataset) {
    println!("--- {name}, unreliable cluster (seeded faults + speculation) ---");
    let clean = mr_gpmrs(data, &SkylineConfig::default()).expect("fault-free run");
    let config = SkylineConfig::default().with_fault_tolerance(
        FaultTolerance::with_plan(FaultPlan::seeded(0xC0FFEE))
            .with_speculation(SpeculationPolicy::new()),
    );
    let run = mr_gpmrs(data, &config).expect("seeded faults stay within the retry budget");
    assert_eq!(
        run.skyline.len(),
        clean.skyline.len(),
        "re-execution must not change the answer"
    );
    // One row per job: phase breakdown plus the fault-tolerance story
    // (attempts, retries, speculative wins, wasted task time).
    for line in run.metrics.phase_table().lines() {
        println!("  {line}");
    }
    let clean_s = clean.metrics.sim_runtime().as_secs_f64();
    let faulty_s = run.metrics.sim_runtime().as_secs_f64();
    println!("  -> same skyline; runtime {clean_s:.2}s clean vs {faulty_s:.2}s under faults");
    println!();
}

/// Whole machines fail too: place tasks on nodes, kill some of them
/// mid-run, and show the node-level recovery bill — nodes lost, completed
/// map outputs re-executed, and nodes the blacklist took out of scheduling.
fn node_chaos_sweep(name: &str, data: &Dataset) {
    println!("--- {name}, node failures (placement + loss + blacklist) ---");
    let clean = mr_gpmrs(data, &SkylineConfig::default()).expect("fault-free run");
    let seed = 0xC0FFEE;
    // Node-hostile chaos, but with enough task-level faults on top that
    // the one-strike blacklist below has something to bench.
    let profile = FaultProfile {
        task_fault_permille: 400,
        ..FaultProfile::nodes()
    };
    let mut config = SkylineConfig::default().with_fault_tolerance(
        FaultTolerance::with_plan(FaultPlan::chaos(seed, profile))
            .with_blacklist(BlacklistPolicy::new().with_max_failures(1)),
    );
    config.cluster.placement = Some(Placement::new(seed));
    let run = mr_gpmrs(data, &config).expect("node losses stay recoverable");
    assert_eq!(
        run.skyline.len(),
        clean.skyline.len(),
        "node-loss recovery must not change the answer"
    );
    for job in &run.metrics.jobs {
        println!(
            "  {:<13} nodes lost {:>2}  blacklisted {:>2}  maps re-executed {:>2}  recovery {:>8.2?}",
            job.name, job.nodes_lost, job.nodes_blacklisted, job.maps_reexecuted, job.reexecution_time
        );
    }
    let clean_s = clean.metrics.sim_runtime().as_secs_f64();
    let faulty_s = run.metrics.sim_runtime().as_secs_f64();
    println!("  -> same skyline; runtime {clean_s:.2}s clean vs {faulty_s:.2}s with node loss");
    println!();
}

/// Tuning the cluster also means sharing it: run the same MR-GPMRS
/// pipeline for three tenants at once on one small slot pool, then drop a
/// high-priority job on top mid-run and watch the executor preempt the
/// background work to make room. The phase table's `queued`/`preempt`
/// columns carry the bill.
fn tenancy_sweep(name: &str, data: &Dataset) {
    println!("--- {name}, three tenants sharing one cluster (priority + preemption) ---");
    let data = Arc::new(data.clone());
    let mut executor = ClusterExecutor::new(ClusterConfig::test())
        .with_admission(AdmissionConfig::with_queue_depth(8))
        .with_scheduler(PriorityScheduler);

    // The data plane every tenant runs: the full two-job MR-GPMRS
    // pipeline. As in the load_generator example, the host-measured task
    // timings are replaced with a deterministic per-task compute model so
    // the control plane sees genuinely busy slots.
    let plane = |data: Arc<Dataset>| {
        move |cluster: &ClusterConfig| {
            let mut config = SkylineConfig::test();
            config.cluster = cluster.clone();
            let run = mr_gpmrs(&data, &config)?;
            let mut jobs = run.metrics.jobs.clone();
            for job in &mut jobs {
                for d in &mut job.map_task_durations {
                    *d = Duration::from_millis(15);
                }
                for d in &mut job.reduce_task_durations {
                    *d = Duration::from_millis(10);
                }
            }
            Ok((run.skyline.len(), jobs))
        }
    };

    let mut handles = Vec::new();
    for (i, tenant) in ["analytics", "batch", "ops"].into_iter().enumerate() {
        let spec = JobSpec::new(format!("gpmrs-{tenant}"), tenant)
            .arriving_at(Duration::from_millis(i as u64));
        let handle = executor
            .submit(spec, plane(Arc::clone(&data)))
            .expect("minimal reservations are statically feasible");
        handles.push((tenant.to_string(), handle));
    }
    // The urgent job arrives while all slots are busy with background
    // work: under the priority policy it preempts running attempts
    // instead of waiting its turn.
    let urgent = JobSpec::new("gpmrs-urgent", "ops")
        .arriving_at(Duration::from_millis(40))
        .with_priority(9);
    let handle = executor
        .submit(urgent, plane(Arc::clone(&data)))
        .expect("minimal reservations are statically feasible");
    handles.push(("ops (urgent)".to_string(), handle));

    let report = executor.run();
    print!("{}", report.render());

    let mut metrics = PipelineMetrics::new();
    for (who, handle) in handles {
        let outcome = executor.take(handle);
        assert!(
            matches!(outcome, JobCompletion::Finished(_)),
            "every tenant's pipeline must finish: {who}"
        );
        if let JobCompletion::Finished(outcome) = outcome {
            metrics.jobs.extend(outcome.jobs);
        }
    }
    for line in metrics.phase_table().lines() {
        println!("  {line}");
    }
    println!();
}

fn main() {
    // Small skyline: independent, low dimensionality. Extra reducers are
    // pure overhead here.
    let easy = generate(Distribution::Independent, 3, 40_000, 3);
    sweep("independent 3-d (small skyline)", &easy);

    // Huge skyline: anti-correlated, higher dimensionality. The single
    // reducer becomes the bottleneck; parallel reducers pay off.
    let hard = generate(Distribution::Anticorrelated, 7, 40_000, 3);
    sweep("anti-correlated 7-d (large skyline)", &hard);

    // Tuning is not only about reducer counts: on a flaky cluster the
    // retry/speculation machinery adds recovery work to the makespan.
    fault_sweep("anti-correlated 7-d", &hard);

    // And sometimes whole nodes go away, taking their finished map
    // outputs with them.
    node_chaos_sweep("anti-correlated 7-d", &hard);

    // Finally, the cluster is rarely yours alone: share it across tenants
    // and see what admission, queueing, and preemption cost each of them.
    tenancy_sweep("independent 3-d", &easy);
}

#[cfg(test)]
mod tests {
    use skymr_mapreduce::{JobMetrics, PipelineMetrics};

    #[test]
    fn phase_table_renders_for_a_map_only_job() {
        // A job with zero reducers (map-only, like a pure sampling pass)
        // must still produce a printable row — no division by the reducer
        // count anywhere in the renderer.
        let mut metrics = PipelineMetrics::new();
        metrics.push(JobMetrics::empty("map-only", 4, 0));
        let table = metrics.phase_table();
        assert!(table.contains("map-only"));
        assert!(table.contains("4m/0r"));
    }
}
