//! Quickstart: compute a skyline with MR-GPMRS in a dozen lines.
//!
//! ```text
//! cargo run -p skymr-examples --release --bin quickstart
//! ```
//!
//! Generates an anti-correlated dataset (the regime the paper's
//! multi-reducer algorithm is built for), runs the full two-job pipeline —
//! bitstring generation, then multi-reducer skyline computation — and
//! prints the skyline size plus the simulated cluster runtime breakdown.

use skymr::{mr_gpmrs, SkylineConfig};
use skymr_datagen::{generate, Distribution};

fn main() {
    // 50k 5-dimensional tuples; smaller value = better on every dimension.
    let data = generate(Distribution::Anticorrelated, 5, 50_000, 42);

    // Paper-default setup: a 13-node cluster, one mapper and one reducer
    // slot per node, automatic grid-resolution (PPD) selection.
    let config = SkylineConfig::default();

    let run = mr_gpmrs(&data, &config).expect("valid configuration");

    println!("input tuples      : {}", data.len());
    println!("skyline tuples    : {}", run.skyline.len());
    println!("grid PPD (auto)   : {}", run.info.ppd);
    println!(
        "partitions        : {} total, {} non-empty, {} after pruning",
        run.info.partitions, run.info.non_empty_partitions, run.info.surviving_partitions
    );
    println!(
        "independent groups: {} merged into {} reducer buckets",
        run.info.independent_groups, run.info.buckets
    );
    println!();
    for job in &run.metrics.jobs {
        println!(
            "job {:<12} sim runtime {:>8.2?}  (map {:?}, shuffle {:?} / {} KiB, reduce {:?})",
            job.name,
            job.sim_runtime,
            job.map_phase,
            job.shuffle_time,
            job.shuffle_bytes / 1024,
            job.reduce_phase,
        );
    }
    println!();
    println!("total simulated runtime: {:.2?}", run.metrics.sim_runtime());
    println!("host wall-clock        : {:.2?}", run.metrics.host_wall());

    // The first few skyline tuples, for flavour.
    for t in run.skyline.iter().take(5) {
        println!("skyline example: {t:?}");
    }
}
