//! Load generator: sustained multi-tenant job pressure on one cluster.
//!
//! ```text
//! cargo run -p skymr-examples --release --bin load_generator
//! ```
//!
//! Three tenants push 120 seeded analytics jobs at a small shared slot
//! pool — far more work than the cluster can hold at once. The
//! [`ClusterExecutor`] must degrade gracefully: admit what fits, shed the
//! overflow with structured rejections (never a panic, never a hang), meet
//! or miss deadlines deterministically, and keep the per-tenant accounting
//! honest. The same submission set is replayed under all three scheduling
//! policies (FIFO, fair-share, priority-with-preemption) so their
//! trade-offs are visible side by side, and every job that finishes under
//! more than one policy must produce byte-identical output — scheduling
//! may decide *when*, never *what*.
//!
//! Each job streams its input from a seeded [`skymr_datagen::stream`]
//! recipe through [`FnSplits`]: a queued job holds only `(seed, shape)`,
//! and a split is materialized per map attempt, then dropped.

use std::collections::BTreeMap;
use std::time::Duration;

use skymr_common::{Error, Tuple};
use skymr_datagen::{stream, Distribution};
use skymr_mapreduce::telemetry::export::chrome_trace;
use skymr_mapreduce::{
    run_job_from, AdmissionConfig, ClusterConfig, ClusterExecutor, Collector, Emitter,
    FairShareScheduler, FifoScheduler, FnSplits, HashPartitioner, JobCompletion, JobConfig,
    JobMetrics, JobSpec, MapFactory, MapTask, OutputCollector, PriorityScheduler, ReduceFactory,
    ReduceTask, Reservation, Scheduler, TaskContext,
};

/// The workload: a coarse grid histogram — every tuple lands in one of
/// 4^dim cells, reducers sum the per-cell counts. Deterministic, cheap,
/// and shaped like the paper's bitstring-generation job.
struct CellCount;
struct CellCountTask;

impl MapTask for CellCountTask {
    type In = Tuple;
    type K = u64;
    type V = u64;
    fn map(&mut self, t: &Tuple, out: &mut Emitter<u64, u64>) {
        let mut cell = 0u64;
        for v in t.values.iter() {
            cell = cell * 4 + (((v * 4.0) as u64).min(3));
        }
        out.emit(cell, 1);
    }
}

impl MapFactory for CellCount {
    type Task = CellCountTask;
    fn create(&self, _: &TaskContext) -> CellCountTask {
        CellCountTask
    }
}

struct SumCells;
struct SumCellsTask;

impl ReduceTask for SumCellsTask {
    type K = u64;
    type V = u64;
    type Out = (u64, u64);
    fn reduce(&mut self, cell: u64, counts: Vec<u64>, out: &mut OutputCollector<(u64, u64)>) {
        out.collect((cell, counts.iter().sum()));
    }
}

impl ReduceFactory for SumCells {
    type Task = SumCellsTask;
    fn create(&self, _: &TaskContext) -> SumCellsTask {
        SumCellsTask
    }
}

/// One job's seeded recipe; everything downstream derives from this.
#[derive(Clone, Copy)]
struct JobRecipe {
    index: usize,
    tenant: &'static str,
    cardinality: usize,
    seed: u64,
    arrival_ms: u64,
    deadline_ms: Option<u64>,
    priority: i32,
}

const TENANTS: [&str; 3] = ["analytics", "batch", "ops"];
const JOBS: usize = 120;
const SPLITS: usize = 3;

fn recipes() -> Vec<JobRecipe> {
    (0..JOBS)
        .map(|i| JobRecipe {
            index: i,
            tenant: TENANTS[i % TENANTS.len()],
            // 600..=3000 tuples, seeded per job.
            cardinality: 600 + (i % 5) * 600,
            seed: 0xBEEF + i as u64,
            // Bursty arrivals: waves of 8 jobs every 10 simulated ms —
            // far faster than the pool can drain them.
            arrival_ms: (i as u64 / 8) * 10,
            // Every 9th job carries a tight deadline some of which the
            // overloaded cluster will deterministically miss.
            deadline_ms: (i % 9 == 0).then_some((i as u64 / 8) * 10 + 150),
            // The ops tenant runs urgent work: under the priority policy
            // it may preempt the other tenants' running attempts.
            priority: if i % TENANTS.len() == 2 { 5 } else { 0 },
        })
        .collect()
}

/// Sorted `(cell, count)` pairs plus the per-job metrics the control
/// plane replays.
type PlaneOutput = Result<(Vec<(u64, u64)>, Vec<JobMetrics>), Error>;

/// The data plane: stream-chunked splits, one MapReduce job, sorted cell
/// counts out. Pure — byte-identical under any schedule.
fn plane(recipe: JobRecipe, cluster: &ClusterConfig) -> PlaneOutput {
    let chunk = recipe.cardinality.div_ceil(SPLITS);
    let lens: Vec<usize> = (0..SPLITS)
        .map(|s| chunk.min(recipe.cardinality - (s * chunk).min(recipe.cardinality)))
        .filter(|&len| len > 0)
        .collect();
    let source = FnSplits::new(lens, move |s| {
        stream(
            Distribution::Independent,
            3,
            recipe.cardinality,
            recipe.seed,
        )
        .chunks(chunk)
        .nth(s)
        .expect("split index within the declared shape")
    });
    let outcome = run_job_from(
        cluster,
        &JobConfig::new(format!("cells-{}", recipe.index), 2),
        &source,
        &CellCount,
        &SumCells,
        &HashPartitioner,
    )
    .map_err(Error::from)?;
    let mut metrics = outcome.metrics.clone();
    // The host-measured task timings are sub-tick for a workload this
    // small, so the control plane would see an idle cluster no matter how
    // many jobs pile up. Charge each task a deterministic per-record
    // compute model instead (40µs/tuple map, 5µs/tuple reduce): now the
    // slot pool genuinely saturates and the admission queue, deadlines,
    // and preemption all have something to push against.
    let per_map = Duration::from_micros((recipe.cardinality.div_ceil(SPLITS) * 40) as u64);
    let per_reduce = Duration::from_micros((recipe.cardinality * 5 / 2) as u64);
    for d in &mut metrics.map_task_durations {
        *d = per_map;
    }
    for d in &mut metrics.reduce_task_durations {
        *d = per_reduce;
    }
    let mut cells = outcome.into_flat_output();
    cells.sort_unstable();
    Ok((cells, vec![metrics]))
}

/// Replays the whole submission set under one policy. When `trace` names
/// a file, the run's span timeline (admission `queued` spans, `preempt`
/// instants, task attempts) is exported there as a Chrome trace.
fn run_policy(
    policy: impl Scheduler + 'static,
    fingerprints: &mut BTreeMap<usize, Vec<(u64, u64)>>,
    trace: Option<&str>,
) {
    // A small pool under heavy load: 4 map slots, 2 reduce slots, modeled
    // task durations far heavier than the arrival cadence, a 16-deep
    // admission queue, and a memory ledger sized so the deepest backlogs
    // overflow it.
    let mut cluster = ClusterConfig::test();
    cluster.map_slots = 4;
    cluster.reduce_slots = 2;
    cluster.job_startup = Duration::from_millis(1);
    let mut executor = ClusterExecutor::new(cluster)
        .with_admission(AdmissionConfig::with_queue_depth(16).with_memory_capacity(1 << 20))
        .with_scheduler(policy);
    let collector = trace.map(|_| Collector::new());
    if let Some(collector) = &collector {
        executor = executor.with_collector(collector.clone());
    }

    let mut handles = Vec::new();
    for recipe in recipes() {
        let mut spec = JobSpec::new(format!("cells-{:03}", recipe.index), recipe.tenant)
            .arriving_at(Duration::from_millis(recipe.arrival_ms))
            .with_priority(recipe.priority)
            .with_reservation(Reservation::minimal().with_memory((recipe.cardinality * 24) as u64))
            .with_speculation(recipe.index % 4 == 0);
        if let Some(deadline) = recipe.deadline_ms {
            spec = spec.with_deadline(Duration::from_millis(deadline));
        }
        let handle = executor
            .submit(spec, move |cluster: &ClusterConfig| plane(recipe, cluster))
            .expect("minimal reservations are always statically feasible");
        handles.push((recipe.index, handle));
    }

    let report = executor.run();
    print!("{}", report.render());
    if let (Some(path), Some(collector)) = (trace, &collector) {
        let doc = collector.finish();
        std::fs::write(path, chrome_trace(&doc)).expect("trace file is writable");
        println!("  -> span timeline written to {path}");
    }

    let (mut finished, mut rejected, mut cancelled, mut failed) = (0u32, 0u32, 0u32, 0u32);
    let mut queue_wait = Duration::ZERO;
    for (index, handle) in handles {
        match executor.take(handle) {
            JobCompletion::Finished(outcome) => {
                finished += 1;
                queue_wait += outcome.stats.queue_wait;
                // Scheduling decides when, never what: a job finishing
                // under several policies must produce identical bytes.
                let prior = fingerprints.insert(index, outcome.output.clone());
                if let Some(prior) = prior {
                    assert_eq!(
                        prior, outcome.output,
                        "job {index} produced different bytes under a different policy"
                    );
                }
            }
            JobCompletion::Rejected(e) => {
                rejected += 1;
                assert!(matches!(e, Error::AdmissionRejected { .. }));
            }
            JobCompletion::Cancelled(_) => cancelled += 1,
            JobCompletion::Failed(_) => failed += 1,
        }
    }
    assert_eq!(finished + rejected + cancelled + failed, JOBS as u32);
    println!(
        "  -> every job accounted for: {finished} finished, {rejected} rejected, \
         {cancelled} cancelled, {failed} failed; total queue wait {queue_wait:.2?}"
    );

    // The fairness bill, straight from the per-tenant slot-tick ledger.
    let ticks: Vec<u64> = report.tenants.values().map(|t| t.slot_ticks).collect();
    let (min, max) = (
        ticks.iter().copied().min().unwrap_or(0),
        ticks.iter().copied().max().unwrap_or(0),
    );
    if min > 0 {
        println!(
            "  -> tenant slot-tick spread: max/min = {:.2}",
            max as f64 / min as f64
        );
    }
    println!();
}

fn main() {
    println!(
        "{} jobs, {} tenants, bursty arrivals, one small cluster (4 map / 2 reduce slots)\n",
        JOBS,
        TENANTS.len()
    );
    // An optional first argument names a Chrome-trace output file for the
    // priority run (the one with preemptions), e.g. for the CI schema gate.
    let trace = std::env::args().nth(1);
    let mut fingerprints = BTreeMap::new();
    run_policy(FifoScheduler, &mut fingerprints, None);
    run_policy(FairShareScheduler, &mut fingerprints, None);
    run_policy(PriorityScheduler, &mut fingerprints, trace.as_deref());
    println!(
        "{} distinct jobs finished under at least one policy with byte-identical output",
        fingerprints.len()
    );
}
