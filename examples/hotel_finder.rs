//! Hotel finder: the classic skyline motivation, end to end.
//!
//! ```text
//! cargo run -p skymr-examples --release --bin hotel_finder
//! ```
//!
//! A booking site wants every hotel that is not worse than some other
//! hotel in *all* of: price, distance to the beach, (inverted) rating, and
//! (inverted) review count. Exactly the multi-criteria decision problem
//! skyline queries answer — no weighting needed, the skyline is every
//! hotel a rational customer could prefer.
//!
//! The example synthesizes a hotel catalogue with realistic correlations
//! (beach-front hotels cost more — anti-correlated price/distance),
//! normalizes everything into the `[0,1)` smaller-is-better space, runs
//! both of the paper's algorithms, and prints the winning hotels with
//! their original units.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use skymr::{mr_gpmrs, mr_gpsrs, SkylineConfig};
use skymr_common::{Dataset, Tuple};

/// A hotel in original units.
#[derive(Debug, Clone)]
struct Hotel {
    name: String,
    price_eur: f64, // 40 .. 500, lower better
    beach_km: f64,  // 0 .. 20, lower better
    rating: f64,    // 1 .. 5 stars, higher better
    reviews: u32,   // 0 .. 5000, higher better
}

fn synthesize_hotels(n: usize, seed: u64) -> Vec<Hotel> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            // Beach proximity drives price (anti-correlation): the closer,
            // the pricier, plus noise.
            let beach_km: f64 = rng.gen_range(0.0..20.0);
            let price_eur =
                (460.0 - beach_km * 20.0 + rng.gen_range(-60.0..60.0)).clamp(40.0, 499.0);
            // Ratings weakly track price; reviews are independent.
            let rating = (2.0 + price_eur / 200.0 + rng.gen_range(-1.0..1.0)).clamp(1.0, 5.0);
            let reviews = rng.gen_range(0..5_000);
            Hotel {
                name: format!("Hotel #{i:04}"),
                price_eur,
                beach_km,
                rating,
                reviews,
            }
        })
        .collect()
}

/// Normalizes a hotel into `[0,1)^4` where smaller is better on every
/// dimension (ratings and review counts are inverted).
fn to_tuple(id: u64, h: &Hotel) -> Tuple {
    let clamp = |v: f64| v.clamp(0.0, 1.0 - 1e-9);
    Tuple::new(
        id,
        vec![
            clamp(h.price_eur / 500.0),
            clamp(h.beach_km / 20.0),
            clamp(1.0 - (h.rating - 1.0) / 4.0),
            clamp(1.0 - h.reviews as f64 / 5_000.0),
        ],
    )
}

fn main() {
    let hotels = synthesize_hotels(30_000, 7);
    let tuples: Vec<Tuple> = hotels
        .iter()
        .enumerate()
        .map(|(i, h)| to_tuple(i as u64, h))
        .collect();
    let data = Dataset::new(4, tuples).expect("normalized into [0,1)");

    let config = SkylineConfig::default();
    let multi = mr_gpmrs(&data, &config).expect("valid configuration");
    let single = mr_gpsrs(&data, &config).expect("valid configuration");
    assert_eq!(
        multi.skyline_ids(),
        single.skyline_ids(),
        "both algorithms must return the same skyline"
    );

    println!(
        "{} hotels -> {} skyline hotels (no hotel beats them on every criterion)",
        hotels.len(),
        multi.skyline.len()
    );
    println!(
        "MR-GPMRS simulated runtime {:.2?} vs MR-GPSRS {:.2?}",
        multi.metrics.sim_runtime(),
        single.metrics.sim_runtime()
    );
    println!();
    println!(
        "{:<12} {:>9} {:>9} {:>7} {:>8}",
        "hotel", "price", "beach", "rating", "reviews"
    );
    let mut sample: Vec<&Tuple> = multi.skyline.iter().collect();
    sample.sort_by(|a, b| a.values[0].partial_cmp(&b.values[0]).unwrap());
    for t in sample.iter().take(12) {
        let h = &hotels[t.id as usize];
        println!(
            "{:<12} {:>8.0}€ {:>7.1}km {:>6.1}★ {:>8}",
            h.name, h.price_eur, h.beach_km, h.rating, h.reviews
        );
    }
    if multi.skyline.len() > 12 {
        println!("… and {} more", multi.skyline.len() - 12);
    }
}
