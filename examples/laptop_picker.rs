//! Laptop picker: raw, mixed-direction attributes end to end.
//!
//! ```text
//! cargo run -p skymr-examples --release --bin laptop_picker
//! ```
//!
//! Real catalogues don't come normalized into `[0,1)` with
//! smaller-is-better semantics: prices are minimized, battery life and
//! benchmark scores maximized, each in its own units. This example runs
//! the full adoption path: fit a [`skymr_datagen::Normalizer`] on raw
//! rows, compute the skyline with MR-GPMRS, then widen to the 3-skyband
//! (`skymr::mr_skyband`) — the "shortlist plus close runners-up" query —
//! and print everything back in original units.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use skymr::{mr_gpmrs, mr_skyband, SkylineConfig};
use skymr_datagen::{Direction, Normalizer};

const COLUMNS: [(&str, Direction); 4] = [
    ("price_eur", Direction::Minimize),
    ("weight_kg", Direction::Minimize),
    ("battery_h", Direction::Maximize),
    ("cpu_score", Direction::Maximize),
];

fn synthesize_catalogue(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            // Faster CPUs cost more and drain batteries; light laptops cost
            // extra too — the trade-offs that make skylines interesting.
            let cpu: f64 = rng.gen_range(2_000.0..18_000.0);
            let weight = rng.gen_range(0.9..2.8);
            let price = (300.0
                + cpu / 18_000.0 * 1_600.0
                + (2.8 - weight) * 400.0
                + rng.gen_range(-150.0..150.0))
            .max(250.0);
            let battery =
                (22.0 - cpu / 18_000.0 * 10.0 + rng.gen_range(-4.0..4.0)).clamp(3.0, 24.0);
            vec![price, weight, battery, cpu]
        })
        .collect()
}

fn main() {
    let rows = synthesize_catalogue(10_000, 23);
    let normalizer = Normalizer::fit(&COLUMNS, &rows).expect("consistent rows");
    let data = normalizer
        .to_dataset(&rows)
        .expect("normalized rows fit the data space");

    let config = SkylineConfig::default();
    let skyline = mr_gpmrs(&data, &config).expect("valid configuration");
    let band = mr_skyband(&data, 3, &config).expect("valid configuration");

    println!(
        "{} laptops -> {} on the skyline, {} in the 3-skyband",
        rows.len(),
        skyline.skyline.len(),
        band.skyline.len()
    );
    println!(
        "simulated runtimes: skyline {:.2?}, 3-skyband {:.2?}",
        skyline.metrics.sim_runtime(),
        band.metrics.sim_runtime()
    );
    println!();
    println!(
        "{:>9} {:>9} {:>10} {:>10}   tier",
        "price", "weight", "battery", "cpu"
    );
    let skyline_ids: std::collections::BTreeSet<u64> = skyline.skyline_ids().into_iter().collect();
    let mut entries: Vec<_> = band.skyline.iter().collect();
    entries.sort_by(|a, b| {
        normalizer.to_raw_row(a)[0]
            .partial_cmp(&normalizer.to_raw_row(b)[0])
            .expect("no NaNs")
    });
    for t in entries.iter().take(15) {
        let raw = normalizer.to_raw_row(t);
        let tier = if skyline_ids.contains(&t.id) {
            "skyline"
        } else {
            "runner-up"
        };
        println!(
            "{:>8.0}€ {:>8.2}kg {:>9.1}h {:>10.0}   {tier}",
            raw[0], raw[1], raw[2], raw[3]
        );
    }
    if band.skyline.len() > 15 {
        println!("… and {} more", band.skyline.len() - 15);
    }

    // The skyline is always contained in every k-skyband.
    assert!(skyline
        .skyline_ids()
        .iter()
        .all(|id| band.skyline_ids().contains(id)));
}
