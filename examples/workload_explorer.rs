//! Workload explorer: how skyline structure drives algorithm choice.
//!
//! ```text
//! cargo run -p skymr-examples --release --bin workload_explorer
//! ```
//!
//! Sweeps distribution × dimensionality, reporting the skyline fraction,
//! the bitstring's pruning power, MR-GPMRS's group structure, and the
//! simulated runtimes of both grid algorithms — the quantities that decide
//! which algorithm wins where (the paper's central empirical finding).

use skymr::{mr_gpmrs, mr_gpsrs, PpdPolicy, SkylineConfig};
use skymr_baselines::bnl_skyline;
use skymr_datagen::{generate, Distribution};

fn main() {
    let card = 20_000;
    println!(
        "{:<16} {:>3} {:>9} {:>8} {:>10} {:>8} {:>9} {:>9}",
        "distribution", "dim", "skyline", "sky%", "surviving", "groups", "GPSRS", "GPMRS"
    );
    for dist in [
        Distribution::Independent,
        Distribution::Correlated,
        Distribution::Anticorrelated,
        Distribution::Clustered { clusters: 4 },
    ] {
        for dim in [2usize, 4, 6, 8] {
            let data = generate(dist, dim, card, 7);
            let skyline = bnl_skyline(data.tuples());
            let config = SkylineConfig {
                ppd: PpdPolicy::auto(),
                ..SkylineConfig::default()
            };
            let srs = mr_gpsrs(&data, &config).expect("valid configuration");
            let mrs = mr_gpmrs(&data, &config).expect("valid configuration");
            assert_eq!(srs.skyline_ids(), mrs.skyline_ids());
            assert_eq!(srs.skyline.len(), skyline.len());
            println!(
                "{:<16} {:>3} {:>9} {:>7.1}% {:>4}/{:<5} {:>8} {:>8.2}s {:>8.2}s",
                dist.name(),
                dim,
                skyline.len(),
                100.0 * skyline.len() as f64 / card as f64,
                mrs.info.surviving_partitions,
                mrs.info.non_empty_partitions,
                mrs.info.independent_groups,
                srs.metrics.sim_runtime().as_secs_f64(),
                mrs.metrics.sim_runtime().as_secs_f64(),
            );
        }
    }
    println!();
    println!("Rules of thumb the table shows (the paper's Sections 7.2–7.4):");
    println!(" - small skyline fraction  -> single reducer is enough (MR-GPSRS)");
    println!(" - large skyline fraction  -> parallel reducers pay off (MR-GPMRS)");
    println!(" - the surviving/non-empty partition ratio predicts it from the bitstring alone");
}
